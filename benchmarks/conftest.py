"""Benchmark-suite configuration.

Every file reproduces one figure (or reported metric) of the paper and
is executed with ``pytest benchmarks/ --benchmark-only``.  Benchmarks
print the reproduced paper-style rows (run with ``-s`` to see them) and
assert the *shape* of the paper's claims: who wins, by roughly what
factor.
"""

from __future__ import annotations


def emit(text: str) -> None:
    """Print a reproduced figure with a blank line of separation."""
    print()
    print(text)
