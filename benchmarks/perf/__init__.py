"""Micro-benchmarks for the engine hot path and the trial runner.

Run with ``PYTHONPATH=src python -m benchmarks.perf.bench_engine``;
results land in ``benchmarks/perf/BENCH_engine.json`` so successive PRs
leave a perf trajectory.  Files here are deliberately NOT named
``test_*`` — they are timing harnesses, not part of any pytest tier.
"""
