"""Engine and runner micro-benchmarks (scalar vs batch, serial vs parallel).

Times the throughput-engine hot path and the Monte-Carlo trial runner on
pinned seeds and writes ``benchmarks/perf/BENCH_engine.json``:

    PYTHONPATH=src python -m benchmarks.perf.bench_engine

Every section reports best-of-``repeats`` wall time so the JSON is
stable enough to compare across commits (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.baselines import greedy_assignment
from repro.core.wolt import solve_wolt
from repro.net.engine import DeltaEvaluator, evaluate, evaluate_batch
from repro.net.topology import enterprise_floor
from repro.sim.checkpoint import atomic_write_text
from repro.sim.runner import run_trials, shutdown_warm_pools

OUTPUT = Path(__file__).resolve().parent / "BENCH_engine.json"

#: Pinned workload: the paper's Fig. 6 enterprise floor.
N_EXTENDERS = 15
N_USERS = 124
BATCH_SIZE = 256
N_MOVES = 256
SEED = 2020

TRIAL_KWARGS = dict(n_trials=16, n_extenders=15, n_users=80, seed=7,
                    policies=("wolt", "greedy", "rssi"))
TRIAL_WORKERS = 4


def _best_of(fn, repeats: int = 5) -> float:
    """Best wall time of ``repeats`` runs (seconds)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return float(best)


def _random_complete_batch(scenario, rng, n_batch: int) -> np.ndarray:
    batch = np.empty((n_batch, scenario.n_users), dtype=int)
    for i in range(scenario.n_users):
        options = scenario.reachable(i)
        batch[:, i] = rng.choice(options, size=n_batch)
    return batch


def bench_evaluate(scenario, rng) -> dict:
    batch = _random_complete_batch(scenario, rng, BATCH_SIZE)

    def scalar():
        for row in batch:
            evaluate(scenario, row)

    def batched():
        evaluate_batch(scenario, batch)

    scalar_s = _best_of(scalar)
    batch_s = _best_of(batched)
    return {
        "candidates": BATCH_SIZE,
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "scalar_us_per_candidate": 1e6 * scalar_s / BATCH_SIZE,
        "batch_us_per_candidate": 1e6 * batch_s / BATCH_SIZE,
    }


def bench_delta_eval(scenario, rng) -> dict:
    """Single-move scoring: ``DeltaEvaluator`` vs a full re-score.

    This is the hysteresis-loop shape (``core/dynamic.py``): candidate
    moves are scored one at a time against a *changing* working
    assignment, so batching does not apply.  The delta path recomputes
    only the two cells a move touches; the full path re-runs scalar
    ``evaluate`` on the moved assignment.
    """
    base = np.array([int(scenario.reachable(i)[np.argmax(
        scenario.wifi_rates[i, scenario.reachable(i)])])
        for i in range(scenario.n_users)])
    users = rng.integers(0, scenario.n_users, size=N_MOVES)
    moves = [(int(u), int(rng.choice(scenario.reachable(int(u)))))
             for u in users]

    def full_rescore():
        for user, dest in moves:
            candidate = base.copy()
            candidate[user] = dest
            evaluate(scenario, candidate)

    def delta():
        evaluator = DeltaEvaluator(scenario, base.copy())
        for user, dest in moves:
            evaluator.score_move(user, dest)

    full_s = _best_of(full_rescore)
    delta_s = _best_of(delta)
    return {
        "moves": N_MOVES,
        "full_rescore_s": full_s,
        "delta_s": delta_s,
        "speedup": full_s / delta_s,
        "full_us_per_move": 1e6 * full_s / N_MOVES,
        "delta_us_per_move": 1e6 * delta_s / N_MOVES,
    }


def bench_solve_wolt(scenario) -> dict:
    scalar_s = _best_of(lambda: solve_wolt(scenario, vectorized=False),
                        repeats=3)
    vector_s = _best_of(lambda: solve_wolt(scenario, vectorized=True),
                        repeats=3)
    return {"scalar_s": scalar_s, "vectorized_s": vector_s,
            "speedup": scalar_s / vector_s}


def bench_greedy(scenario) -> dict:
    scalar_s = _best_of(lambda: greedy_assignment(scenario, batched=False),
                        repeats=3)
    batch_s = _best_of(lambda: greedy_assignment(scenario, batched=True),
                       repeats=3)
    return {"scalar_s": scalar_s, "batched_s": batch_s,
            "speedup": scalar_s / batch_s}


def bench_run_trials() -> dict:
    """Serial vs chunked parallel dispatch, cold and warm pools.

    ``parallel_cold_s`` pays the one-off pool fork plus the first
    chunked dispatch; ``parallel_s`` (the ratcheted number) is the
    steady state — a warm worker pool fed scenario-free chunks.
    """
    shutdown_warm_pools()
    serial_s = _best_of(lambda: run_trials(**TRIAL_KWARGS), repeats=2)
    shutdown_warm_pools()
    start = time.perf_counter()
    run_trials(workers=TRIAL_WORKERS, **TRIAL_KWARGS)
    cold_s = time.perf_counter() - start
    # The pool stays warm after the cold run: these dispatches reuse it.
    parallel_s = _best_of(
        lambda: run_trials(workers=TRIAL_WORKERS, **TRIAL_KWARGS),
        repeats=2)
    shutdown_warm_pools()
    return {"n_trials": TRIAL_KWARGS["n_trials"],
            "workers": TRIAL_WORKERS,
            "chunk_size": "auto",
            "serial_s": serial_s,
            "parallel_cold_s": cold_s,
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s}


def main() -> dict:
    rng = np.random.default_rng(SEED)
    scenario = enterprise_floor(N_EXTENDERS, N_USERS, rng)
    report = {
        "meta": {
            "workload": {"n_extenders": N_EXTENDERS, "n_users": N_USERS,
                         "seed": SEED},
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            # Parallel-runner speedup is bounded by this number.
            "cpus": len(os.sched_getaffinity(0)),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "evaluate_scalar_vs_batch": bench_evaluate(scenario, rng),
        "delta_eval_vs_full_rescore": bench_delta_eval(scenario, rng),
        "solve_wolt_scalar_vs_vectorized": bench_solve_wolt(scenario),
        "greedy_scalar_vs_batched": bench_greedy(scenario),
        "run_trials_serial_vs_parallel": bench_run_trials(),
    }
    atomic_write_text(OUTPUT, json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT}")
    return report


if __name__ == "__main__":
    main()
