"""Campus fleet benchmark: serial vs sharded-parallel epoch dispatch.

Times one FleetService epoch over the committed 1000-building campus
spec (``benchmarks/perf/fleet_campus.yaml``), serial against 4-worker
shard dispatch, and writes ``benchmarks/perf/BENCH_fleet.json``:

    PYTHONPATH=src python -m benchmarks.perf.bench_fleet

Every measurement starts from a **fresh** service (epoch 0 every
time) so the timed work is identical; the worker pool is warmed by a
throwaway cold epoch first, exactly like ``bench_engine``'s
run-trials section.  The script also asserts the sharded epoch is
bit-identical to the serial one before writing the JSON — a benchmark
of a wrong answer is worthless.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.fleet.service import FleetService, format_epoch
from repro.fleet.spec import load_fleet_spec
from repro.sim.checkpoint import atomic_write_text
from repro.sim.dispatch import shutdown_warm_pools

OUTPUT = Path(__file__).resolve().parent / "BENCH_fleet.json"
SPEC = Path(__file__).resolve().parent / "fleet_campus.yaml"

WORKERS = 4
REPEATS = 2


def _epoch_time(spec, workers) -> float:
    """Best-of-``REPEATS`` wall time of epoch 0 on a fresh service."""
    best = np.inf
    for _ in range(REPEATS):
        service = FleetService(spec, workers=workers)
        start = time.perf_counter()
        service.run_epoch()
        best = min(best, time.perf_counter() - start)
    return float(best)


def bench_fleet_epoch() -> dict:
    spec = load_fleet_spec(SPEC)
    serial_report = FleetService(spec).run_epoch()
    parallel_report = FleetService(spec, workers=WORKERS).run_epoch()
    identical = (format_epoch(serial_report)
                 == format_epoch(parallel_report))
    assert identical, (
        "sharded-parallel epoch diverged from the serial reference; "
        "refusing to benchmark a wrong answer")
    shutdown_warm_pools()
    serial_s = _epoch_time(spec, workers=None)
    # Cold run: pays the pool fork; later dispatches reuse the pool.
    cold_service = FleetService(spec, workers=WORKERS)
    start = time.perf_counter()
    cold_service.run_epoch()
    cold_s = time.perf_counter() - start
    parallel_s = _epoch_time(spec, workers=WORKERS)
    shutdown_warm_pools()
    return {
        "n_buildings": spec.n_buildings,
        "n_users": spec.n_users,
        "n_shards": serial_report.n_shards,
        "workers": WORKERS,
        "identical_to_serial": identical,
        "serial_s": serial_s,
        "parallel_cold_s": cold_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
    }


def main() -> dict:
    report = {
        "meta": {
            "spec": SPEC.name,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            # Shard-parallel speedup is bounded by this number.
            "cpus": len(os.sched_getaffinity(0)),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                       time.gmtime()),
        },
        "fleet_epoch_serial_vs_sharded": bench_fleet_epoch(),
    }
    atomic_write_text(OUTPUT, json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT}")
    return report


if __name__ == "__main__":
    main()
