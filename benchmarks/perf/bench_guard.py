"""DecisionGuard overhead micro-benchmark.

The guard seam promises that validating every decision is effectively
free on the hot path (<5% over the unguarded solver).  This benchmark
times ``solve_wolt`` and ``greedy_assignment`` with and without a
:class:`~repro.core.guard.DecisionGuard` on the pinned Fig. 6 workload
and writes ``benchmarks/perf/BENCH_guard.json``:

    PYTHONPATH=src python -m benchmarks.perf.bench_guard

Every section reports best-of-``repeats`` wall time so the JSON is
stable enough to compare across commits (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.baselines import greedy_assignment
from repro.core.guard import DecisionGuard
from repro.core.wolt import solve_wolt
from repro.net.topology import enterprise_floor
from repro.sim.checkpoint import atomic_write_text

OUTPUT = Path(__file__).resolve().parent / "BENCH_guard.json"

#: Pinned workload: the paper's Fig. 6 enterprise floor.
N_EXTENDERS = 15
N_USERS = 124
SEED = 2020

#: The seam's performance budget: guarded solve within 5% of unguarded.
OVERHEAD_BUDGET = 0.05


def _best_of(fn, repeats: int = 5) -> float:
    """Best wall time of ``repeats`` runs (seconds)."""
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return float(best)


def _guarded_vs_unguarded(fn) -> dict:
    unguarded_s = _best_of(lambda: fn(guard=None))
    guarded_s = _best_of(lambda: fn(guard=DecisionGuard()))
    overhead = guarded_s / unguarded_s - 1.0
    return {
        "unguarded_s": unguarded_s,
        "guarded_s": guarded_s,
        "overhead_fraction": overhead,
        "within_budget": overhead <= OVERHEAD_BUDGET,
    }


def main() -> dict:
    rng = np.random.default_rng(SEED)
    scenario = enterprise_floor(N_EXTENDERS, N_USERS, rng)
    report = {
        "meta": {
            "workload": {"n_extenders": N_EXTENDERS, "n_users": N_USERS,
                         "seed": SEED},
            "overhead_budget": OVERHEAD_BUDGET,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": len(os.sched_getaffinity(0)),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "solve_wolt": _guarded_vs_unguarded(
            lambda guard: solve_wolt(scenario, guard=guard)),
        "greedy_assignment": _guarded_vs_unguarded(
            lambda guard: greedy_assignment(scenario, guard=guard)),
    }
    atomic_write_text(OUTPUT, json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    for name in ("solve_wolt", "greedy_assignment"):
        section = report[name]
        verdict = "OK" if section["within_budget"] else "OVER BUDGET"
        print(f"{name}: guard overhead "
              f"{section['overhead_fraction']:+.1%} "
              f"(budget {OVERHEAD_BUDGET:.0%}) — {verdict}")
    print(f"\nwrote {OUTPUT}")
    return report


if __name__ == "__main__":
    main()
