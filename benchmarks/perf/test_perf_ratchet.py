"""Perf ratchet: fail when a recorded speedup regresses.

Reads the committed ``benchmarks/perf/BENCH_engine.json`` (regenerate
with ``PYTHONPATH=src python -m benchmarks.perf.bench_engine``) and
``benchmarks/perf/BENCH_fleet.json`` (``... -m
benchmarks.perf.bench_fleet``) and asserts two kinds of bound on every
``speedup`` field:

* **absolute floors** — the claims this repo makes in
  docs/PERFORMANCE.md must hold on the recorded numbers: delta-eval
  scores a move at least 5x faster than a full re-score, and chunked
  parallel dispatch reaches at least 1.5x at 4 workers *when the
  recording machine actually has 4 cores* (``meta.cpus`` gates the
  floor — on a single core parallelism is a wash by construction, so
  the floor there only catches pathological dispatch overhead);
* **the ratchet** — each speedup must stay within ``TOLERANCE`` of the
  best level this repo has already demonstrated (the ``RATCHET``
  table).  A drop beyond 10% is a regression and fails the build; when
  an optimization legitimately advances a number, re-pin its baseline
  here in the same PR that regenerates the JSON.

CI runs this in the ``perf-smoke`` job *after* regenerating the JSON
on the runner, so the bounds are checked against fresh measurements,
not just the committed file.  The file lives under ``benchmarks/``
(outside the tier-1 ``testpaths``) because it is a timing gate, not a
correctness test; run it directly with::

    PYTHONPATH=src python -m pytest benchmarks/perf/test_perf_ratchet.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

BENCH = Path(__file__).resolve().parent / "BENCH_engine.json"
BENCH_FLEET = Path(__file__).resolve().parent / "BENCH_fleet.json"

#: Regression tolerance on ratcheted speedups: fail below
#: ``(1 - TOLERANCE) * RATCHET[section]``.
TOLERANCE = 0.10

#: Best demonstrated speedups (conservative: pinned a little below the
#: committed measurements so runner-to-runner noise does not flake).
#: Re-pin upward when an optimization moves a number for real.
RATCHET = {
    "evaluate_scalar_vs_batch": 35.0,
    "delta_eval_vs_full_rescore": 6.0,
    "solve_wolt_scalar_vs_vectorized": 3.0,
    "greedy_scalar_vs_batched": 5.5,
}

#: Absolute floor on delta-eval per-move speedup vs a full re-score.
DELTA_FLOOR = 5.0

#: ``(min_cpus, floor)`` rows for the parallel-dispatch speedup, most
#: demanding first.  The recorded ``meta.cpus`` picks the row: 1.5x is
#: only achievable (and only required) with >= 4 real cores.
PARALLEL_FLOORS = ((4, 1.5), (2, 1.1), (1, 0.75))

#: Same shape for the campus fleet epoch (BENCH_fleet.json): sharded
#: 4-worker dispatch must reach 1.5x on a real 4-core machine; on one
#: core the floor only catches pathological dispatch overhead (the
#: per-shard solves are small, so the serial margin is thinner than
#: run_trials').
FLEET_PARALLEL_FLOORS = ((4, 1.5), (2, 1.05), (1, 0.6))


@pytest.fixture(scope="module")
def bench() -> dict:
    if not BENCH.exists():
        pytest.fail(f"{BENCH} missing — run "
                    f"PYTHONPATH=src python -m benchmarks.perf.bench_engine")
    return json.loads(BENCH.read_text())


def test_json_has_every_ratcheted_section(bench: dict) -> None:
    missing = [s for s in RATCHET if s not in bench]
    assert not missing, (
        f"BENCH_engine.json lacks sections {missing}; regenerate it "
        f"with the current bench_engine.py")
    assert "run_trials_serial_vs_parallel" in bench
    assert bench["meta"]["cpus"] >= 1


@pytest.mark.parametrize("section", sorted(RATCHET))
def test_speedup_ratchet(bench: dict, section: str) -> None:
    current = bench[section]["speedup"]
    floor = (1.0 - TOLERANCE) * RATCHET[section]
    assert current >= floor, (
        f"{section}: speedup {current:.2f}x regressed more than "
        f"{TOLERANCE:.0%} below the {RATCHET[section]:.1f}x ratchet "
        f"(floor {floor:.2f}x)")


def test_delta_eval_absolute_floor(bench: dict) -> None:
    current = bench["delta_eval_vs_full_rescore"]["speedup"]
    assert current >= DELTA_FLOOR, (
        f"delta-eval scores a move only {current:.2f}x faster than a "
        f"full re-score; the contract is >= {DELTA_FLOOR:.0f}x")


def test_parallel_dispatch_floor(bench: dict) -> None:
    section = bench["run_trials_serial_vs_parallel"]
    cpus = bench["meta"]["cpus"]
    floor = next(f for min_cpus, f in PARALLEL_FLOORS if cpus >= min_cpus)
    assert section["speedup"] >= floor, (
        f"parallel run_trials speedup {section['speedup']:.2f}x at "
        f"{section['workers']} workers is below the {floor:.2f}x floor "
        f"for a {cpus}-cpu machine")


@pytest.fixture(scope="module")
def fleet_bench() -> dict:
    if not BENCH_FLEET.exists():
        pytest.fail(f"{BENCH_FLEET} missing — run "
                    f"PYTHONPATH=src python -m benchmarks.perf.bench_fleet")
    return json.loads(BENCH_FLEET.read_text())


def test_fleet_bench_covers_the_campus(fleet_bench: dict) -> None:
    section = fleet_bench["fleet_epoch_serial_vs_sharded"]
    assert section["n_buildings"] >= 1000
    assert section["n_shards"] >= section["n_buildings"]
    assert fleet_bench["meta"]["cpus"] >= 1


def test_fleet_sharding_is_bit_identical(fleet_bench: dict) -> None:
    """The speedup only counts if the answer is the same answer."""
    section = fleet_bench["fleet_epoch_serial_vs_sharded"]
    assert section["identical_to_serial"] is True


def test_fleet_parallel_dispatch_floor(fleet_bench: dict) -> None:
    section = fleet_bench["fleet_epoch_serial_vs_sharded"]
    cpus = fleet_bench["meta"]["cpus"]
    floor = next(f for min_cpus, f in FLEET_PARALLEL_FLOORS
                 if cpus >= min_cpus)
    assert section["speedup"] >= floor, (
        f"sharded fleet epoch speedup {section['speedup']:.2f}x at "
        f"{section['workers']} workers is below the {floor:.2f}x "
        f"floor for a {cpus}-cpu machine")


def test_warm_dispatch_beats_cold_start(bench: dict) -> None:
    """The warm-pool steady state must not be slower than a cold pool.

    Guards the point of keeping worker pools warm: if reusing a pool
    ever costs more than forking a fresh one (plus re-shipping the
    scenario config), the warm-pool path has regressed.  10% headroom
    absorbs timer noise on loaded runners.
    """
    section = bench["run_trials_serial_vs_parallel"]
    assert section["parallel_s"] <= 1.10 * section["parallel_cold_s"]
