"""Ablation benchmarks for the design choices DESIGN.md calls out.

* Phase-II solver: combinatorial (greedy + local search) vs the paper's
  continuous nonlinear-program route (Theorem 3 integrality).
* PLC leftover-time redistribution: with vs without (explains the Fig 3c
  greedy outcome, 30 vs 25 Mbps).
* Phase-I coverage: WOLT with vs without the "one user per extender"
  modification (constraint (8) tightening) under the paper's model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phase1 import solve_phase1
from repro.core.phase2 import solve_phase2, solve_phase2_continuous
from repro.core.problem import Scenario, UNASSIGNED
from repro.core.wolt import solve_wolt
from repro.net.engine import evaluate
from repro.net.topology import enterprise_floor

from .conftest import emit


@pytest.mark.benchmark(group="ablation")
def test_phase2_solver_ablation(benchmark):
    """The combinatorial solver matches the NLP route's quality and both
    return integral assignments (Theorem 3)."""
    rng = np.random.default_rng(0)
    scenarios = [enterprise_floor(5, 15, np.random.default_rng(s))
                 for s in range(5)]

    def run_both():
        pairs = []
        for scenario in scenarios:
            p1 = solve_phase1(scenario)
            comb = solve_phase2(scenario, p1.assignment)
            cont = solve_phase2_continuous(scenario, p1.assignment,
                                           rng=rng)
            pairs.append((comb, cont))
        return pairs

    pairs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ratios = []
    for comb, cont in pairs:
        assert comb.was_integral
        assert np.all(comb.assignment != UNASSIGNED)
        assert np.all(cont.assignment != UNASSIGNED)
        ratios.append(cont.objective / comb.objective)
    emit(f"Phase II ablation: NLP/combinatorial objective ratios "
         f"{[round(r, 3) for r in ratios]}")
    assert np.mean(ratios) > 0.9


@pytest.mark.benchmark(group="ablation")
def test_redistribution_ablation_fig3c(benchmark):
    """Leftover-time redistribution is what lifts Fig 3c from 25 to 30."""
    scenario = Scenario(wifi_rates=np.array([[15.0, 10.0], [40.0, 20.0]]),
                        plc_rates=np.array([60.0, 20.0]))

    def run():
        with_r = evaluate(scenario, [0, 1],
                          plc_mode="redistribute").aggregate
        without = evaluate(scenario, [0, 1], plc_mode="active").aggregate
        return with_r, without

    with_r, without = benchmark(run)
    assert with_r == pytest.approx(30.0)
    assert without == pytest.approx(25.0)


@pytest.mark.benchmark(group="ablation")
def test_phase1_coverage_ablation(benchmark):
    """Under the paper's fixed time-sharing model, Phase I's full
    extender coverage is the decisive design choice: WOLT utilizes every
    PLC share while an RSSI-seeded Phase II alone strands many."""
    scenarios = [enterprise_floor(15, 36, np.random.default_rng(s))
                 for s in range(5)]

    def run():
        deltas = []
        for scenario in scenarios:
            wolt = solve_wolt(scenario, plc_mode="fixed")
            # Ablated variant: skip Phase I entirely; Phase II places
            # everyone from an empty assignment.
            empty = np.full(scenario.n_users, UNASSIGNED)
            ablated = solve_phase2(scenario, empty)
            ablated_agg = evaluate(scenario, ablated.assignment,
                                   plc_mode="fixed").aggregate
            deltas.append(wolt.aggregate_throughput / ablated_agg)
        return deltas

    deltas = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(f"Phase I coverage ablation: WOLT/no-phase1 ratios "
         f"{[round(d, 2) for d in deltas]}")
    # Full WOLT is at least as good on average.
    assert np.mean(deltas) >= 0.99
