"""Algorithm runtime benchmarks (§IV-B complexity claims).

WOLT is polynomial: Phase I is the Hungarian algorithm in ``O(|A|^3)``
and Phase II a fast combinatorial solver.  These benchmarks time the
solver at and beyond the paper's enterprise scale (15 extenders, up to
124 clients) — the scale at which the paper's brute force would need
~30^10 evaluations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hungarian import solve_assignment
from repro.core.wolt import solve_wolt
from repro.net.topology import enterprise_floor


@pytest.mark.benchmark(group="runtime")
def test_wolt_runtime_paper_scale(benchmark):
    rng = np.random.default_rng(0)
    scenario = enterprise_floor(15, 36, rng)
    result = benchmark(solve_wolt, scenario)
    assert np.all(result.assignment >= 0)


@pytest.mark.benchmark(group="runtime")
def test_wolt_runtime_max_paper_scale(benchmark):
    """15 extenders, 124 clients — the largest setting in §I/§V."""
    rng = np.random.default_rng(1)
    scenario = enterprise_floor(15, 124, rng)
    result = benchmark(solve_wolt, scenario)
    assert np.all(result.assignment >= 0)


@pytest.mark.benchmark(group="runtime")
def test_hungarian_runtime_30x30(benchmark):
    """The paper's motivating scale: ~30 outlets in an office enclosure."""
    rng = np.random.default_rng(2)
    weights = rng.uniform(0, 100, (30, 30))
    rows, cols = benchmark(solve_assignment, weights)
    assert len(rows) == 30


@pytest.mark.benchmark(group="runtime")
def test_hungarian_runtime_200_users(benchmark):
    """Rectangular Phase-I instance: 200 users for 15 extender slots."""
    rng = np.random.default_rng(3)
    weights = rng.uniform(0, 100, (200, 15))
    rows, cols = benchmark(solve_assignment, weights)
    assert len(rows) == 15


@pytest.mark.benchmark(group="runtime")
def test_branch_and_bound_12_users(benchmark):
    """Exact optimum of a 12-user instance (3^12 brute-force nodes).

    Under the fixed sharing law the admissible bound prunes the tree to
    a handful of nodes — exact solving becomes practical at sizes brute
    force cannot touch.
    """
    from repro.core.bnb import branch_and_bound_optimal
    from tests.conftest import random_scenario

    rng = np.random.default_rng(12345)
    scenario = random_scenario(rng, 12, 3)
    result = benchmark(branch_and_bound_optimal, scenario,
                       plc_mode="fixed")
    assert result.nodes_expanded < 50_000
