"""Extension studies — failure recovery and hotspot crowds.

Neither appears in the paper, but both probe the same mechanism the
paper's evaluation rewards: keeping every usable PLC time slice busy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.topology import build_scenario
from repro.net.engine import evaluate
from repro.core.baselines import rssi_assignment
from repro.core.wolt import solve_wolt
from repro.sim.failures import FailureSimulation
from repro.sim.runner import sample_floor_plan
from repro.sim.workload import hotspot_positions

from .conftest import emit


def _failure_means(seed: int = 0, n_epochs: int = 10):
    plan_seq, sim_seq = np.random.SeedSequence(seed).spawn(2)
    rng = np.random.default_rng(plan_seq)
    plan = sample_floor_plan(8, rng)
    users = hotspot_positions(30, plan.width_m, plan.height_m, rng)
    scenario = build_scenario(plan.with_users(users))
    means = {}
    for policy in ("wolt", "rssi"):
        # Same child sequence per policy: both simulations see the
        # identical failure stream, keeping the comparison paired.
        sim = FailureSimulation(scenario, policy,
                                rng=np.random.default_rng(sim_seq),
                                fail_prob=0.25, recover_prob=0.5,
                                plc_mode="fixed")
        history = sim.run(n_epochs)
        means[policy] = float(np.mean(
            [e.aggregate_throughput for e in history]))
    return means


@pytest.mark.benchmark(group="extensions")
def test_failure_recovery_wolt_beats_fallback(benchmark):
    def run_seeds():
        results = [_failure_means(seed=s) for s in (0, 5, 9)]
        return {policy: float(np.mean([r[policy] for r in results]))
                for policy in ("wolt", "rssi")}

    means = benchmark.pedantic(run_seeds, rounds=1, iterations=1)
    # A global re-solve after failures recovers more than moving only
    # the orphans to their strongest survivor (averaged over floors).
    assert means["wolt"] > 1.2 * means["rssi"]
    emit(f"Failure recovery: WOLT {means['wolt']:.1f} Mbps vs "
         f"RSSI fallback {means['rssi']:.1f} Mbps under 25%/epoch "
         "extender failures (3 floors)")


def _hotspot_ratios(seed: int = 3):
    plan_seq, user_seq = np.random.SeedSequence(seed).spawn(2)
    rng = np.random.default_rng(plan_seq)
    plan = sample_floor_plan(10, rng)
    ratios = {}
    for fraction in (0.0, 0.9):
        user_xy = hotspot_positions(40, plan.width_m, plan.height_m,
                                    np.random.default_rng(user_seq),
                                    n_hotspots=2,
                                    hotspot_fraction=fraction)
        scenario = build_scenario(plan.with_users(user_xy))
        wolt = solve_wolt(scenario, plc_mode="fixed").aggregate_throughput
        rssi = evaluate(scenario, rssi_assignment(scenario),
                        plc_mode="fixed").aggregate
        ratios[fraction] = wolt / rssi
    return ratios


@pytest.mark.benchmark(group="extensions")
def test_hotspot_crowding_amplifies_wolt_advantage(benchmark):
    ratios = benchmark.pedantic(_hotspot_ratios, kwargs={"seed": 3},
                                rounds=1, iterations=1)
    # Crowding users into meeting rooms collapses RSSI onto few
    # extenders; WOLT's advantage grows markedly.
    assert ratios[0.9] > ratios[0.0]
    assert ratios[0.9] > 2.0
    emit(f"Hotspots: WOLT/RSSI = {ratios[0.0]:.2f}x uniform vs "
         f"{ratios[0.9]:.2f}x with 90% of users in hotspots")
