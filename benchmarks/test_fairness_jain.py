"""§V-E fairness — Jain's index: WOLT 0.66, Greedy 0.52, RSSI 0.65.

Shape: WOLT, despite optimizing only the aggregate, is at least as fair
as the baselines; Greedy is the least fair.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig6 import PAPER_JAIN, run_fairness

from .conftest import emit


@pytest.mark.benchmark(group="fairness")
def test_jain_fairness_ordering(benchmark):
    result = benchmark.pedantic(run_fairness,
                                kwargs={"n_trials": 30, "seed": 0},
                                rounds=1, iterations=1)
    jain = result.jain
    # WOLT is the fairest; Greedy trails it (the paper's ordering).
    assert jain["wolt"] > jain["greedy"]
    assert jain["wolt"] >= jain["rssi"] - 0.05
    # All indices within +-0.15 of the paper's values.
    for policy, paper_value in PAPER_JAIN.items():
        assert jain[policy] == pytest.approx(paper_value, abs=0.15)
    emit("Jain fairness: "
         + ", ".join(f"{p} {jain[p]:.2f} (paper {PAPER_JAIN[p]:.2f})"
                     for p in ("wolt", "greedy", "rssi")))
