"""Extension study — WOLT under a lossy control plane.

Scan reports, directives and handoffs fail with probability ``p``
(estimates also go stale); policies degrade gracefully to the
strongest-RSSI fallback.  Claim checked: WOLT's reconfiguration
advantage survives — it stays at or above the RSSI baseline at every
fault level, and the sweep is deterministic for a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.experiments.faults import DEFAULT_FAULT_LEVELS, run_fault_sweep

from .conftest import emit


@pytest.mark.benchmark(group="faults")
def test_wolt_survives_lossy_control_plane(benchmark):
    result = benchmark.pedantic(
        run_fault_sweep,
        kwargs={"fault_levels": DEFAULT_FAULT_LEVELS, "n_trials": 10,
                "seed": 0},
        rounds=1, iterations=1)
    # WOLT never drops below the RSSI fallback it degrades toward.
    for li in range(len(result.fault_levels)):
        assert (result.mean_mbps["wolt"][li]
                >= result.mean_mbps["rssi"][li])
    # And keeps most of its fault-free throughput at every level.
    assert min(result.wolt_retention) >= 0.8
    # The sweep is bit-reproducible for a fixed seed.
    again = run_fault_sweep(fault_levels=DEFAULT_FAULT_LEVELS,
                            n_trials=10, seed=0)
    assert again.mean_mbps == result.mean_mbps
    assert again.wolt_control_stats == result.wolt_control_stats
    rows = ", ".join(
        f"{level:.0%}: WOLT {result.mean_mbps['wolt'][li]:.0f} / "
        f"Greedy {result.mean_mbps['greedy'][li]:.0f} / "
        f"RSSI {result.mean_mbps['rssi'][li]:.0f} Mbps"
        for li, level in enumerate(result.fault_levels))
    emit("Fault sweep (lossy control plane, clean scoring): " + rows)
