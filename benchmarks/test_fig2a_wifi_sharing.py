"""Fig. 2a — WiFi throughput-fair sharing and the performance anomaly."""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import run_fig2a

from .conftest import emit


@pytest.mark.benchmark(group="fig2")
def test_fig2a_wifi_throughput_fair_sharing(benchmark):
    result = benchmark.pedantic(run_fig2a, kwargs={"seed": 0},
                                rounds=1, iterations=1)
    u1, u2 = result.testbed.user1_mbps, result.testbed.user2_mbps
    # Co-located users share equally.
    assert u1[0] == pytest.approx(u2[0], rel=0.15)
    # Moving user 2 away degrades BOTH users (the anomaly), monotonically.
    assert u1[0] > u1[1] > u1[2]
    assert u2[0] > u2[1] > u2[2]
    # Throughput-fair: at every location the two users are within 15%.
    for a, b in zip(u1, u2):
        assert a == pytest.approx(b, rel=0.15)
    # The slot-level DCF simulation shows the same shape.
    assert result.mac_user1_mbps[0] > result.mac_user1_mbps[2]
    for a, b in zip(result.mac_user1_mbps, result.mac_user2_mbps):
        assert a == pytest.approx(b, rel=0.2)
    emit(f"Fig 2a: user1 {tuple(round(x, 1) for x in u1)} Mbps, "
         f"user2 {tuple(round(x, 1) for x in u2)} Mbps across locations")
