"""Fig. 2b — isolation throughput of each PLC link (60-160 Mbps)."""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import run_fig2b
from repro.testbed.calibration import FIG2B_ISOLATION_MBPS

from .conftest import emit


@pytest.mark.benchmark(group="fig2")
def test_fig2b_plc_isolation_throughputs(benchmark):
    result = benchmark.pedantic(run_fig2b, kwargs={"seed": 0},
                                rounds=1, iterations=1)
    # Each link measures its calibrated capacity (within iperf noise).
    for measured, expected in zip(result.isolation_mbps,
                                  FIG2B_ISOLATION_MBPS):
        assert measured == pytest.approx(expected, rel=0.1)
    # The paper's reported spread: roughly 60-160 Mbps.
    assert min(result.isolation_mbps) == pytest.approx(60.0, rel=0.15)
    assert max(result.isolation_mbps) == pytest.approx(160.0, rel=0.15)
    emit("Fig 2b: isolation throughputs "
         f"{tuple(round(x, 1) for x in result.isolation_mbps)} Mbps "
         f"(paper: {FIG2B_ISOLATION_MBPS})")
