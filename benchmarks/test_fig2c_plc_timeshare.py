"""Fig. 2c — time-fair PLC sharing: each active link gets ~1/k."""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import run_fig2c

from .conftest import emit


@pytest.mark.benchmark(group="fig2")
def test_fig2c_time_fair_sharing(benchmark):
    result = benchmark.pedantic(run_fig2c, kwargs={"seed": 0},
                                rounds=1, iterations=1)
    for k, shared in result.testbed.shared_mbps.items():
        # Analytic testbed: each link delivers 1/k of isolation (±10%).
        for ratio in result.testbed.share_ratio(k):
            assert ratio == pytest.approx(1.0 / k, rel=0.1)
        # Better-rate links still deliver more absolute throughput.
        iso = result.testbed.isolation_mbps[:k]
        order = sorted(range(k), key=lambda i: iso[i])
        shared_sorted = [shared[i] for i in order]
        assert shared_sorted == sorted(shared_sorted)
    # The slot-level IEEE 1901 CSMA simulation reproduces ~1/k airtime
    # (CSMA overhead costs a little, so allow 25%).
    for k, ratios in result.mac_share_ratios.items():
        for ratio in ratios:
            assert ratio == pytest.approx(1.0 / k, rel=0.25)
    lines = [f"k={k}: " + " ".join(f"{r:.2f}" for r in
                                   result.testbed.share_ratio(k))
             for k in sorted(result.testbed.shared_mbps)]
    emit("Fig 2c share ratios (expect 1/k): " + "; ".join(lines))
