"""Fig. 3 — the association case study: RSSI 22, Greedy 30, Optimal 40."""

from __future__ import annotations

import pytest

from repro.experiments.fig3 import PAPER_FIG3_MBPS, run_fig3

from .conftest import emit


@pytest.mark.benchmark(group="fig3")
def test_fig3_case_study_exact_numbers(benchmark):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    # These are exact paper numbers — the engine is calibrated to them.
    assert result.rssi_aggregate == pytest.approx(
        PAPER_FIG3_MBPS["rssi"], abs=0.2)
    assert result.greedy_aggregate == pytest.approx(
        PAPER_FIG3_MBPS["greedy"], abs=0.01)
    assert result.optimal_aggregate == pytest.approx(
        PAPER_FIG3_MBPS["optimal"], abs=0.01)
    # Per-user breakdowns from the figure.
    assert result.rssi_per_user == pytest.approx((10.91, 10.91), abs=0.01)
    assert result.greedy_per_user == pytest.approx((15.0, 15.0), abs=0.01)
    assert result.optimal_per_user == pytest.approx((10.0, 30.0), abs=0.01)
    # WOLT finds the optimum on this instance.
    assert result.wolt_matches_optimal
    emit(f"Fig 3: RSSI {result.rssi_aggregate:.1f}, "
         f"Greedy {result.greedy_aggregate:.1f}, "
         f"Optimal {result.optimal_aggregate:.1f}, "
         f"WOLT {result.wolt_aggregate:.1f} Mbps "
         f"(paper: 22 / 30 / 40 / 40)")
