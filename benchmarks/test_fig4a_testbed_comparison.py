"""Fig. 4a — testbed comparison over 25 topologies.

Paper: WOLT improves average aggregate throughput by 26% over Greedy
and 70% over RSSI.  Shape reproduced: WOLT wins over both baselines by
double-digit percentages (our idealized Greedy concentrates harder than
the paper's implementation, so the two baselines' ordering flips — see
EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig4 import run_fig4a

from .conftest import emit


@pytest.mark.benchmark(group="fig4")
def test_fig4a_wolt_beats_both_baselines(benchmark):
    result = benchmark.pedantic(run_fig4a,
                                kwargs={"n_topologies": 25, "seed": 0},
                                rounds=1, iterations=1)
    # WOLT wins on average against both baselines, by >= 20%.
    assert result.mean_mbps["wolt"] > result.mean_mbps["greedy"]
    assert result.mean_mbps["wolt"] > result.mean_mbps["rssi"]
    assert result.improvement_over["greedy"] >= 0.20
    assert result.improvement_over["rssi"] >= 0.20
    # Factors land within ~3x of the paper's 26% / 70%.
    assert 0.1 <= result.improvement_over["greedy"] <= 2.5
    assert 0.1 <= result.improvement_over["rssi"] <= 2.1
    emit("Fig 4a: mean aggregates (paper-model scoring) "
         f"WOLT {result.mean_mbps['wolt']:.1f}, "
         f"Greedy {result.mean_mbps['greedy']:.1f}, "
         f"RSSI {result.mean_mbps['rssi']:.1f} Mbps; "
         f"WOLT +{result.improvement_over['greedy']:.0%} over Greedy "
         "(paper +26%), "
         f"+{result.improvement_over['rssi']:.0%} over RSSI (paper +70%). "
         "Physically-scored means: "
         f"{ {k: round(v, 1) for k, v in result.physical_mean_mbps.items()} }")
