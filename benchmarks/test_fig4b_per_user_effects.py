"""Fig. 4b — per-user win/loss fractions of WOLT vs the baselines.

Paper: 35% of users improve under WOLT vs Greedy (65% degrade); 55%
improve vs RSSI (45% degrade).  Shape: a substantial fraction of users
improves AND a substantial fraction degrades — WOLT optimizes the
aggregate, not individuals — with more winners against RSSI than
symmetric.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig4 import run_fig4b

from .conftest import emit


@pytest.mark.benchmark(group="fig4")
def test_fig4b_per_user_win_loss(benchmark):
    result = benchmark.pedantic(run_fig4b,
                                kwargs={"n_topologies": 25, "seed": 0},
                                rounds=1, iterations=1)
    # Both winners and losers exist against both baselines.
    assert result.improved_vs_greedy > 0.1
    assert result.degraded_vs_greedy > 0.05
    assert result.improved_vs_rssi > 0.1
    assert result.degraded_vs_rssi > 0.05
    # Against RSSI, at least half as many users improve as the paper's
    # 55%; the shape claim is "more than a quarter of users improve".
    assert result.improved_vs_rssi >= 0.25
    emit("Fig 4b: improved/degraded vs Greedy "
         f"{result.improved_vs_greedy:.0%}/{result.degraded_vs_greedy:.0%}"
         " (paper 35%/65%); vs RSSI "
         f"{result.improved_vs_rssi:.0%}/{result.degraded_vs_rssi:.0%}"
         " (paper 55%/45%)")
