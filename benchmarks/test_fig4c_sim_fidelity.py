"""Fig. 4c — fidelity of the simulator against the (emulated) testbed.

The paper validates its simulator by replaying a testbed topology (3
extenders, 7 users, identical channel qualities) and showing consistent
results.  Here the analytic engine plays the simulator and the emulated
hardware bench (sharing laws + measurement noise) plays the testbed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig4 import run_fig4c

from .conftest import emit


@pytest.mark.benchmark(group="fig4")
def test_fig4c_simulation_matches_testbed(benchmark):
    result = benchmark.pedantic(run_fig4c, kwargs={"seed": 7},
                                rounds=1, iterations=1)
    # Every user's simulated throughput is within 10% of the testbed's.
    assert result.max_relative_error < 0.10
    for sim, bench in zip(result.simulated_user_mbps,
                          result.testbed_user_mbps):
        assert sim == pytest.approx(bench, rel=0.10)
    # Aggregates agree even tighter.
    assert np.sum(result.simulated_user_mbps) == pytest.approx(
        np.sum(result.testbed_user_mbps), rel=0.05)
    emit("Fig 4c: per-user sim vs testbed Mbps "
         f"{[(round(s, 1), round(t, 1)) for s, t in zip(result.simulated_user_mbps, result.testbed_user_mbps)]}; "
         f"max error {result.max_relative_error:.1%}")
