"""Fig. 5 — per-user effects: worst-3 users lose little, best-3 gain a lot.

Paper (one representative topology): WOLT's worst three users lose ~6
Mbps in total vs Greedy while the best three gain ~38 Mbps — the
throughput win costs only a modest fairness hit.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import run_fig5

from .conftest import emit


@pytest.mark.benchmark(group="fig5")
def test_fig5_modest_fairness_hit(benchmark):
    result = benchmark.pedantic(run_fig5, kwargs={"seed": 3},
                                rounds=1, iterations=1)
    # Shape: the best-3 gain strictly more than the worst-3 lose.
    assert result.best_total_delta_mbps > 0
    assert result.best_total_delta_mbps > abs(
        result.worst_total_delta_mbps)
    # Magnitudes in the paper's ballpark (paper: -6 and +38 Mbps).
    assert -30.0 <= result.worst_total_delta_mbps <= 5.0
    assert 10.0 <= result.best_total_delta_mbps <= 90.0
    emit(f"Fig 5: worst-3 delta {result.worst_total_delta_mbps:+.1f} Mbps "
         f"(paper ~-6), best-3 delta {result.best_total_delta_mbps:+.1f} "
         "Mbps (paper ~+38)")


@pytest.mark.benchmark(group="fig5")
def test_fig5_shape_holds_across_topologies(benchmark):
    def run_many():
        return [run_fig5(seed=s) for s in range(8)]

    results = benchmark.pedantic(run_many, rounds=1, iterations=1)
    net_gains = [r.best_total_delta_mbps + r.worst_total_delta_mbps
                 for r in results]
    # On average across topologies the best users' gain dominates.
    assert sum(net_gains) / len(net_gains) > 0
