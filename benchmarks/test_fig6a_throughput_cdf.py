"""Fig. 6a — CDF of aggregate throughput; WOLT ~2.5x Greedy on average.

Paper: 100 trials, 15 extenders, 36 users; "WOLT outperforms the greedy
algorithm in all trials, with WOLT providing an average improvement (in
terms of aggregate throughput) of 2.5x over the greedy approach."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig6 import run_fig6a

from .conftest import emit


@pytest.mark.benchmark(group="fig6")
def test_fig6a_wolt_2_5x_over_greedy(benchmark):
    result = benchmark.pedantic(
        run_fig6a, kwargs={"n_trials": 100, "seed": 0},
        rounds=1, iterations=1)
    # WOLT wins every single trial, as the paper reports.
    assert result.wolt_wins_all_trials
    # The average improvement is in the paper's 2.5x ballpark (1.8-4x).
    assert 1.8 <= result.mean_ratio <= 4.0
    # CDF shape: the entire WOLT distribution sits to the right.
    assert np.percentile(result.wolt_mbps, 10) > np.percentile(
        result.greedy_mbps, 90)
    emit(f"Fig 6a: mean WOLT/Greedy = {result.mean_ratio:.2f}x "
         "(paper ~2.5x); "
         f"WOLT mean {result.wolt_mbps.mean():.1f} Mbps, "
         f"Greedy mean {result.greedy_mbps.mean():.1f} Mbps; "
         f"WOLT wins all {result.wolt_mbps.size} trials: "
         f"{result.wolt_wins_all_trials}")


@pytest.mark.benchmark(group="fig6")
def test_fig6a_gap_shrinks_under_physical_model(benchmark):
    """Reproduction finding: under the testbed-measured sharing law the
    WOLT/Greedy gap closes (see EXPERIMENTS.md)."""
    result = benchmark.pedantic(
        run_fig6a,
        kwargs={"n_trials": 20, "seed": 0, "plc_mode": "redistribute"},
        rounds=1, iterations=1)
    assert 0.7 <= result.mean_ratio <= 1.3
    emit("Fig 6a ablation: physically-scored WOLT/Greedy = "
         f"{result.mean_ratio:.2f}x — the 2.5x gap is a property of the "
         "paper's fixed time-sharing model")
