"""Fig. 6b — aggregate throughput per epoch as the population grows.

Paper: users arrive/depart as Poisson processes (λ=3, μ=1), the
population grows ~36 → 66 → 102 across epochs, the aggregate throughput
of WOLT increases and saturates, and WOLT outperforms Greedy at every
epoch.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig6 import run_fig6bc

from .conftest import emit


@pytest.mark.benchmark(group="fig6")
def test_fig6b_wolt_beats_greedy_every_epoch(benchmark):
    result = benchmark.pedantic(run_fig6bc,
                                kwargs={"n_epochs": 3, "seed": 0},
                                rounds=1, iterations=1)
    wolt = result.histories["wolt"]
    greedy = result.histories["greedy"]
    # Population grows by roughly 33 users per epoch (paper trajectory).
    for prev, cur in zip(wolt, wolt[1:]):
        assert 15 <= cur.n_users - prev.n_users <= 55
    # WOLT outperforms Greedy at every epoch boundary.
    for w, g in zip(wolt, greedy):
        assert w.aggregate_throughput > g.aggregate_throughput
    # WOLT's throughput is non-decreasing-then-flat (grows and saturates).
    values = [e.aggregate_throughput for e in wolt]
    assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))
    emit("Fig 6b: users " + str([e.n_users for e in wolt])
         + ", WOLT Mbps " + str([round(e.aggregate_throughput, 1)
                                 for e in wolt])
         + ", Greedy Mbps " + str([round(e.aggregate_throughput, 1)
                                   for e in greedy]))
