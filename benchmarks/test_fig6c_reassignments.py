"""Fig. 6c — WOLT's re-assignment load per epoch.

Paper: "WOLT re-assigns up to twice the number of arriving users (i.e.,
one user is swapped for every new user who arrives, on average)" — the
re-assignment overhead is relatively minor.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig6 import run_fig6bc

from .conftest import emit


@pytest.mark.benchmark(group="fig6")
def test_fig6c_reassignment_load_is_bounded(benchmark):
    result = benchmark.pedantic(run_fig6bc,
                                kwargs={"n_epochs": 4, "seed": 0},
                                rounds=1, iterations=1)
    wolt = result.histories["wolt"]
    # Per-epoch: never more than ~2x the epoch's arrivals.
    for e in wolt:
        assert e.reassignments <= 2.0 * e.arrivals + 2
    # On average around (or below) one swap per arrival.
    assert result.reassignment_per_arrival <= 2.0
    # Re-assignments do happen (WOLT is actively re-optimizing).
    assert sum(e.reassignments for e in wolt) > 0
    # Greedy and RSSI never re-assign by construction.
    for e in result.histories["greedy"]:
        assert e.reassignments == 0
    emit("Fig 6c: per-epoch (arrivals, reassignments) = "
         + str([(e.arrivals, e.reassignments) for e in wolt])
         + f"; mean per arrival {result.reassignment_per_arrival:.2f} "
         "(paper: <= ~2)")
