"""Extension study — fleet chaos acceptance gate.

Runs the full ``python -m repro.fleet.chaos`` storm against the gate
fleet: composed blackout + crash + hang faults at level 0.6, epochs
stay atomic (torn journal + resume is byte-identical), serial and
pooled runs bit-identical (real hangs reaped by the per-shard
deadline), every building recovers to the clean twin after the storm
clears, and a zero-fault chaos run is indistinguishable from a clean
one.  Claim checked: the campus service degrades, it never stalls.
"""

from __future__ import annotations

import pytest

from repro.fleet.chaos import acceptance_failures

from .conftest import emit


@pytest.mark.benchmark(group="fleet")
def test_fleet_chaos_acceptance_gate(benchmark):
    failures = benchmark.pedantic(acceptance_failures,
                                  rounds=1, iterations=1)
    assert failures == []
    emit("Fleet chaos gate: storm level 0.6 (blackout+crash+hang), "
         "recovery, serial==pooled, torn-journal atomicity: PASS")
