"""Extension study — WOLT under channel-estimation noise.

Policies decide on log-normally perturbed rate estimates and are scored
on the ground truth (paper-model scoring).  Claim checked: WOLT's
coverage-first design is robust — it retains most of its noiseless
throughput and keeps beating Greedy at every noise level a real NIC /
iperf estimation pipeline would produce.
"""

from __future__ import annotations

import pytest

from repro.experiments.robustness import run_robustness

from .conftest import emit


@pytest.mark.benchmark(group="robustness")
def test_wolt_robust_to_estimation_noise(benchmark):
    result = benchmark.pedantic(
        run_robustness,
        kwargs={"noise_levels": (0.0, 0.1, 0.2, 0.4), "n_trials": 10,
                "seed": 0},
        rounds=1, iterations=1)
    # WOLT keeps >= 85% of its noiseless throughput at every level.
    assert min(result.wolt_retention) >= 0.85
    # And keeps beating Greedy at every level.
    for li in range(len(result.noise_levels)):
        assert (result.mean_mbps["wolt"][li]
                > result.mean_mbps["greedy"][li])
    rows = ", ".join(
        f"{level:.0%}: WOLT {result.mean_mbps['wolt'][li]:.0f} / "
        f"Greedy {result.mean_mbps['greedy'][li]:.0f} / "
        f"RSSI {result.mean_mbps['rssi'][li]:.0f} Mbps"
        for li, level in enumerate(result.noise_levels))
    emit("Robustness sweep (decide noisy, score truth): " + rows)
