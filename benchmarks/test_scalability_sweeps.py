"""Scalability sweeps: where WOLT's advantage grows and where it dies.

These extend the paper's two operating points into series, asserting
the structural claims the intro makes:

* more pluggable outlets (extenders) → larger WOLT advantage,
* an Ethernet-grade backhaul → association stops mattering (this is
  exactly the paper's argument for why PLC backhauls need WOLT).
"""

from __future__ import annotations

import pytest

from repro.experiments.sweeps import (sweep_extenders, sweep_plc_quality,
                                      sweep_users)

from .conftest import emit


@pytest.mark.benchmark(group="sweeps")
def test_advantage_grows_with_extender_count(benchmark):
    result = benchmark.pedantic(sweep_extenders,
                                kwargs={"seed": 0, "n_trials": 6},
                                rounds=1, iterations=1)
    ratios = result.ratio_wolt_greedy
    # Small deployments: near parity; enterprise scale: multiples.
    assert ratios[0] < 1.6
    assert ratios[-1] > 2.0
    # Broadly increasing (allow one local dip from sampling noise).
    assert ratios[-1] > ratios[0]
    emit("Sweep extenders -> WOLT/Greedy: "
         + ", ".join(f"{int(v)}: {r:.2f}x"
                     for v, r in zip(result.values, ratios)))


@pytest.mark.benchmark(group="sweeps")
def test_advantage_persists_across_population(benchmark):
    result = benchmark.pedantic(sweep_users,
                                kwargs={"seed": 0, "n_trials": 6},
                                rounds=1, iterations=1)
    # WOLT keeps a >=2x lead over Greedy from 15 to 124 users (the
    # paper: "performs well ... with up to 15 extenders and 124
    # clients").
    assert min(result.ratio_wolt_greedy) > 2.0
    emit("Sweep users -> WOLT/Greedy: "
         + ", ".join(f"{int(v)}: {r:.2f}x"
                     for v, r in zip(result.values,
                                     result.ratio_wolt_greedy)))


@pytest.mark.benchmark(group="sweeps")
def test_ethernet_grade_backhaul_kills_the_advantage(benchmark):
    result = benchmark.pedantic(sweep_plc_quality,
                                kwargs={"seed": 0, "n_trials": 6},
                                rounds=1, iterations=1)
    ratios = result.ratio_wolt_greedy
    # The crossover: PLC-constrained -> big gap; 8x capacity -> parity.
    assert ratios[0] > 2.0
    assert ratios[-1] < 1.5
    assert all(b <= a + 0.25 for a, b in zip(ratios, ratios[1:]))
    emit("Sweep PLC scale -> WOLT/Greedy: "
         + ", ".join(f"{v:g}x: {r:.2f}x"
                     for v, r in zip(result.values, ratios)))
