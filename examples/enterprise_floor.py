#!/usr/bin/env python3
"""Enterprise-scale association on a synthesized office floor.

Builds a random building wiring plant (outlets, junction boxes, panel),
derives per-outlet PLC capacities with the HomePlug AV2 tone-map model,
drops 15 extenders and 36 users on a 100 m x 100 m floor, and compares
WOLT against the Greedy and RSSI baselines under all three PLC sharing
laws (testbed-measured, active-set time-fair, and the paper's Problem-1
model).

Run:  python examples/enterprise_floor.py [seed]
"""

import sys

import numpy as np

from repro import (PLC_MODES, enterprise_floor, evaluate,
                   greedy_assignment, jain_fairness, rssi_assignment,
                   solve_wolt)


def main(seed: int = 42) -> None:
    rng = np.random.default_rng(seed)
    scenario = enterprise_floor(n_extenders=15, n_users=36, rng=rng)
    print(f"floor: {scenario.n_extenders} extenders, "
          f"{scenario.n_users} users (seed {seed})")
    print("PLC rates (Mbps):",
          np.round(np.sort(scenario.plc_rates), 0).astype(int).tolist())
    print()

    assignments = {
        "wolt": solve_wolt(scenario).assignment,
        "greedy": greedy_assignment(scenario,
                                    rng.permutation(scenario.n_users)),
        "rssi": rssi_assignment(scenario),
    }

    header = f"{'policy':8s}" + "".join(f"{m:>14s}" for m in PLC_MODES)
    print("Aggregate throughput (Mbps) under each PLC sharing law:")
    print(header)
    for name, assignment in assignments.items():
        row = f"{name:8s}"
        for mode in PLC_MODES:
            report = evaluate(scenario, assignment, plc_mode=mode)
            row += f"{report.aggregate:14.1f}"
        print(row)
    print()

    print("Jain fairness (paper model scoring):")
    for name, assignment in assignments.items():
        report = evaluate(scenario, assignment, plc_mode="fixed")
        print(f"  {name:8s} {jain_fairness(report.user_throughputs):.3f}")

    wolt = solve_wolt(scenario, plc_mode="fixed")
    covered = len(set(wolt.assignment.tolist()))
    print()
    print(f"WOLT covers {covered}/{scenario.n_extenders} extenders "
          "(Phase I anchors one user on each) -- that coverage is what "
          "wins under the paper's fixed time-sharing model.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
