#!/usr/bin/env python3
"""Extensions tour: α-fair association, hysteresis, mobility, PLC noise.

Four studies beyond the paper, on one enterprise floor:

1. the throughput/fairness trade-off of α-fair association,
2. handoff budgeting with hysteresis (IncrementalWolt),
3. WOLT vs RSSI under random-waypoint user mobility,
4. association staleness under time-varying power-line noise.

Run:  python examples/fairness_and_mobility.py
"""

import numpy as np

from repro import (IncrementalWolt, MobilitySimulation, enterprise_floor,
                   solve_alpha_fair, solve_wolt)
from repro.plc.noise import NoiseProcess, TimeVaryingPlc
from repro.core.problem import Scenario
from repro.sim.runner import sample_floor_plan


def study_alpha_fairness(seed: int = 2) -> None:
    print("1) alpha-fair association (15 ext, 36 users):")
    print("   alpha   aggregate (Mbps)   Jain index")
    scenario = enterprise_floor(15, 36, np.random.default_rng(seed))
    for alpha in (0.0, 1.0, 2.0, 4.0):
        result = solve_alpha_fair(scenario, alpha=alpha, plc_mode="fixed")
        print(f"   {alpha:5.1f}   {result.aggregate_throughput:16.1f}"
              f"   {result.jain:10.3f}")
    print()


def study_hysteresis(seed: int = 3) -> None:
    print("2) handoff budgeting: hysteresis threshold vs moves/throughput")
    scenario = enterprise_floor(10, 30, np.random.default_rng(seed))
    print("   min gain (Mbps)   moves   aggregate after (Mbps)")
    for threshold in (0.0, 1.0, 5.0, 20.0):
        ctrl = IncrementalWolt(scenario.plc_rates,
                               min_gain_mbps=threshold)
        for uid in range(scenario.n_users):
            ctrl.add_user(uid, scenario.wifi_rates[uid])
        outcome = ctrl.reconfigure()
        print(f"   {threshold:15.1f}   {len(outcome.moves):5d}"
              f"   {outcome.aggregate_after:19.1f}")
    print()


def study_mobility(seed: int = 4, n_epochs: int = 5) -> None:
    print("3) random-waypoint mobility (5 ext, 15 walking users):")
    print("   policy  mean Mbps  handoffs/epoch")
    for policy in ("wolt", "rssi"):
        rng = np.random.default_rng(seed)
        plan = sample_floor_plan(5, rng)
        sim = MobilitySimulation(plan, 15, policy,
                                 rng=np.random.default_rng(seed + 1),
                                 epoch_duration=20.0, plc_mode="fixed")
        history = sim.run(n_epochs)
        mean_mbps = np.mean([e.aggregate_throughput for e in history])
        handoffs = np.mean([e.handoffs for e in history[1:]])
        print(f"   {policy:6s}  {mean_mbps:9.1f}  {handoffs:14.1f}")
    print()


def study_plc_noise(seed: int = 5, n_epochs: int = 12) -> None:
    print("4) time-varying PLC noise: capacity drift vs the offline "
          "calibration")
    rng = np.random.default_rng(seed)
    scenario = enterprise_floor(8, 24, rng)
    # Bursty appliance noise: links occasionally collapse for an epoch.
    plc_model = TimeVaryingPlc(
        attenuations_db=rng.uniform(35.0, 55.0, 8), rng=rng,
        noise=[NoiseProcess(sigma_db=4.0, impulse_prob=0.25,
                            impulse_db=25.0) for _ in range(8)])
    calibrated = plc_model.best_case_capacities()
    previous = solve_wolt(Scenario(wifi_rates=scenario.wifi_rates,
                                   plc_rates=calibrated)).assignment
    drift, matching_churn = [], []
    for _ in range(n_epochs):
        capacities = plc_model.step()
        drift.append(np.mean(np.abs(capacities - calibrated)
                             / np.maximum(calibrated, 1.0)))
        live = Scenario(wifi_rates=scenario.wifi_rates,
                        plc_rates=capacities)
        fresh = solve_wolt(live).assignment
        matching_churn.append(int(np.sum(fresh != previous)))
        previous = fresh
    print(f"   mean |capacity - calibration|: {np.mean(drift):.0%}")
    print(f"   users WOLT re-matches per epoch as capacities drift: "
          f"{np.mean(matching_churn):.1f} of {scenario.n_users}")
    print("   -> offline PLC calibration goes stale within epochs; the "
          "CC should re-measure.")


def main() -> None:
    study_alpha_fairness()
    study_hysteresis()
    study_mobility()
    study_plc_noise()


if __name__ == "__main__":
    main()
