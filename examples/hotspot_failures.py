#!/usr/bin/env python3
"""Stress tour: hotspot crowds, extender failures, and a floor map.

Three stress studies on the same enterprise floor:

1. a meeting-room hotspot workload — the regime where RSSI association
   collapses onto one extender and WOLT's load spreading pays most;
2. extender failure injection — recovery throughput of a global
   re-solve vs strongest-survivor fallback;
3. an ASCII rendering of the floor and WOLT's association.

Run:  python examples/hotspot_failures.py
"""

import numpy as np

from repro import (FloorPlan, build_scenario, evaluate, rssi_assignment,
                   solve_wolt)
from repro.net.visualize import render_floor
from repro.sim.failures import FailureSimulation
from repro.sim.runner import sample_floor_plan
from repro.sim.workload import hotspot_positions


def study_hotspots(seed: int = 8) -> FloorPlan:
    print("1) hotspot crowding (meeting rooms): WOLT vs RSSI")
    rng = np.random.default_rng(seed)
    plan = sample_floor_plan(10, rng)
    print("   hotspot%   WOLT (Mbps)   RSSI (Mbps)   gain")
    last_plan = plan
    for fraction in (0.0, 0.5, 0.9):
        user_xy = hotspot_positions(40, plan.width_m, plan.height_m,
                                    np.random.default_rng(seed + 1),
                                    n_hotspots=2,
                                    hotspot_fraction=fraction)
        last_plan = plan.with_users(user_xy)
        scenario = build_scenario(last_plan)
        wolt = solve_wolt(scenario, plc_mode="fixed").aggregate_throughput
        rssi = evaluate(scenario, rssi_assignment(scenario),
                        plc_mode="fixed").aggregate
        print(f"   {fraction:7.0%}   {wolt:11.1f}   {rssi:11.1f}"
              f"   {wolt / rssi:5.2f}x")
    print()
    return last_plan


def study_failures(seed: int = 9) -> None:
    print("2) extender failures (25% fail / 50% recover per epoch):")
    rng = np.random.default_rng(seed)
    plan = sample_floor_plan(8, rng)
    user_xy = hotspot_positions(30, plan.width_m, plan.height_m, rng)
    scenario = build_scenario(plan.with_users(user_xy))
    print("   policy  mean Mbps  mean offline users")
    for policy in ("wolt", "rssi"):
        sim = FailureSimulation(scenario, policy,
                                rng=np.random.default_rng(seed + 1),
                                fail_prob=0.25, recover_prob=0.5,
                                plc_mode="fixed")
        history = sim.run(10)
        mbps = np.mean([e.aggregate_throughput for e in history])
        offline = np.mean([e.offline_users for e in history])
        print(f"   {policy:6s}  {mbps:9.1f}  {offline:18.2f}")
    print()


def study_floor_map(plan: FloorPlan) -> None:
    print("3) the hotspot floor, as WOLT associates it:")
    scenario = build_scenario(plan)
    result = solve_wolt(scenario)
    print(render_floor(plan, assignment=result.assignment,
                       width_chars=64, height_chars=20))


def main() -> None:
    plan = study_hotspots()
    study_failures()
    study_floor_map(plan)


if __name__ == "__main__":
    main()
