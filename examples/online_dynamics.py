#!/usr/bin/env python3
"""Online operation: users arrive and depart; WOLT re-optimizes.

Reproduces the paper's temporal setting (Poisson arrivals at rate 3,
departures at rate 1): users join the network mid-epoch on their
strongest extender, and at every epoch boundary the Central Controller
re-runs WOLT and re-associates users.  The Greedy baseline places each
arrival once and never re-assigns.

Run:  python examples/online_dynamics.py
"""

import numpy as np

from repro import OnlineSimulation
from repro.sim.runner import sample_floor_plan


def main(seed: int = 11, n_epochs: int = 4) -> None:
    print("policy  epoch  users  arrivals  reassigned  Mbps(fixed)  Jain")
    for policy in ("wolt", "greedy", "rssi"):
        rng = np.random.default_rng(seed)
        plan = sample_floor_plan(n_extenders=15, rng=rng)
        sim = OnlineSimulation(plan, policy,
                               rng=np.random.default_rng(seed + 1),
                               plc_mode="fixed")
        sim.seed_users(3)
        for stats in sim.run(n_epochs):
            print(f"{policy:6s}  {stats.epoch:5d}  {stats.n_users:5d}  "
                  f"{stats.arrivals:8d}  {stats.reassignments:10d}  "
                  f"{stats.aggregate_throughput:11.1f}  "
                  f"{stats.jain_fairness:.3f}")
        print()

    print("WOLT's re-assignment load stays near one swap per arrival --")
    print("the 'relatively minor overhead' the paper reports (Fig. 6c).")


if __name__ == "__main__":
    main()
