#!/usr/bin/env python3
"""Quickstart: solve the paper's Fig. 3 case study with WOLT.

Two PLC-WiFi extenders share a power-line backhaul (60 and 20 Mbps);
two users can reach both over WiFi.  Naive RSSI association wastes more
than 40% of the achievable throughput; WOLT finds the optimum.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (Scenario, brute_force_optimal, evaluate,
                   greedy_assignment, rssi_assignment, solve_wolt)


def main() -> None:
    # Rates straight from Fig. 3a of the paper (Mbps).
    scenario = Scenario(
        wifi_rates=np.array([
            [15.0, 10.0],   # user 1 -> extender 1 / extender 2
            [40.0, 20.0],   # user 2
        ]),
        plc_rates=np.array([60.0, 20.0]),  # backhaul of each extender
    )

    print("Policy      assignment   aggregate (Mbps)")
    for name, assignment in [
            ("RSSI", rssi_assignment(scenario)),
            ("Greedy", greedy_assignment(scenario)),
            ("Optimal", brute_force_optimal(scenario).assignment)]:
        report = evaluate(scenario, assignment)
        print(f"{name:10s}  {assignment.tolist()}        "
              f"{report.aggregate:6.2f}")

    result = solve_wolt(scenario)
    print(f"{'WOLT':10s}  {result.assignment.tolist()}        "
          f"{result.aggregate_throughput:6.2f}")
    print()
    print("Per-user throughputs under WOLT:",
          np.round(result.report.user_throughputs, 2), "Mbps")
    print("Phase-I anchors (set U1):", result.anchored_users.tolist())


if __name__ == "__main__":
    main()
