#!/usr/bin/env python3
"""Replay the paper's Section III measurement study on emulated hardware.

Walks through the three experiments that motivate WOLT:

1. WiFi-only: the 802.11 performance anomaly on a PLC extender cell.
2. PLC-only: isolation throughputs of four power-line links.
3. PLC sharing: time-fair 1/k division among active extenders.

and cross-checks the analytic sharing laws against slot-level MAC
simulations (802.11 DCF and IEEE 1901 CSMA/CA with deferral counters).

Run:  python examples/testbed_measurement.py
"""

import numpy as np

from repro.experiments.fig2 import run_fig2a, run_fig2b, run_fig2c


def main() -> None:
    a = run_fig2a()
    print("1) WiFi sharing: user 2 walks away; both users suffer")
    print("   location   user1   user2   (DCF-simulated: user1  user2)")
    for loc, u1, u2, m1, m2 in zip(a.testbed.locations,
                                   a.testbed.user1_mbps,
                                   a.testbed.user2_mbps,
                                   a.mac_user1_mbps, a.mac_user2_mbps):
        print(f"   {loc:10s} {u1:6.1f}  {u2:6.1f}"
              f"             {m1:6.1f}  {m2:6.1f}")
    print("   -> throughput-fair: both users converge to the same rate,")
    print("      dragged down by the slow one (the performance anomaly).")
    print()

    b = run_fig2b()
    print("2) PLC isolation throughputs (Mbps):")
    for name, mbps in zip(b.extenders, b.isolation_mbps):
        print(f"   {name}: {mbps:6.1f}")
    print()

    c = run_fig2c()
    print("3) PLC sharing: fraction of isolation throughput per link")
    print("   k   testbed ratios          1901-MAC ratios        expect")
    for k in sorted(c.testbed.shared_mbps):
        bench = " ".join(f"{x:.2f}" for x in c.testbed.share_ratio(k))
        mac = " ".join(f"{x:.2f}" for x in c.mac_share_ratios[k])
        print(f"   {k}   {bench:22s}  {mac:21s}  {1 / k:.2f}")
    print("   -> time-fair: each active link gets ~1/k of the medium.")


if __name__ == "__main__":
    main()
