#!/usr/bin/env python3
"""Beyond the paper: association under finite (video-streaming) demands.

The paper models saturated TCP flows.  Real enterprise traffic is often
rate-limited — e.g. 4K video at ~25 Mbps, HD at ~8 Mbps, audio at
~2 Mbps.  This example uses the demand-aware evaluator
(:func:`repro.sim.traffic.evaluate_with_demands`) to check how many
streams each association policy can satisfy on the same floor.

Run:  python examples/video_streaming_demands.py
"""

import numpy as np

from repro import (enterprise_floor, greedy_assignment, rssi_assignment,
                   solve_wolt)
from repro.sim.traffic import evaluate_with_demands


def main(seed: int = 5) -> None:
    rng = np.random.default_rng(seed)
    scenario = enterprise_floor(n_extenders=10, n_users=30, rng=rng)
    # A mix of stream classes, assigned round-robin to users.
    classes = [("4K video", 25.0), ("HD video", 8.0), ("audio", 2.0)]
    demands = np.array([classes[i % 3][1]
                        for i in range(scenario.n_users)])

    assignments = {
        "wolt": solve_wolt(scenario).assignment,
        "greedy": greedy_assignment(scenario,
                                    rng.permutation(scenario.n_users)),
        "rssi": rssi_assignment(scenario),
    }

    print(f"{scenario.n_users} users: 10x 4K (25 Mbps), "
          "10x HD (8 Mbps), 10x audio (2 Mbps)")
    print()
    print("policy   satisfied  carried (Mbps)  demand met")
    total_demand = demands.sum()
    for name, assignment in assignments.items():
        report = evaluate_with_demands(scenario, assignment, demands)
        satisfied = int(report.satisfied.sum())
        print(f"{name:8s} {satisfied:4d}/{scenario.n_users}   "
              f"{report.aggregate:13.1f}  "
              f"{report.aggregate / total_demand:9.1%}")

    print()
    print("Per-class satisfaction under WOLT:")
    report = evaluate_with_demands(scenario, assignments["wolt"], demands)
    for k, (label, mbps) in enumerate(classes):
        members = np.arange(scenario.n_users)[k::3]
        ok = int(report.satisfied[members].sum())
        print(f"  {label:9s} ({mbps:4.0f} Mbps): "
              f"{ok}/{len(members)} satisfied")


if __name__ == "__main__":
    main()
