#!/usr/bin/env python
"""CI integration check: a SIGKILLed sweep resumes bit-identically.

End-to-end exercise of the durable `wolt sim` path, as a real operator
would hit it:

1. start a checkpointed sweep via ``python -m repro.cli sim``;
2. SIGKILL it once a few trials are journaled (no warning, no cleanup);
3. corrupt the journal tail with a torn partial record, as a crash
   mid-``write`` would;
4. resume the sweep with ``--resume`` (different worker count, to prove
   results do not depend on it);
5. run the identical sweep uninterrupted into a second checkpoint;
6. require the two checkpoint files to be **byte-identical** (both end
   as canonical snapshots) and the reports to agree.

Exits non-zero with a diagnostic on any deviation.  Needs only the
repo + its runtime deps: run as ``PYTHONPATH=src python
scripts/crash_resume_check.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

SIM_ARGS = ["sim", "--trials", "12", "--extenders", "3", "--users", "6",
            "--seed", "7", "--policies", "wolt,greedy"]

#: Journal lines (header + records) required before the kill: enough
#: that the resumed run demonstrably merges prior work.
MIN_LINES_BEFORE_KILL = 4

#: A torn partial record, as left by a crash mid-append.
TORN_TAIL = b'{"kind":"record","index":11,"payload":{"type":"res'


def _fail(message: str) -> None:
    print(f"crash_resume_check: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def _wolt(*extra: str, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *SIM_ARGS, *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, **kwargs)


def _wait_for_journal(path: Path, deadline_s: float = 120.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if path.exists():
            lines = path.read_bytes().count(b"\n")
            if lines >= MIN_LINES_BEFORE_KILL:
                return
        time.sleep(0.05)
    _fail(f"journal {path} never reached {MIN_LINES_BEFORE_KILL} lines")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="crash-resume-"))
    interrupted = workdir / "interrupted.jsonl"
    uninterrupted = workdir / "uninterrupted.jsonl"

    # 1-2. Start a checkpointed sweep and SIGKILL it mid-run.
    victim = _wolt("--checkpoint", str(interrupted), "--workers", "2")
    try:
        _wait_for_journal(interrupted)
    finally:
        victim.kill()  # SIGKILL: no handler, no flush, no goodbye
        victim.wait(timeout=60)
    n_before = interrupted.read_bytes().count(b"\n")
    print(f"killed sweep with {n_before} journal lines on disk")

    # 3. Tear the journal tail, as a crash mid-write would.
    with open(interrupted, "ab") as handle:
        handle.write(TORN_TAIL)

    # 4. Resume under a different worker count.
    resumed = _wolt("--checkpoint", str(interrupted), "--resume",
                    "--workers", "3")
    out, err = resumed.communicate(timeout=600)
    if resumed.returncode != 0:
        _fail(f"resume exited {resumed.returncode}: {err}")
    if "resumed from checkpoint" not in out:
        _fail(f"resume report missing merge marker:\n{out}")
    print("resumed run completed")

    # 5. The same sweep, uninterrupted and serial.
    cold = _wolt("--checkpoint", str(uninterrupted))
    cold_out, cold_err = cold.communicate(timeout=600)
    if cold.returncode != 0:
        _fail(f"uninterrupted run exited {cold.returncode}: {cold_err}")

    # 6. Byte-identical snapshots, matching per-policy reports.
    if interrupted.read_bytes() != uninterrupted.read_bytes():
        _fail("resumed checkpoint differs from the uninterrupted one "
              f"({interrupted} vs {uninterrupted})")
    resumed_stats = [line for line in out.splitlines()
                     if "mean aggregate" in line]
    cold_stats = [line for line in cold_out.splitlines()
                  if "mean aggregate" in line]
    if not resumed_stats or resumed_stats != cold_stats:
        _fail("reports disagree:\n"
              f"resumed: {resumed_stats}\ncold: {cold_stats}")
    print("crash_resume_check: OK — kill + torn tail + resume is "
          "byte-identical to an uninterrupted run")


if __name__ == "__main__":
    main()
