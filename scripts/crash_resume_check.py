#!/usr/bin/env python
"""CI integration check: a SIGKILLed run resumes bit-identically.

End-to-end exercise of the durable CLI paths, as a real operator would
hit them — ``wolt sim``, then ``wolt serve``, then ``wolt record`` →
``wolt serve --from``:

1. start a checkpointed run via ``python -m repro.cli``;
2. SIGKILL it once a few trials/epochs are journaled (no warning, no
   cleanup);
3. corrupt the journal tail with a torn partial record, as a crash
   mid-``write`` would;
4. resume with ``--resume`` (different worker count, to prove results
   do not depend on it);
5. run the identical workload uninterrupted into a second journal;
6. require the two journal files to be **byte-identical** (both end
   as canonical snapshots) and the reports to agree.

The record→replay phase then reruns the serve check from a recorded
telemetry stream whose tail was torn (a recorder crash mid-append):
the stream's damage must degrade gracefully, the SIGKILLed replay
must resume byte-identically, and a *clean* recorded replay journal
must be byte-identical to the synthetic serve journal — the CLI-level
proof of ``wolt record``/``--from`` replay identity.

Exits non-zero with a diagnostic on any deviation.  Needs only the
repo + its runtime deps: run as ``PYTHONPATH=src python
scripts/crash_resume_check.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

SIM_ARGS = ["sim", "--trials", "12", "--extenders", "3", "--users", "6",
            "--seed", "7", "--policies", "wolt,greedy"]

#: Journal lines (header + records) required before the kill: enough
#: that the resumed run demonstrably merges prior work.
MIN_LINES_BEFORE_KILL = 4

#: A torn partial record, as left by a crash mid-append.
TORN_TAIL = b'{"kind":"record","index":11,"payload":{"type":"res'


#: The serve phase: a fleet big enough that epochs take long enough
#: to SIGKILL the service mid-run (see the fixture's comment).
SERVE_SPEC = "tests/data/fleet_crash.yaml"
SERVE_EPOCHS = 20


def _fail(message: str) -> None:
    print(f"crash_resume_check: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def _wolt_cmd(*args: str, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, cwd=REPO_ROOT, **kwargs)


def _wolt(*extra: str, **kwargs):
    return _wolt_cmd(*SIM_ARGS, *extra, **kwargs)


def _wait_for_journal(path: Path, min_lines: int = MIN_LINES_BEFORE_KILL,
                      deadline_s: float = 120.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if path.exists():
            lines = path.read_bytes().count(b"\n")
            if lines >= min_lines:
                return
        time.sleep(0.02)
    _fail(f"journal {path} never reached {min_lines} lines")


def check_serve(extra: tuple = (), label: str = "serve") -> Path:
    """SIGKILL ``wolt serve`` mid-epoch; torn tail + resume must be
    byte-identical to an uninterrupted service run.

    ``extra`` rides extra flags (e.g. ``--from <stream>``) into every
    serve invocation; returns the uninterrupted journal path so later
    phases can compare against it.
    """
    workdir = Path(tempfile.mkdtemp(prefix=f"crash-resume-{label}-"))
    interrupted = workdir / "interrupted.jsonl"
    uninterrupted = workdir / "uninterrupted.jsonl"
    base = ["serve", "--spec", SERVE_SPEC, "--quiet", *extra]

    # 1-2. Start the epoch loop and SIGKILL it mid-run.
    victim = _wolt_cmd(*base, "--epochs", str(SERVE_EPOCHS),
                       "--journal", str(interrupted), "--workers", "2")
    try:
        _wait_for_journal(interrupted, min_lines=3)
    finally:
        victim.kill()  # SIGKILL: no handler, no flush, no goodbye
        victim.wait(timeout=60)
    journaled = interrupted.read_bytes().count(b'"kind":"record"')
    print(f"killed serve with {journaled} epochs journaled")
    if journaled >= SERVE_EPOCHS:
        _fail("service finished before the kill; grow the fixture "
              f"({SERVE_SPEC}) or raise SERVE_EPOCHS")

    # 3. Tear the journal tail, as a crash mid-write would.
    with open(interrupted, "ab") as handle:
        handle.write(TORN_TAIL)

    # 4. Resume the remaining epochs under a different worker count.
    resumed = _wolt_cmd(*base, "--epochs",
                        str(SERVE_EPOCHS - journaled),
                        "--journal", str(interrupted), "--resume",
                        "--workers", "3")
    out, err = resumed.communicate(timeout=600)
    if resumed.returncode != 0:
        _fail(f"serve resume exited {resumed.returncode}: {err}")
    if "resumed from" not in out:
        _fail(f"serve resume missing replay marker:\n{out}")
    print("resumed service completed")

    # 5. The same epochs, uninterrupted and serial.
    cold = _wolt_cmd(*base, "--epochs", str(SERVE_EPOCHS),
                     "--journal", str(uninterrupted))
    cold_out, cold_err = cold.communicate(timeout=600)
    if cold.returncode != 0:
        _fail(f"uninterrupted serve exited {cold.returncode}: "
              f"{cold_err}")

    # 6. Byte-identical snapshots.
    if interrupted.read_bytes() != uninterrupted.read_bytes():
        _fail(f"resumed {label} journal differs from the "
              f"uninterrupted one ({interrupted} vs {uninterrupted})")
    print(f"crash_resume_check[{label}]: OK — kill + torn tail + "
          "resume is byte-identical to an uninterrupted service run")
    return uninterrupted


def check_sim() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="crash-resume-"))
    interrupted = workdir / "interrupted.jsonl"
    uninterrupted = workdir / "uninterrupted.jsonl"

    # 1-2. Start a checkpointed sweep and SIGKILL it mid-run.
    victim = _wolt("--checkpoint", str(interrupted), "--workers", "2")
    try:
        _wait_for_journal(interrupted)
    finally:
        victim.kill()  # SIGKILL: no handler, no flush, no goodbye
        victim.wait(timeout=60)
    n_before = interrupted.read_bytes().count(b"\n")
    print(f"killed sweep with {n_before} journal lines on disk")

    # 3. Tear the journal tail, as a crash mid-write would.
    with open(interrupted, "ab") as handle:
        handle.write(TORN_TAIL)

    # 4. Resume under a different worker count.
    resumed = _wolt("--checkpoint", str(interrupted), "--resume",
                    "--workers", "3")
    out, err = resumed.communicate(timeout=600)
    if resumed.returncode != 0:
        _fail(f"resume exited {resumed.returncode}: {err}")
    if "resumed from checkpoint" not in out:
        _fail(f"resume report missing merge marker:\n{out}")
    print("resumed run completed")

    # 5. The same sweep, uninterrupted and serial.
    cold = _wolt("--checkpoint", str(uninterrupted))
    cold_out, cold_err = cold.communicate(timeout=600)
    if cold.returncode != 0:
        _fail(f"uninterrupted run exited {cold.returncode}: {cold_err}")

    # 6. Byte-identical snapshots, matching per-policy reports.
    if interrupted.read_bytes() != uninterrupted.read_bytes():
        _fail("resumed checkpoint differs from the uninterrupted one "
              f"({interrupted} vs {uninterrupted})")
    resumed_stats = [line for line in out.splitlines()
                     if "mean aggregate" in line]
    cold_stats = [line for line in cold_out.splitlines()
                  if "mean aggregate" in line]
    if not resumed_stats or resumed_stats != cold_stats:
        _fail("reports disagree:\n"
              f"resumed: {resumed_stats}\ncold: {cold_stats}")
    print("crash_resume_check[sim]: OK — kill + torn tail + resume "
          "is byte-identical to an uninterrupted run")


def check_record_replay(synthetic_journal: Path) -> None:
    """``wolt record`` → SIGKILLed ``wolt serve --from`` → resume.

    Tears the *stream* tail too (a recorder crash mid-append): the
    damage must classify gracefully — not crash the service — and the
    torn-stream replays must still resume byte-identically.  Finally
    a clean-stream replay journal is byte-compared against the
    synthetic serve journal from the previous phase.
    """
    workdir = Path(tempfile.mkdtemp(prefix="crash-resume-record-"))
    stream = workdir / "telemetry.jsonl"
    recorder = _wolt_cmd("record", "--spec", SERVE_SPEC, "--epochs",
                         str(SERVE_EPOCHS), "--out", str(stream))
    out, err = recorder.communicate(timeout=600)
    if recorder.returncode != 0:
        _fail(f"wolt record exited {recorder.returncode}: {err}")
    print(f"recorded {SERVE_EPOCHS} epochs of telemetry")

    # Clean-stream CLI identity: replaying the recording must journal
    # byte-identically to the synthetic run of the same spec.
    clean_journal = workdir / "clean-replay.jsonl"
    replay = _wolt_cmd("serve", "--spec", SERVE_SPEC, "--quiet",
                       "--from", str(stream), "--epochs",
                       str(SERVE_EPOCHS), "--journal",
                       str(clean_journal))
    out, err = replay.communicate(timeout=600)
    if replay.returncode != 0:
        _fail(f"clean replay exited {replay.returncode}: {err}")
    if clean_journal.read_bytes() != synthetic_journal.read_bytes():
        _fail("clean recorded replay journal differs from the "
              f"synthetic serve journal ({clean_journal} vs "
              f"{synthetic_journal})")
    print("clean recorded replay is byte-identical to the synthetic "
          "serve journal")

    # Tear the stream tail (recorder crash mid-append) and run the
    # full kill/torn-journal/resume drill against the damaged stream.
    torn_stream = workdir / "telemetry-torn.jsonl"
    torn_stream.write_bytes(stream.read_bytes() + TORN_TAIL)
    check_serve(extra=("--from", str(torn_stream)),
                label="record-replay")


def main() -> None:
    check_sim()
    synthetic_journal = check_serve()
    check_record_replay(synthetic_journal)


if __name__ == "__main__":
    main()
