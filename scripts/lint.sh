#!/usr/bin/env sh
# Run the full static-analysis gate locally: woltlint, then ruff and
# mypy when they are installed (both live in the ``dev`` extra; CI runs
# all three unconditionally).  Mirrors the ``lint`` job in
# .github/workflows/ci.yml.
#
# Usage:
#   scripts/lint.sh              # full tree (src tests tools benchmarks)
#   scripts/lint.sh --changed    # only .py files changed vs origin/main
#
# --changed is a fast pre-push loop: it feeds woltlint/ruff just the
# changed files.  Note the project-pass rules (W010+) see only those
# files in this mode, so cross-module findings involving *unchanged*
# files can be missed — the full run (and CI) stays authoritative.
set -eu

cd "$(dirname "$0")/.."
status=0

LINT_PATHS="src tests tools benchmarks"
CHANGED_MODE=0
if [ "${1:-}" = "--changed" ]; then
    CHANGED_MODE=1
    base=$(git merge-base origin/main HEAD 2>/dev/null || echo "")
    if [ -z "$base" ]; then
        echo "lint.sh: cannot find merge-base with origin/main;" \
             "falling back to full run" >&2
    else
        # Changed-or-added .py files vs the branch point, plus any
        # uncommitted ones; deleted files drop out via --diff-filter.
        changed=$( { git diff --name-only --diff-filter=d "$base" -- \
                       '*.py'; \
                     git diff --name-only --diff-filter=d -- '*.py'; \
                     git ls-files --others --exclude-standard -- \
                       '*.py'; } | sort -u)
        if [ -z "$changed" ]; then
            echo "lint.sh: no Python files changed vs origin/main"
            exit 0
        fi
        LINT_PATHS=$changed
        echo "lint.sh: linting changed files only:"
        printf '  %s\n' $changed
    fi
fi

echo "== woltlint =="
# shellcheck disable=SC2086 — word splitting of the path list is wanted
python -m tools.woltlint $LINT_PATHS --cache || status=1

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    ruff check $LINT_PATHS || status=1
else
    echo "ruff not installed; skipping (pip install -e '.[dev]')"
fi

echo "== mypy =="
if [ "$CHANGED_MODE" = 1 ]; then
    echo "skipped in --changed mode (module-level config; run full)"
elif command -v mypy >/dev/null 2>&1; then
    mypy || status=1
else
    echo "mypy not installed; skipping (pip install -e '.[dev]')"
fi

exit "$status"
