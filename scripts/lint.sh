#!/usr/bin/env sh
# Run the full static-analysis gate locally: woltlint, then ruff and
# mypy when they are installed (both live in the ``dev`` extra; CI runs
# all three unconditionally).  Mirrors the ``lint`` job in
# .github/workflows/ci.yml.  Usage: scripts/lint.sh
set -eu

cd "$(dirname "$0")/.."
status=0

echo "== woltlint =="
python -m tools.woltlint src tests || status=1

echo "== ruff =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests tools || status=1
else
    echo "ruff not installed; skipping (pip install -e '.[dev]')"
fi

echo "== mypy =="
if command -v mypy >/dev/null 2>&1; then
    mypy || status=1
else
    echo "mypy not installed; skipping (pip install -e '.[dev]')"
fi

exit "$status"
