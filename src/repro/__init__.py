"""WOLT: auto-configuration of integrated enterprise PLC-WiFi networks.

A from-scratch Python reproduction of *WOLT: Auto-Configuration of
Integrated Enterprise PLC-WiFi Networks* (Alhulayyil et al., ICDCS
2020): the two-phase user-association algorithm, the RSSI / Greedy
baselines, the PLC (IEEE 1901 / HomePlug AV2) and WiFi (802.11)
substrates it runs on, an emulated hardware testbed, and the complete
evaluation harness for every figure in the paper.

Quickstart::

    import numpy as np
    from repro import Scenario, solve_wolt

    scenario = Scenario(
        wifi_rates=np.array([[15.0, 10.0], [40.0, 20.0]]),  # r_ij (Mbps)
        plc_rates=np.array([60.0, 20.0]),                   # c_j (Mbps)
    )
    result = solve_wolt(scenario)
    print(result.assignment, result.aggregate_throughput)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-reproduced numbers.
"""

from .core.baselines import (greedy_assignment, random_assignment,
                             rssi_assignment, selfish_greedy_assignment)
from .core.controller import CentralController
from .core.dynamic import IncrementalWolt
from .core.fairness import solve_alpha_fair
from .core.optimal import brute_force_optimal
from .core.phase1 import phase1_utilities, solve_phase1
from .core.phase2 import solve_phase2, solve_phase2_continuous
from .core.problem import (UNASSIGNED, Scenario, validate_assignment,
                           validate_assignment_batch)
from .core.wolt import WoltResult, solve_wolt
from .net.engine import (BatchThroughputReport, ThroughputReport,
                         aggregate_throughput, count_engine_calls,
                         evaluate, evaluate_batch)
from .net.metrics import compare_per_user, jain_fairness
from .net.topology import FloorPlan, build_scenario, enterprise_floor
from .plc.channel import PowerlineNetwork, random_building
from .plc.homeplug import Av2Phy
from .plc.sharing import PLC_MODES, allocate_backhaul
from .sim.dynamics import OnlineSimulation
from .sim.mobility import MobilitySimulation
from .sim.runner import run_online_comparison, run_policy, run_trials
from .testbed.devices import EmulatedTestbed, Laptop, PlcExtender
from .wifi.phy import WifiPhy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # problem & algorithms
    "Scenario", "UNASSIGNED", "validate_assignment",
    "validate_assignment_batch",
    "solve_wolt", "WoltResult", "solve_phase1", "solve_phase2",
    "solve_phase2_continuous", "phase1_utilities",
    "rssi_assignment", "greedy_assignment", "selfish_greedy_assignment",
    "random_assignment", "brute_force_optimal", "CentralController",
    "IncrementalWolt", "solve_alpha_fair",
    # network model
    "evaluate", "evaluate_batch", "aggregate_throughput",
    "ThroughputReport", "BatchThroughputReport", "count_engine_calls",
    "jain_fairness", "compare_per_user", "PLC_MODES", "allocate_backhaul",
    "FloorPlan", "build_scenario", "enterprise_floor",
    # substrates
    "WifiPhy", "Av2Phy", "PowerlineNetwork", "random_building",
    # simulation & testbed
    "OnlineSimulation", "MobilitySimulation", "run_trials", "run_policy",
    "run_online_comparison", "EmulatedTestbed", "PlcExtender", "Laptop",
]
