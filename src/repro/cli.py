"""``wolt`` command-line interface.

Runs any of the paper's experiments from a shell::

    wolt fig2            # medium-sharing measurements
    wolt fig3            # the case study (22 / 30 / 40 Mbps)
    wolt fig4            # testbed comparison
    wolt fig5            # per-user fairness drill-down
    wolt fig6            # large-scale simulation suite
    wolt faults          # control-plane fault-injection sweep
    wolt solve --extenders 15 --users 36 --seed 1
    wolt all             # every figure, paper-scale

All experiments are deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .experiments import (faults, fig2, fig3, fig4, fig5, fig6,
                          robustness, sweeps)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="wolt",
        description="Reproduce the WOLT (ICDCS 2020) experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
            ("fig2", "medium sharing in the PLC and WiFi domains"),
            ("fig3", "the two-user / two-extender case study"),
            ("fig4", "testbed comparison (3 extenders, 7 laptops)"),
            ("fig5", "per-user fairness drill-down"),
            ("fig6", "large-scale simulation suite"),
            ("sweeps", "scalability sweeps (extension)"),
            ("robustness", "estimation-noise robustness (extension)"),
            ("faults", "control-plane fault-injection sweep "
                       "(extension)"),
            ("all", "run every figure")]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=0,
                       help="master random seed (default 0)")
        if name in ("fig6", "all"):
            p.add_argument("--trials", type=int, default=100,
                           help="Fig 6a Monte-Carlo trials (default 100)")
            p.add_argument("--workers", type=int, default=None,
                           help="worker processes for the Monte-Carlo "
                                "trials (default: serial; results are "
                                "bit-identical for any worker count)")
        elif name == "faults":
            p.add_argument("--trials", type=int, default=10,
                           help="floors per fault level (default 10)")

    solve = sub.add_parser(
        "solve", help="run WOLT on a random enterprise floor")
    solve.add_argument("--extenders", type=int, default=15)
    solve.add_argument("--users", type=int, default=36)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--plc-mode", choices=("redistribute", "active",
                                              "fixed"),
                       default="redistribute",
                       help="PLC sharing law for scoring")
    return parser


def _solve(args: argparse.Namespace) -> str:
    from .core.baselines import greedy_assignment, rssi_assignment
    from .core.wolt import solve_wolt
    from .net.engine import evaluate
    from .net.topology import enterprise_floor

    rng = np.random.default_rng(args.seed)
    scenario = enterprise_floor(args.extenders, args.users, rng)
    wolt = solve_wolt(scenario, plc_mode=args.plc_mode)
    greedy = evaluate(scenario,
                      greedy_assignment(scenario,
                                        rng.permutation(args.users)),
                      plc_mode=args.plc_mode)
    rssi = evaluate(scenario, rssi_assignment(scenario),
                    plc_mode=args.plc_mode)
    lines = [
        f"scenario: {args.extenders} extenders, {args.users} users, "
        f"seed {args.seed}, plc_mode={args.plc_mode}",
        f"WOLT   aggregate: {wolt.aggregate_throughput:8.2f} Mbps",
        f"Greedy aggregate: {greedy.aggregate:8.2f} Mbps",
        f"RSSI   aggregate: {rssi.aggregate:8.2f} Mbps",
        f"WOLT assignment: {wolt.assignment.tolist()}",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "fig2":
        print(fig2.main(args.seed))
    elif args.command == "fig3":
        print(fig3.main())
    elif args.command == "fig4":
        print(fig4.main(args.seed))
    elif args.command == "fig5":
        print(fig5.main(args.seed + 3))
    elif args.command == "fig6":
        print(fig6.main(args.seed, n_trials=args.trials,
                        workers=args.workers))
    elif args.command == "sweeps":
        print(sweeps.main(args.seed))
    elif args.command == "robustness":
        print(robustness.main(args.seed))
    elif args.command == "faults":
        print(faults.main(args.seed, n_trials=args.trials))
    elif args.command == "all":
        print(fig2.main(args.seed))
        print()
        print(fig3.main())
        print()
        print(fig4.main(args.seed))
        print()
        print(fig5.main(args.seed + 3))
        print()
        print(fig6.main(args.seed, n_trials=args.trials,
                        workers=args.workers))
    elif args.command == "solve":
        print(_solve(args))
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
