"""``wolt`` command-line interface.

Runs any of the paper's experiments from a shell::

    wolt fig2            # medium-sharing measurements
    wolt fig3            # the case study (22 / 30 / 40 Mbps)
    wolt fig4            # testbed comparison
    wolt fig5            # per-user fairness drill-down
    wolt fig6            # large-scale simulation suite
    wolt faults          # control-plane fault-injection sweep
    wolt chaos           # composed-fault chaos sweep (self-healing)
    wolt sim --checkpoint run.jsonl --workers 4   # durable sweep
    wolt sim --checkpoint run.jsonl --resume      # continue after a crash
    wolt solve --extenders 15 --users 36 --seed 1
    wolt serve --spec fleet.yaml --epochs 10      # campus fleet service
    wolt serve --spec fleet.yaml --epochs 2 --dry-run   # preview only
    wolt record --spec fleet.yaml --epochs 10 --out telemetry.jsonl
    wolt serve --spec fleet.yaml --epochs 10 --from telemetry.jsonl
    wolt all             # every figure, paper-scale

All experiments are deterministic for a given ``--seed``; a
checkpointed ``wolt sim`` resumed after a crash is bit-identical to an
uninterrupted run, and ``wolt serve --from`` replaying a clean
``wolt record`` stream is byte-identical (journal included) to the
synthetic run of the same spec.  Exit codes: 0 success, 1 on
checkpoint or telemetry-ingest errors (fingerprint mismatch,
corruption, damaged stream header, ``--strict`` integrity failures),
130/143 when a run was interrupted by SIGINT/SIGTERM after flushing
its checkpoint.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional, Tuple

import numpy as np

from .experiments import (chaos, faults, fig2, fig3, fig4, fig5, fig6,
                          robustness, sweeps)

__all__ = ["main", "build_parser"]

#: Exit codes for a gracefully interrupted durable run (128 + signum).
INTERRUPT_EXIT_CODES = {"SIGINT": 128 + signal.SIGINT,
                        "SIGTERM": 128 + signal.SIGTERM}

#: Exit code for checkpoint-layer failures (mismatch, corruption).
CHECKPOINT_ERROR_EXIT = 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="wolt",
        description="Reproduce the WOLT (ICDCS 2020) experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in [
            ("fig2", "medium sharing in the PLC and WiFi domains"),
            ("fig3", "the two-user / two-extender case study"),
            ("fig4", "testbed comparison (3 extenders, 7 laptops)"),
            ("fig5", "per-user fairness drill-down"),
            ("fig6", "large-scale simulation suite"),
            ("sweeps", "scalability sweeps (extension)"),
            ("robustness", "estimation-noise robustness (extension)"),
            ("faults", "control-plane fault-injection sweep "
                       "(extension)"),
            ("chaos", "composed-fault chaos sweep for the "
                      "self-healing control loop (extension)"),
            ("all", "run every figure")]:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=0,
                       help="master random seed (default 0)")
        if name in ("fig6", "all"):
            p.add_argument("--trials", type=int, default=100,
                           help="Fig 6a Monte-Carlo trials (default 100)")
            p.add_argument("--workers", type=int, default=None,
                           help="worker processes for the Monte-Carlo "
                                "trials (default: serial; results are "
                                "bit-identical for any worker count)")
        elif name == "chaos":
            p.add_argument("--trials", type=int, default=10,
                           help="floors per chaos level (default 10)")
        elif name == "faults":
            p.add_argument("--trials", type=int, default=10,
                           help="floors per fault level (default 10)")
            p.add_argument("--checkpoint", type=str, default=None,
                           help="journal per-trial partial results to "
                                "this crash-consistent JSONL file")
            p.add_argument("--resume", action="store_true",
                           help="continue an interrupted fault sweep "
                                "from its checkpoint")
        elif name == "sweeps":
            p.add_argument("--checkpoint-dir", type=str, default=None,
                           help="persist each finished sweep "
                                "atomically under this directory")
            p.add_argument("--resume", action="store_true",
                           help="skip sweeps already persisted in the "
                                "checkpoint directory")

    sim = sub.add_parser(
        "sim",
        help="durable Monte-Carlo sweep (checkpoint/resume/timeouts)")
    sim.add_argument("--trials", type=int, default=100,
                     help="Monte-Carlo trials (default 100)")
    sim.add_argument("--extenders", type=int, default=15)
    sim.add_argument("--users", type=int, default=36)
    sim.add_argument("--policies", type=str, default="wolt,greedy,rssi",
                     help="comma-separated policy list "
                          "(default wolt,greedy,rssi)")
    sim.add_argument("--seed", type=int, default=0,
                     help="master random seed (default 0)")
    sim.add_argument("--plc-mode",
                     choices=("redistribute", "active", "fixed"),
                     default="fixed",
                     help="PLC sharing law for scoring (default fixed, "
                          "the paper's simulator model)")
    sim.add_argument("--workers", type=int, default=None,
                     help="worker processes (default: serial; results "
                          "are bit-identical for any worker count)")
    sim.add_argument("--chunk-size", type=int, default=None,
                     help="trials dispatched per worker task (default: "
                          "auto, about two waves per worker; results "
                          "are bit-identical for any chunk size)")
    sim.add_argument("--checkpoint", type=str, default=None,
                     help="journal every completed trial to this "
                          "crash-consistent JSONL file")
    sim.add_argument("--resume", action="store_true",
                     help="continue from the checkpoint: completed "
                          "trials are merged, not recomputed")
    sim.add_argument("--timeout-s", type=float, default=None,
                     help="per-trial wall-clock deadline; a hung trial "
                          "is reaped and recorded as a TrialFailure "
                          "(requires --workers)")
    sim.add_argument("--max-retries", type=int, default=None,
                     help="retry budget for crashed trials before an "
                          "explicit TrialFailure is recorded")

    serve = sub.add_parser(
        "serve",
        help="campus fleet association service (sharded epochs, "
             "dry-run previews, journal/resume)")
    serve.add_argument("--spec", type=str, required=True,
                       help="YAML fleet spec (see docs/FLEET.md)")
    serve.add_argument("--epochs", type=int, default=1,
                       help="epochs to run before exiting (default 1)")
    serve.add_argument("--dry-run", action="store_true",
                       help="preview every directive without applying "
                            "anything or writing the journal")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes for shard solves "
                            "(default: serial; results are "
                            "bit-identical for any worker count)")
    serve.add_argument("--chunk-size", type=int, default=None,
                       help="shards dispatched per worker task "
                            "(default: auto; results are bit-identical "
                            "for any chunk size)")
    serve.add_argument("--timeout-s", type=float, default=None,
                       help="per-shard solve deadline in seconds "
                            "(requires --workers: a hung in-process "
                            "solve cannot be reaped); a shard past it "
                            "is reaped and its users carry their "
                            "previous association forward; overrides "
                            "the spec's health.shard_timeout_s")
    serve.add_argument("--retry-budget", type=int, default=None,
                       help="retries per crashed shard solve before "
                            "an explicit failure (default: the spec's "
                            "health.retry_budget, itself 1)")
    serve.add_argument("--chaos", type=float, default=None,
                       metavar="LEVEL",
                       help="inject a seeded composed fault storm at "
                            "LEVEL in [0, 1]: telemetry blackouts, "
                            "shard crashes and shard hangs (see "
                            "docs/ROBUSTNESS.md); overrides the "
                            "spec's chaos block")
    serve.add_argument("--journal", type=str, default=None,
                       help="append each applied epoch to this "
                            "crash-consistent JSONL journal")
    serve.add_argument("--resume", action="store_true",
                       help="replay the journal and continue from the "
                            "next epoch, bit-identically (requires "
                            "--journal)")
    serve.add_argument("--from", dest="from_stream", type=str,
                       default=None, metavar="STREAM",
                       help="serve from a recorded telemetry stream "
                            "(wolt record) instead of synthesizing "
                            "telemetry; a clean stream replays "
                            "byte-identically to the synthetic run "
                            "(incompatible with --chaos)")
    serve.add_argument("--strict", action="store_true",
                       help="fail fast on the first dirty stream "
                            "record instead of degrading gracefully "
                            "(requires --from)")
    serve.add_argument("--dead-letter", type=str, default=None,
                       metavar="PATH",
                       help="quarantine rejected stream records into "
                            "this append-only bounded JSONL journal "
                            "(requires --from)")
    serve.add_argument("--quiet", action="store_true",
                       help="one summary line per epoch, no "
                            "per-directive detail")

    record = sub.add_parser(
        "record",
        help="record a fleet spec's telemetry as a versioned, "
             "checksummed JSONL stream for wolt serve --from")
    record.add_argument("--spec", type=str, required=True,
                        help="YAML fleet spec (see docs/FLEET.md)")
    record.add_argument("--epochs", type=int, default=1,
                        help="epochs of telemetry to record "
                             "(default 1)")
    record.add_argument("--start-epoch", type=int, default=0,
                        help="first epoch of the recorded window "
                             "(default 0)")
    record.add_argument("--out", type=str, required=True,
                        help="stream output path (written atomically)")

    solve = sub.add_parser(
        "solve", help="run WOLT on a random enterprise floor")
    solve.add_argument("--extenders", type=int, default=15)
    solve.add_argument("--users", type=int, default=36)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--plc-mode", choices=("redistribute", "active",
                                              "fixed"),
                       default="redistribute",
                       help="PLC sharing law for scoring")
    return parser


def _solve(args: argparse.Namespace) -> str:
    from .core.baselines import greedy_assignment, rssi_assignment
    from .core.wolt import solve_wolt
    from .net.engine import evaluate
    from .net.topology import enterprise_floor

    rng = np.random.default_rng(args.seed)
    scenario = enterprise_floor(args.extenders, args.users, rng)
    wolt = solve_wolt(scenario, plc_mode=args.plc_mode)
    greedy = evaluate(scenario,
                      greedy_assignment(scenario,
                                        rng.permutation(args.users)),
                      plc_mode=args.plc_mode)
    rssi = evaluate(scenario, rssi_assignment(scenario),
                    plc_mode=args.plc_mode)
    lines = [
        f"scenario: {args.extenders} extenders, {args.users} users, "
        f"seed {args.seed}, plc_mode={args.plc_mode}",
        f"WOLT   aggregate: {wolt.aggregate_throughput:8.2f} Mbps",
        f"Greedy aggregate: {greedy.aggregate:8.2f} Mbps",
        f"RSSI   aggregate: {rssi.aggregate:8.2f} Mbps",
        f"WOLT assignment: {wolt.assignment.tolist()}",
    ]
    return "\n".join(lines)


def _sim(args: argparse.Namespace) -> Tuple[str, int]:
    """The durable ``wolt sim`` sweep; returns (report, exit code)."""
    from .sim.runner import TrialFailure, run_trials

    policies = tuple(p.strip() for p in args.policies.split(",")
                     if p.strip())
    result = run_trials(args.trials, args.extenders, args.users,
                        policies=policies, seed=args.seed,
                        plc_mode=args.plc_mode, workers=args.workers,
                        chunk_size=args.chunk_size,
                        max_retries=args.max_retries,
                        checkpoint=args.checkpoint, resume=args.resume,
                        timeout_s=args.timeout_s)
    completed = [t for t in result if not isinstance(t, TrialFailure)]
    failures = [t for t in result if isinstance(t, TrialFailure)]
    lines = [f"sim: {args.extenders} extenders, {args.users} users, "
             f"seed {args.seed}, plc_mode={args.plc_mode}",
             f"trials: {len(result)}/{args.trials} finished "
             f"({result.resumed} resumed from checkpoint, "
             f"{len(failures)} failed)"]
    for policy in policies:
        values = [t.aggregate(policy) for t in completed]
        mean = float(np.mean(values)) if values else float("nan")
        lines.append(f"{policy:>8s} mean aggregate: {mean:8.2f} Mbps "
                     f"over {len(values)} trials")
    for failure in failures:
        lines.append(f"  trial {failure.trial_index} failed: "
                     f"{failure.error_type} ({failure.error})")
    if result.checkpoint is not None:
        lines.append(f"checkpoint: {result.checkpoint}")
    if result.interrupted is not None:
        lines.append(f"interrupted by {result.interrupted} after "
                     f"{len(result)} trials; checkpoint flushed — "
                     "re-run with --resume to finish")
        return ("\n".join(lines),
                INTERRUPT_EXIT_CODES.get(result.interrupted, 1))
    return "\n".join(lines), 0


def _record(args: argparse.Namespace) -> Tuple[str, int]:
    """The ``wolt record`` stream writer; returns (report, exit code)."""
    from .fleet.ingest import write_stream
    from .fleet.spec import load_fleet_spec

    if args.epochs < 1:
        return "record: --epochs must be >= 1", 2
    if args.start_epoch < 0:
        return "record: --start-epoch must be >= 0", 2
    spec = load_fleet_spec(args.spec)
    n_records = write_stream(args.out, spec, args.epochs,
                             start_epoch=args.start_epoch)
    return (f"recorded {args.epochs} epochs of fleet {spec.name} "
            f"({n_records} records, {spec.n_buildings} buildings) "
            f"to {args.out}", 0)


def _serve(args: argparse.Namespace) -> Tuple[str, int]:
    """The ``wolt serve`` fleet service; returns (report, exit code)."""
    from .fleet.chaos import FleetFaultModel
    from .fleet.ingest import RecordedTelemetry
    from .fleet.service import FleetService, format_epoch
    from .fleet.spec import load_fleet_spec
    from .sim.dispatch import InterruptState, SignalGuard

    if args.resume and args.journal is None:
        return "serve: --resume requires --journal", 2
    if args.epochs < 1:
        return "serve: --epochs must be >= 1", 2
    if args.from_stream is None and args.strict:
        return "serve: --strict requires --from", 2
    if args.from_stream is None and args.dead_letter is not None:
        return "serve: --dead-letter requires --from", 2
    if args.from_stream is not None and args.chaos is not None:
        return ("serve: --from and --chaos are incompatible (the "
                "recorded stream already is the fault surface)", 2)
    if args.timeout_s is not None and args.timeout_s <= 0:
        return "serve: --timeout-s must be positive", 2
    if args.timeout_s is not None and (args.workers is None
                                       or args.workers < 1):
        return ("serve: --timeout-s requires --workers (a hung "
                "in-process solve cannot be reaped)", 2)
    if args.retry_budget is not None and args.retry_budget < 0:
        return "serve: --retry-budget must be >= 0", 2
    if args.chaos is not None and not 0.0 <= args.chaos <= 1.0:
        return "serve: --chaos level must be in [0, 1]", 2
    fault_model = (FleetFaultModel.from_level(args.chaos)
                   if args.chaos is not None else None)
    spec = load_fleet_spec(args.spec)
    if (args.chaos is not None and args.chaos > 0
            and args.workers is not None and args.workers > 1
            and args.timeout_s is None
            and spec.health.shard_timeout_s is None):
        return ("serve: --chaos with --workers needs --timeout-s "
                "(hang faults require a deadline to reap)", 2)
    source = None
    if args.from_stream is not None:
        if spec.chaos is not None and not spec.chaos.trivial:
            return ("serve: --from cannot run under the spec's chaos "
                    "block (the recorded stream already is the fault "
                    "surface); drop the block or the flag", 2)
        source = RecordedTelemetry.load(
            args.from_stream, spec, strict=args.strict,
            dead_letter=args.dead_letter)
        if (not args.resume and source.end_epoch is not None
                and args.epochs > source.end_epoch):
            return (f"serve: --epochs {args.epochs} exceeds the "
                    f"recorded stream (window ends at epoch "
                    f"{source.end_epoch}); record a longer stream",
                    2)
    print(f"fleet {spec.name}: {spec.n_buildings} buildings, "
          f"{spec.n_users} users, plc_mode={spec.plc_mode}, "
          f"seed {spec.seed}")
    if source is not None:
        if source.n_rejected:
            counts = " ".join(
                f"{cls}={n}"
                for cls, n in sorted(source.stream.counts.items()))
            note = (f"ingest: {source.n_rejected} records rejected "
                    f"({counts}); degrading gracefully")
            if args.dead_letter is not None:
                note += f"; dead-letter: {args.dead_letter}"
            print(note)
    effective_chaos = fault_model if fault_model is not None else spec.chaos
    if effective_chaos is not None and not effective_chaos.trivial:
        print(f"chaos: blackout {effective_chaos.blackout_prob:.4f}, "
              f"crash {effective_chaos.crash_prob:.4f} "
              f"(x{effective_chaos.crash_attempts}), hang "
              f"{effective_chaos.hang_prob:.4f}")
    state = InterruptState()
    with SignalGuard(state), FleetService(
            spec, workers=args.workers, chunk_size=args.chunk_size,
            journal=args.journal, resume=args.resume,
            timeout_s=args.timeout_s, retry_budget=args.retry_budget,
            fault_model=fault_model, source=source) as service:
        if args.resume and service.epoch:
            print(f"resumed from {args.journal} at epoch "
                  f"{service.epoch}")
        reports, interrupted = service.run(
            args.epochs, dry_run=args.dry_run, state=state,
            on_epoch=lambda r: print(
                format_epoch(r, directives=not args.quiet)))
    if interrupted is not None:
        note = (f"interrupted by {interrupted} after "
                f"{len(reports)} epochs")
        if args.journal:
            note += ("; journal flushed — re-run with --resume to "
                     "continue")
        return note, INTERRUPT_EXIT_CODES.get(interrupted, 1)
    total_directives = sum(len(r.directives) for r in reports)
    mode = "previewed" if args.dry_run else "applied"
    summary = (f"{len(reports)} epochs {mode}, {total_directives} "
               "directives")
    total_failures = sum(r.n_shard_failures for r in reports)
    if total_failures:
        total_timeouts = sum(r.n_shard_timeouts for r in reports)
        summary += (f", {total_failures} shard failures "
                    f"({total_timeouts} timed out)")
    if args.journal and not args.dry_run:
        summary += f"; journal: {args.journal}"
    return summary, 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from .fleet.ingest import IngestError
    from .sim.checkpoint import CheckpointError

    args = build_parser().parse_args(argv)
    if args.command == "fig2":
        print(fig2.main(args.seed))
    elif args.command == "fig3":
        print(fig3.main())
    elif args.command == "fig4":
        print(fig4.main(args.seed))
    elif args.command == "fig5":
        print(fig5.main(args.seed + 3))
    elif args.command == "fig6":
        print(fig6.main(args.seed, n_trials=args.trials,
                        workers=args.workers))
    elif args.command == "sweeps":
        print(sweeps.main(args.seed, checkpoint_dir=args.checkpoint_dir,
                          resume=args.resume))
    elif args.command == "robustness":
        print(robustness.main(args.seed))
    elif args.command == "chaos":
        report = chaos.main(args.seed, n_trials=args.trials)
        print(report)
        if "ACCEPTANCE: FAIL" in report:
            return 1
    elif args.command == "faults":
        try:
            print(faults.main(args.seed, n_trials=args.trials,
                              checkpoint=args.checkpoint,
                              resume=args.resume))
        except CheckpointError as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return CHECKPOINT_ERROR_EXIT
    elif args.command == "sim":
        try:
            text, code = _sim(args)
        except CheckpointError as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return CHECKPOINT_ERROR_EXIT
        print(text)
        return code
    elif args.command == "serve":
        try:
            text, code = _serve(args)
        except CheckpointError as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return CHECKPOINT_ERROR_EXIT
        except IngestError as exc:
            print(f"ingest error: {exc}", file=sys.stderr)
            return CHECKPOINT_ERROR_EXIT
        print(text, file=sys.stderr if code == 2 else sys.stdout)
        return code
    elif args.command == "record":
        try:
            text, code = _record(args)
        except IngestError as exc:
            print(f"ingest error: {exc}", file=sys.stderr)
            return CHECKPOINT_ERROR_EXIT
        print(text, file=sys.stderr if code == 2 else sys.stdout)
        return code
    elif args.command == "all":
        print(fig2.main(args.seed))
        print()
        print(fig3.main())
        print()
        print(fig4.main(args.seed))
        print()
        print(fig5.main(args.seed + 3))
        print()
        print(fig6.main(args.seed, n_trials=args.trials,
                        workers=args.workers))
    elif args.command == "solve":
        print(_solve(args))
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
