"""The paper's contribution: Problem 1, WOLT (Alg. 1), and baselines."""

from .baselines import (greedy_assignment, random_assignment,
                        rssi_assignment, selfish_greedy_assignment)
from .bnb import BnbResult, branch_and_bound_optimal
from .bounds import GapCertificate, certify
from .controller import CentralController, Transport
from .dynamic import IncrementalWolt, ReconfigureOutcome
from .fairness import AlphaFairResult, alpha_fair_utility, solve_alpha_fair
from .guard import DecisionGuard, GuardError, GuardReport, GuardViolation
from .health import HealthEvent, HealthMonitor
from .hungarian import InfeasibleAssignmentError, solve_assignment
from .optimal import brute_force_optimal
from .partition import (partition_to_scenario,
                        solve_partition_by_association)
from .phase1 import Phase1Result, phase1_utilities, solve_phase1
from .phase2 import Phase2Result, solve_phase2, solve_phase2_continuous
from .problem import UNASSIGNED, Scenario, validate_assignment
from .wolt import WoltResult, solve_wolt

__all__ = [
    "Scenario", "UNASSIGNED", "validate_assignment",
    "solve_assignment", "InfeasibleAssignmentError",
    "phase1_utilities", "solve_phase1", "Phase1Result",
    "solve_phase2", "solve_phase2_continuous", "Phase2Result",
    "solve_wolt", "WoltResult",
    "rssi_assignment", "greedy_assignment", "selfish_greedy_assignment",
    "random_assignment", "brute_force_optimal", "CentralController",
    "Transport",
    "IncrementalWolt", "ReconfigureOutcome",
    "solve_alpha_fair", "alpha_fair_utility", "AlphaFairResult",
    "certify", "GapCertificate",
    "partition_to_scenario", "solve_partition_by_association",
    "branch_and_bound_optimal", "BnbResult",
    "DecisionGuard", "GuardError", "GuardReport", "GuardViolation",
    "HealthMonitor", "HealthEvent",
]
