"""Baseline association policies the paper compares WOLT against.

* :func:`rssi_assignment` — every user attaches to the extender with the
  strongest received signal (equivalently, the best WiFi PHY rate), the
  default behaviour of commodity PLC-WiFi extenders (§V-C).
* :func:`greedy_assignment` — the centralized online baseline (§V-B):
  users arrive one by one; the Central Controller attaches each new user
  to the extender that maximizes the aggregate end-to-end throughput given
  the already-attached users (never re-assigning them).  When every choice
  degrades the aggregate, the least-damaging extender is picked — which is
  the same argmax.
* :func:`random_assignment` — a sanity-check policy attaching each user to
  a uniformly random reachable extender.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from ..net.engine import evaluate, evaluate_batch
from .problem import MIN_USABLE_RATE, UNASSIGNED, Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .guard import DecisionGuard

__all__ = ["rssi_assignment", "greedy_assignment", "greedy_attach_user",
           "selfish_greedy_assignment", "random_assignment"]


def _candidate_batch(scenario: Scenario, assign: np.ndarray, user: int,
                     counts: np.ndarray
                     ) -> "Tuple[List[int], Optional[np.ndarray]]":
    """Feasible extenders for ``user`` and the candidate assignment batch."""
    candidates = [int(j) for j in scenario.reachable(user)
                  if counts[j] < scenario.capacity_of(int(j))]
    if not candidates:
        return [], None
    batch = np.tile(assign, (len(candidates), 1))
    batch[np.arange(len(candidates)), user] = candidates
    return candidates, batch


def rssi_assignment(scenario: Scenario,
                    guard: "Optional[DecisionGuard]" = None) -> np.ndarray:
    """Strongest-signal association (the commodity default).

    RSSI is monotone in the WiFi PHY rate under the paper's distance-based
    channel model, so picking the best-rate extender is the best-RSSI
    choice.  Capacity limits, when present, are honoured by falling back
    to the next-strongest extender with room.  With a ``guard``,
    unattachable users are left UNASSIGNED and reported instead of
    raising, and the result is validated (bit-identical on clean
    inputs).
    """
    assignment = np.full(scenario.n_users, UNASSIGNED, dtype=int)
    counts = np.zeros(scenario.n_extenders, dtype=int)
    for user in range(scenario.n_users):
        order = np.argsort(-scenario.wifi_rates[user], kind="stable")
        for j in order:
            j = int(j)
            if scenario.wifi_rates[user, j] <= MIN_USABLE_RATE:
                break
            if counts[j] < scenario.capacity_of(j):
                assignment[user] = j
                counts[j] += 1
                break
        if assignment[user] == UNASSIGNED and guard is None:
            raise ValueError(f"user {user} cannot be attached anywhere")
    if guard is not None:
        assignment, _ = guard.repair_assignment(scenario, assignment,
                                                source="rssi")
    return assignment


def greedy_attach_user(scenario: Scenario,
                       assignment: Sequence[int],
                       user: int,
                       plc_mode: str = "redistribute",
                       batched: bool = True) -> int:
    """Best extender for one arriving user under the greedy policy.

    Evaluates the aggregate end-to-end throughput (under ``plc_mode``)
    for each reachable extender with free capacity (existing users
    fixed) and returns the argmax; ties break toward the stronger WiFi
    link.  With ``batched`` (the default) all candidates are scored in a
    single :func:`repro.net.engine.evaluate_batch` call; ``batched=False``
    keeps the one-engine-call-per-candidate reference loop.

    Raises:
        ValueError: if the user cannot be attached anywhere.
    """
    assign = np.array(assignment, dtype=int)
    counts = np.bincount(assign[assign != UNASSIGNED],
                         minlength=scenario.n_extenders)
    if batched:
        candidates, batch = _candidate_batch(scenario, assign, user, counts)
        if not candidates:
            raise ValueError(f"user {user} cannot be attached anywhere")
        aggregates = evaluate_batch(scenario, batch,
                                    plc_mode=plc_mode).aggregates
        best_k = 0
        for k in range(1, len(candidates)):
            if ((aggregates[k], scenario.wifi_rates[user, candidates[k]])
                    > (aggregates[best_k],
                       scenario.wifi_rates[user, candidates[best_k]])):
                best_k = k
        return candidates[best_k]
    best_j, best_key = UNASSIGNED, None
    for j in scenario.reachable(user):
        j = int(j)
        if counts[j] >= scenario.capacity_of(j):
            continue
        assign[user] = j
        # Scalar reference oracle for the batched path above — kept
        # deliberately un-vectorized so the differential tests can pit
        # the two against each other.
        # woltlint: disable=W003 — intentional scalar reference loop
        agg = evaluate(scenario, assign, plc_mode=plc_mode).aggregate
        key = (agg, scenario.wifi_rates[user, j])
        if best_key is None or key > best_key:
            best_key, best_j = key, j
    assign[user] = UNASSIGNED
    if best_j == UNASSIGNED:
        raise ValueError(f"user {user} cannot be attached anywhere")
    return best_j


def greedy_assignment(scenario: Scenario,
                      arrival_order: Optional[Sequence[int]] = None,
                      plc_mode: str = "redistribute",
                      batched: bool = True,
                      guard: "Optional[DecisionGuard]" = None
                      ) -> np.ndarray:
    """Centralized online greedy association (§V-B baseline).

    Args:
        scenario: the network snapshot.
        arrival_order: order in which users arrive (defaults to index
            order).  The greedy baseline is order-dependent by design.
        plc_mode: PLC sharing law the controller's measurements reflect
            (the default "redistribute" is what a real deployment would
            observe).
        batched: score each arrival's candidate extenders with one
            batched engine call (default) instead of one scalar call per
            candidate.
        guard: optional :class:`repro.core.guard.DecisionGuard` — an
            unattachable arrival is left UNASSIGNED and reported
            instead of raising, and the result is validated
            (bit-identical on clean inputs).

    Returns:
        A complete assignment array.
    """
    if arrival_order is None:
        arrival_order = range(scenario.n_users)
    assignment = np.full(scenario.n_users, UNASSIGNED, dtype=int)
    for user in arrival_order:
        try:
            assignment[user] = greedy_attach_user(scenario, assignment,
                                                  int(user),
                                                  plc_mode=plc_mode,
                                                  batched=batched)
        except ValueError:
            if guard is None:
                raise
    if guard is not None:
        assignment, _ = guard.repair_assignment(scenario, assignment,
                                                source="greedy")
    return assignment


def random_assignment(scenario: Scenario,
                      rng: Optional[np.random.Generator] = None,
                      guard: "Optional[DecisionGuard]" = None
                      ) -> np.ndarray:
    """Uniformly random reachable extender per user (sanity baseline).

    ``rng`` defaults to ``np.random.default_rng(0)`` — the baseline is
    random *across seeds*, never across repeated identical calls.  With
    a ``guard``, unattachable users are left UNASSIGNED and reported
    instead of raising; on clean inputs the guarded result is
    bit-identical.
    """
    # woltlint: disable=W010 — documented API default for ad-hoc direct
    # calls; run_policy always passes a SeedSequence-derived generator.
    rng = rng if rng is not None else np.random.default_rng(0)
    assignment = np.full(scenario.n_users, UNASSIGNED, dtype=int)
    counts = np.zeros(scenario.n_extenders, dtype=int)
    for user in range(scenario.n_users):
        options = [int(j) for j in scenario.reachable(user)
                   if counts[j] < scenario.capacity_of(int(j))]
        if not options:
            if guard is None:
                raise ValueError(
                    f"user {user} cannot be attached anywhere")
            continue
        j = int(rng.choice(options))
        assignment[user] = j
        counts[j] += 1
    if guard is not None:
        assignment, _ = guard.repair_assignment(scenario, assignment,
                                                source="random")
    return assignment


def selfish_greedy_assignment(scenario: Scenario,
                              arrival_order: Optional[Sequence[int]] = None,
                              plc_mode: str = "redistribute",
                              batched: bool = True,
                              guard: "Optional[DecisionGuard]" = None
                              ) -> np.ndarray:
    """Self-interested greedy association (the §III-B case study policy).

    Each arriving user picks the extender that maximizes its *own*
    end-to-end throughput given the users already attached (Fig. 3c),
    rather than the network aggregate.  Kept as an extra baseline: it is
    what uncoordinated rate-aware clients would do.  ``batched`` scores
    each arrival's candidates with one batched engine call (default).
    With a ``guard``, unattachable arrivals are left UNASSIGNED and
    reported instead of raising.
    """
    if arrival_order is None:
        arrival_order = range(scenario.n_users)
    assignment = np.full(scenario.n_users, UNASSIGNED, dtype=int)
    counts = np.zeros(scenario.n_extenders, dtype=int)
    for user in arrival_order:
        user = int(user)
        if batched:
            candidates, batch = _candidate_batch(scenario, assignment,
                                                 user, counts)
            if not candidates:
                if guard is None:
                    raise ValueError(
                        f"user {user} cannot be attached anywhere")
                continue
            report = evaluate_batch(scenario, batch, plc_mode=plc_mode)
            own = report.user_throughputs[:, user]
            best_k = 0
            for k in range(1, len(candidates)):
                if ((own[k], scenario.wifi_rates[user, candidates[k]])
                        > (own[best_k],
                           scenario.wifi_rates[user, candidates[best_k]])):
                    best_k = k
            best_j = candidates[best_k]
        else:
            best_j, best_key = UNASSIGNED, None
            for j in scenario.reachable(user):
                j = int(j)
                if counts[j] >= scenario.capacity_of(j):
                    continue
                assignment[user] = j
                # woltlint: disable=W003 — intentional scalar reference loop
                report = evaluate(scenario, assignment, plc_mode=plc_mode)
                key = (report.user_throughputs[user],
                       scenario.wifi_rates[user, j])
                if best_key is None or key > best_key:
                    best_key, best_j = key, j
            if best_j == UNASSIGNED:
                if guard is None:
                    raise ValueError(
                        f"user {user} cannot be attached anywhere")
                assignment[user] = UNASSIGNED
                continue
        assignment[user] = best_j
        counts[best_j] += 1
    if guard is not None:
        assignment, _ = guard.repair_assignment(scenario, assignment,
                                                source="selfish")
    return assignment
