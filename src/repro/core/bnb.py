"""Branch-and-bound exact solver for Problem 1 (beyond brute force).

Problem 1 stays NP-hard, but the exponential search can be pruned with
an admissible completion bound: for any partial assignment, extender
``j``'s final end-to-end throughput is at most

    bound_j = min(cap_j, max r_ij over current members and all
                  still-unassigned users)

because (a) the WiFi throughput (Eq. 1, a harmonic mean) never exceeds
its best member's rate, and (b) the PLC grant never exceeds ``cap_j``
(``c_j/|A|`` under the fixed law, ``c_j`` otherwise).  Summing
``bound_j`` bounds every completion of the node, so nodes whose bound
cannot beat the incumbent are cut.

On fixed-law instances the pruning is dramatic (the bound is tight
there); on redistribute-law instances it degrades gracefully toward
brute force.  Certified identical to
:func:`repro.core.optimal.brute_force_optimal` by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..net.engine import evaluate, evaluate_batch
from .baselines import greedy_assignment
from .problem import Scenario, UNASSIGNED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .guard import DecisionGuard

__all__ = ["BnbResult", "branch_and_bound_optimal"]


@dataclass(frozen=True)
class BnbResult:
    """A certified optimum with search statistics.

    Attributes:
        assignment: an optimal complete assignment.
        aggregate_throughput: its aggregate end-to-end throughput.
        nodes_expanded: search-tree nodes visited.
        nodes_pruned: subtrees cut by the bound.
    """

    assignment: np.ndarray
    aggregate_throughput: float  # woltlint: disable=W005 — established result API; value is Mbps
    nodes_expanded: int
    nodes_pruned: int


def branch_and_bound_optimal(scenario: Scenario,
                             plc_mode: str = "redistribute",
                             node_limit: int = 5_000_000,
                             guard: "Optional[DecisionGuard]" = None
                             ) -> BnbResult:
    """Exact Problem-1 optimum by depth-first branch and bound.

    Args:
        scenario: the network snapshot (capacities honoured).
        plc_mode: PLC sharing law for evaluation and bounding.
        node_limit: safety cap on expanded nodes.
        guard: optional :class:`repro.core.guard.DecisionGuard` — users
            with no reachable extender are left UNASSIGNED and reported
            (the optimum is certified over the reachable users) instead
            of raising, and the result is validated.  Bit-identical on
            clean inputs.

    Returns:
        A :class:`BnbResult` certificate.

    Raises:
        ValueError: if some user is unattachable (only without a guard)
            or the node limit is exceeded.
    """
    n_users, n_ext = scenario.n_users, scenario.n_extenders
    unreachable = [user for user in range(n_users)
                   if scenario.reachable(user).size == 0]
    if unreachable:
        if guard is None:
            raise ValueError(
                f"user {unreachable[0]} has no reachable extender")
        return _guarded_subset_bnb(scenario, unreachable, plc_mode,
                                   node_limit, guard)
    if plc_mode == "fixed":
        caps = scenario.plc_rates / max(n_ext, 1)
    else:
        caps = scenario.plc_rates.copy()

    # Warm start: the greedy baseline's value seeds the incumbent so
    # pruning bites from the first branch.
    incumbent = greedy_assignment(scenario, plc_mode=plc_mode)
    best_value = evaluate(scenario, incumbent, plc_mode=plc_mode,
                          require_complete=True).aggregate
    best_assignment = np.asarray(incumbent, dtype=int)

    # Branch on users in order of decreasing best rate: the impactful
    # decisions happen high in the tree, where pruning saves the most.
    order = np.argsort(-scenario.wifi_rates.max(axis=1), kind="stable")
    # suffix_best[k, j]: best r_ij among users order[k:].
    suffix_best = np.zeros((n_users + 1, n_ext))
    for k in range(n_users - 1, -1, -1):
        suffix_best[k] = np.maximum(suffix_best[k + 1],
                                    scenario.wifi_rates[order[k]])

    assignment = np.full(n_users, UNASSIGNED, dtype=int)
    member_best = np.zeros(n_ext)  # best member rate per extender
    counts = np.zeros(n_ext, dtype=int)
    stats = {"expanded": 0, "pruned": 0}

    def bound(depth: int) -> float:
        reachable = np.maximum(member_best, suffix_best[depth])
        return float(np.minimum(caps, reachable).sum())

    def dfs(depth: int) -> None:
        nonlocal best_value, best_assignment
        stats["expanded"] += 1
        if stats["expanded"] > node_limit:
            raise ValueError(f"node limit {node_limit} exceeded")
        if depth == n_users:
            value = evaluate(scenario, assignment, plc_mode=plc_mode,
                             require_complete=True).aggregate
            if value > best_value + 1e-12:
                best_value = value
                best_assignment = assignment.copy()
            return
        if bound(depth) <= best_value + 1e-12:
            stats["pruned"] += 1
            return
        user = int(order[depth])
        options = scenario.reachable(user)
        # Try stronger links first: good incumbents appear early.
        options = options[np.argsort(-scenario.wifi_rates[user, options],
                                     kind="stable")]
        if depth == n_users - 1:
            # Last level: every feasible placement of the final user is a
            # complete assignment — score them all in one batched engine
            # call instead of one scalar evaluation per leaf.
            feasible = [int(j) for j in options
                        if counts[j] < scenario.capacity_of(int(j))]
            if not feasible:
                return
            stats["expanded"] += len(feasible)
            if stats["expanded"] > node_limit:
                raise ValueError(f"node limit {node_limit} exceeded")
            batch = np.tile(assignment, (len(feasible), 1))
            batch[np.arange(len(feasible)), user] = feasible
            values = evaluate_batch(scenario, batch, plc_mode=plc_mode,
                                    require_complete=True).aggregates
            for k, value in enumerate(values):
                if value > best_value + 1e-12:
                    best_value = float(value)
                    best_assignment = batch[k].copy()
            return
        for j in options:
            j = int(j)
            if counts[j] >= scenario.capacity_of(j):
                continue
            previous_best = member_best[j]
            assignment[user] = j
            counts[j] += 1
            member_best[j] = max(previous_best,
                                 scenario.wifi_rates[user, j])
            dfs(depth + 1)
            member_best[j] = previous_best
            counts[j] -= 1
            assignment[user] = UNASSIGNED

    dfs(0)
    if guard is not None:
        guard.check_assignment(scenario, best_assignment, source="bnb")
    return BnbResult(assignment=best_assignment,
                     aggregate_throughput=float(best_value),
                     nodes_expanded=stats["expanded"],
                     nodes_pruned=stats["pruned"])


def _guarded_subset_bnb(scenario: Scenario, unreachable: "list[int]",
                        plc_mode: str, node_limit: int,
                        guard: "DecisionGuard") -> BnbResult:
    """Certify the optimum over the reachable users only.

    Users no extender can reach are left UNASSIGNED; the guard records
    them as dropped.  The certificate is exact for the reachable
    subset (an unreachable user cannot contribute throughput under any
    assignment, so the subset optimum is the full optimum).
    """
    keep = np.array([u for u in range(scenario.n_users)
                     if u not in set(unreachable)], dtype=int)
    assignment = np.full(scenario.n_users, UNASSIGNED, dtype=int)
    expanded = pruned = 0
    if keep.size:
        sub = scenario.subset_users(keep)
        sub_result = branch_and_bound_optimal(sub, plc_mode=plc_mode,
                                              node_limit=node_limit)
        assignment[keep] = sub_result.assignment
        expanded = sub_result.nodes_expanded
        pruned = sub_result.nodes_pruned
    assignment, _ = guard.repair_assignment(scenario, assignment,
                                            source="bnb")
    value = evaluate(scenario, assignment, plc_mode=plc_mode,
                     require_complete=False).aggregate
    return BnbResult(assignment=assignment,
                     aggregate_throughput=float(value),
                     nodes_expanded=expanded, nodes_pruned=pruned)
