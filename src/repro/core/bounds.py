"""Upper bounds and optimality-gap certificates for Problem 1.

Problem 1 is NP-hard (Theorem 1), so WOLT ships no guarantee.  For
evaluation purposes it is still useful to bound how far any assignment
— WOLT's included — can be from optimal without enumerating the
exponential search space.  Two polynomial bounds are provided:

* :func:`plc_capacity_bound` — no assignment can push more than the
  whole backhaul carries: under the ``fixed`` law that is
  ``sum_j c_j / |A|``; under ``active``/``redistribute`` it is
  ``max_j c_j`` (concentrate all medium time on the best link).
* :func:`relaxation_bound` — the Phase-I relaxation itself: Lemma 2 +
  Theorem 2 make the one-user-per-extender assignment optimum,
  ``max_matching sum min(c_j/|A|, r_ij)``, an upper bound on the fixed-
  law Problem-1 optimum *restricted to its WiFi-side best case*, and
  adding the per-extender WiFi ceiling tightens it.

:func:`certify` combines them into a gap certificate for a concrete
assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..net.engine import evaluate
from .problem import MIN_USABLE_RATE, Scenario

__all__ = ["plc_capacity_bound", "wifi_ceiling_bound", "relaxation_bound",
           "GapCertificate", "certify"]


def plc_capacity_bound(scenario: Scenario,
                       plc_mode: str = "redistribute") -> float:
    """Backhaul-side upper bound on any assignment's aggregate (Mbps)."""
    c = scenario.plc_rates
    if c.size == 0:
        return 0.0
    if plc_mode == "fixed":
        return float(c.sum() / c.size)
    if plc_mode in ("active", "redistribute"):
        return float(c.max())
    raise ValueError(f"unknown plc_mode {plc_mode!r}")


def wifi_ceiling_bound(scenario: Scenario) -> float:
    """WiFi-side upper bound: every extender serving its best user.

    ``T_WiFi_j <= max_i r_ij`` for any user set (Eq. (1) is a weighted
    harmonic mean, never above the best member's rate), so the total
    WiFi-side throughput is at most ``sum_j max_i r_ij``.
    """
    if scenario.n_users == 0 or scenario.n_extenders == 0:
        return 0.0
    best = np.max(np.where(scenario.wifi_rates > MIN_USABLE_RATE,
                           scenario.wifi_rates, 0.0), axis=0)
    return float(best.sum())


def relaxation_bound(scenario: Scenario) -> float:
    """Per-extender relaxation bound under the fixed law.

    ``sum_j min(c_j/|A|, max_i r_ij)`` dominates any fixed-law
    assignment's aggregate, because each extender's end-to-end
    throughput is ``min(T_WiFi_j, c_j/|A|)`` and ``T_WiFi_j`` (a
    harmonic mean of member rates) never exceeds the extender's single
    best reachable user's rate.
    """
    if scenario.n_users == 0 or scenario.n_extenders == 0:
        return 0.0
    fair = scenario.plc_rates / scenario.n_extenders
    best_rate = np.max(np.where(scenario.wifi_rates > MIN_USABLE_RATE,
                                scenario.wifi_rates, 0.0), axis=0)
    return float(np.minimum(fair, best_rate).sum())


@dataclass(frozen=True)
class GapCertificate:
    """An optimality-gap certificate for one assignment.

    Attributes:
        achieved: the assignment's aggregate throughput (Mbps).
        upper_bound: a certified bound no assignment can exceed.
        gap_fraction: ``1 - achieved/upper_bound`` — the assignment is
            within this fraction of *any* optimum (often much closer,
            since the bound itself is loose).
    """

    achieved: float
    upper_bound: float

    @property
    def gap_fraction(self) -> float:
        if self.upper_bound <= 0:
            return 0.0
        return max(0.0, 1.0 - self.achieved / self.upper_bound)


def certify(scenario: Scenario, assignment: Sequence[int],
            plc_mode: str = "redistribute") -> GapCertificate:
    """Certify an assignment against the tightest applicable bound.

    Args:
        scenario: the network snapshot.
        assignment: a complete assignment to certify.
        plc_mode: PLC sharing law for both evaluation and bounding.

    Returns:
        A :class:`GapCertificate`; its ``gap_fraction`` bounds the loss
        to the (unknown) optimum.
    """
    achieved = evaluate(scenario, assignment, plc_mode=plc_mode,
                        require_complete=True).aggregate
    bounds = [plc_capacity_bound(scenario, plc_mode),
              wifi_ceiling_bound(scenario)]
    if plc_mode == "fixed":
        bounds.append(relaxation_bound(scenario))
    return GapCertificate(achieved=achieved,
                          upper_bound=float(min(bounds)))
