"""Central Controller (CC) protocol emulation.

§V-A of the paper implements WOLT as a user-space utility: clients scan,
estimate per-extender WiFi rates from the NIC's MCS readout, report to a
Central Controller over their initial (strongest-RSSI) association, and
re-associate when the CC sends back an association directive.

This module emulates that control plane at message granularity so the
re-assignment overhead of Fig. 6c (and the paper's claim that it is
"relatively minor") can be quantified: every scan report, directive and
re-association handoff is counted, and the handoff outage time is
charged against the throughput the network would otherwise deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..net.engine import ThroughputReport, evaluate
from .baselines import greedy_attach_user
from .problem import Scenario, UNASSIGNED
from .wolt import solve_wolt

__all__ = ["ScanReport", "AssociationDirective", "ControllerStats",
           "CentralController"]


@dataclass(frozen=True)
class ScanReport:
    """A client's scan results, sent to the CC on arrival.

    Attributes:
        user_id: stable client identifier.
        wifi_rates: estimated PHY rate to every extender (Mbps; 0 =
            extender not heard).
    """

    user_id: int
    wifi_rates: np.ndarray


@dataclass(frozen=True)
class AssociationDirective:
    """CC -> client instruction to (re-)associate.

    Attributes:
        user_id: addressee.
        extender: target extender index.
    """

    user_id: int
    extender: int


@dataclass
class ControllerStats:
    """Running counters of control-plane activity.

    Attributes:
        scan_reports: reports received from clients.
        directives_sent: association directives issued.
        reassignments: directives that *changed* an existing association.
        handoff_time_s: cumulative client outage caused by handoffs.
    """

    scan_reports: int = 0
    directives_sent: int = 0
    reassignments: int = 0
    handoff_time_s: float = 0.0


class CentralController:
    """The WOLT Central Controller.

    The CC maintains the measured PLC link capacities (obtained offline
    with iperf, §V-A), accumulates clients' scan reports, and computes
    associations with the configured policy.

    Args:
        plc_rates: measured per-extender PLC rates (Mbps).
        policy: ``"wolt"``, ``"greedy"`` or ``"rssi"``.
        handoff_outage_s: client outage per re-association (the time to
            disassociate, switch BSS and re-run DHCP/ARP; ~1 s for
            commodity clients).
    """

    def __init__(self, plc_rates: Sequence[float], policy: str = "wolt",
                 handoff_outage_s: float = 1.0) -> None:
        if policy not in ("wolt", "greedy", "rssi"):
            raise ValueError(f"unsupported policy {policy!r}")
        self.plc_rates = np.asarray(plc_rates, dtype=float)
        if self.plc_rates.ndim != 1 or self.plc_rates.size == 0:
            raise ValueError("plc_rates must be a non-empty vector")
        self.policy = policy
        self.handoff_outage_s = handoff_outage_s
        self.stats = ControllerStats()
        self._reports: Dict[int, ScanReport] = {}
        self._assignment: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # client-facing protocol

    @property
    def n_extenders(self) -> int:
        return self.plc_rates.size

    @property
    def connected_users(self) -> List[int]:
        """User ids currently associated, sorted."""
        return sorted(self._assignment)

    def receive_scan_report(self, report: ScanReport
                            ) -> AssociationDirective:
        """Handle a new client's scan report; reply with a directive.

        The new client is admitted immediately: Greedy places it to
        maximize aggregate throughput, RSSI and WOLT park it on its
        strongest extender (WOLT re-optimizes everyone at the next
        :meth:`reconfigure`).
        """
        rates = np.asarray(report.wifi_rates, dtype=float)
        if rates.shape != (self.n_extenders,):
            raise ValueError("scan report must cover every extender")
        if not np.any(rates > 0):
            raise ValueError(f"user {report.user_id} hears no extender")
        self.stats.scan_reports += 1
        self._reports[report.user_id] = ScanReport(report.user_id, rates)
        if self.policy == "greedy":
            scenario, ids = self._scenario()
            idx = ids.index(report.user_id)
            vec = self._assignment_vector(ids)
            vec[idx] = UNASSIGNED
            extender = greedy_attach_user(scenario, vec, idx)
        else:
            extender = int(np.argmax(rates))
        return self._issue(report.user_id, extender)

    def disconnect(self, user_id: int) -> None:
        """Remove a departing client."""
        self._reports.pop(user_id, None)
        self._assignment.pop(user_id, None)

    def reconfigure(self) -> List[AssociationDirective]:
        """Epoch-boundary re-optimization (WOLT only; others no-op).

        Returns the directives sent to clients whose extender changed.
        """
        if self.policy != "wolt" or not self._reports:
            return []
        scenario, ids = self._scenario()
        result = solve_wolt(scenario)
        directives = []
        for idx, uid in enumerate(ids):
            new_j = int(result.assignment[idx])
            if self._assignment.get(uid) != new_j:
                directives.append(self._issue(uid, new_j))
        return directives

    # ------------------------------------------------------------------
    # measurement

    def network_report(self) -> "ThroughputReport":
        """Current end-to-end throughput report (see
        :func:`repro.net.engine.evaluate`)."""
        scenario, ids = self._scenario()
        return evaluate(scenario, self._assignment_vector(ids),
                        require_complete=True)

    def reassignment_overhead_fraction(self, window_s: float) -> float:
        """Fraction of a window lost to handoff outages (per client).

        A coarse upper bound on WOLT's reconfiguration cost: total
        handoff outage divided by total client-time in the window.
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        clients = max(len(self._assignment), 1)
        return min(1.0, self.stats.handoff_time_s / (window_s * clients))

    # ------------------------------------------------------------------
    # internals

    def _issue(self, user_id: int, extender: int) -> AssociationDirective:
        previous = self._assignment.get(user_id)
        self.stats.directives_sent += 1
        if previous is not None and previous != extender:
            self.stats.reassignments += 1
            self.stats.handoff_time_s += self.handoff_outage_s
        self._assignment[user_id] = extender
        return AssociationDirective(user_id=user_id, extender=extender)

    def _scenario(self) -> "Tuple[Scenario, List[int]]":
        ids = sorted(self._reports)
        wifi = np.vstack([self._reports[uid].wifi_rates for uid in ids])
        return (Scenario(wifi_rates=wifi, plc_rates=self.plc_rates,
                         user_ids=np.asarray(ids)), ids)

    def _assignment_vector(self, ids: List[int]) -> np.ndarray:
        return np.array([self._assignment.get(uid, UNASSIGNED)
                         for uid in ids])
