"""Central Controller (CC) protocol emulation.

§V-A of the paper implements WOLT as a user-space utility: clients scan,
estimate per-extender WiFi rates from the NIC's MCS readout, report to a
Central Controller over their initial (strongest-RSSI) association, and
re-associate when the CC sends back an association directive.

This module emulates that control plane at message granularity so the
re-assignment overhead of Fig. 6c (and the paper's claim that it is
"relatively minor") can be quantified: every scan report, directive and
re-association handoff is counted, and the handoff outage time is
charged against the throughput the network would otherwise deliver.

Messages travel through an injectable :class:`Transport`.  The default
transport is lossless (the paper's assumption); the fault-injection
layer in :mod:`repro.sim.faults` substitutes a seeded lossy transport to
study a degraded control plane.  Directive delivery uses bounded retry
with exponential backoff, and the controller degrades gracefully: a
client that never receives its directive stays on its previous extender
(or on the strongest-RSSI extender it used to reach the CC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..net.engine import ThroughputReport, evaluate
from .baselines import greedy_attach_user
from .problem import Scenario, UNASSIGNED
from .wolt import solve_wolt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .guard import DecisionGuard
    from .health import HealthMonitor

__all__ = ["ScanReport", "AssociationDirective", "ControllerStats",
           "Transport", "CentralController"]


@dataclass(frozen=True)
class ScanReport:
    """A client's scan results, sent to the CC on arrival.

    Attributes:
        user_id: stable client identifier.
        wifi_rates: estimated PHY rate to every extender (Mbps; 0 =
            extender not heard).
    """

    user_id: int
    wifi_rates: np.ndarray


@dataclass(frozen=True)
class AssociationDirective:
    """CC -> client instruction to (re-)associate.

    Attributes:
        user_id: addressee.
        extender: target extender index.
    """

    user_id: int
    extender: int


@dataclass
class ControllerStats:
    """Running counters of control-plane activity.

    Attributes:
        scan_reports: reports received from clients.
        directives_sent: association directives issued.
        reassignments: directives that *changed* an existing association.
        handoff_time_s: cumulative client outage caused by handoffs.
        dropped_reports: scan reports lost in transit (never seen by
            the CC).
        dropped_directives: directives whose every delivery attempt
            (initial send plus retries) was lost.
        retries: directive retransmission attempts after a lost send.
        failed_handoffs: delivered directives the client failed to act
            on (it stays on its previous extender).
        backoff_wait_s: cumulative exponential-backoff wait spent on
            directive retransmissions.
        stale_reports: reports older than the configured TTL at a
            reconfiguration; their users kept their last-known-good
            association instead of being re-solved.
        sanitized_reports: scan reports containing non-finite or
            negative rates that the guard repaired at receipt.
        guard_repairs: users whose solver output the guard had to
            repair across this controller's solves.
    """

    scan_reports: int = 0
    directives_sent: int = 0
    reassignments: int = 0
    handoff_time_s: float = 0.0
    dropped_reports: int = 0
    dropped_directives: int = 0
    retries: int = 0
    failed_handoffs: int = 0
    backoff_wait_s: float = 0.0
    stale_reports: int = 0
    sanitized_reports: int = 0
    guard_repairs: int = 0


class Transport:
    """The control-plane message channel between clients and the CC.

    The base class is the paper's lossless §V-A control plane: every
    scan report arrives unperturbed, every directive lands on the first
    attempt, and every commanded handoff completes.  Fault injection
    (:class:`repro.sim.faults.FaultyTransport`) overrides these hooks
    with seeded Bernoulli losses and estimate noise.

    Attributes:
        max_retries: retransmissions the CC attempts after a lost
            directive send (0 for the lossless transport).
    """

    max_retries: int = 0

    def observe_report(self, report: ScanReport) -> Optional[ScanReport]:
        """The report as the CC receives it; ``None`` if lost."""
        return report

    def deliver_directive(self, directive: AssociationDirective) -> bool:
        """Whether one delivery attempt of ``directive`` lands."""
        return True

    def handoff_succeeds(self, directive: AssociationDirective) -> bool:
        """Whether the client acts on a delivered re-association."""
        return True

    def backoff_s(self, attempt: int) -> float:
        """Backoff wait before retransmission ``attempt`` (0-based)."""
        return 0.0


class CentralController:
    """The WOLT Central Controller.

    The CC maintains the measured PLC link capacities (obtained offline
    with iperf, §V-A), accumulates clients' scan reports, and computes
    associations with the configured policy.

    Args:
        plc_rates: measured per-extender PLC rates (Mbps).
        policy: ``"wolt"``, ``"greedy"`` or ``"rssi"``.
        handoff_outage_s: client outage per re-association (the time to
            disassociate, switch BSS and re-run DHCP/ARP; ~1 s for
            commodity clients).
        transport: control-plane message channel; defaults to the
            lossless :class:`Transport`.
        guard: optional :class:`repro.core.guard.DecisionGuard`.  When
            set, non-finite scan-report rates are sanitized at receipt
            (falling back to the user's last known-good rates) instead
            of raising, and every solve is validated/repaired.  Without
            it a non-finite report raises ``ValueError`` — telemetry
            this controller cannot trust is rejected loudly.
        health: optional :class:`repro.core.health.HealthMonitor`.
            Quarantined extenders are masked out of every solve and of
            admission parking (``fail_extenders`` semantics: zero WiFi
            column, zero PLC rate); feed it capacity telemetry through
            :meth:`update_plc_telemetry`.
        report_ttl_epochs: optional scan-report time-to-live, counted
            in reconfiguration epochs.  A user whose newest report is
            older than this many epochs is *stale*: it is excluded
            from the re-solve and keeps its last-known-good
            association (counted in
            :attr:`ControllerStats.stale_reports`).  ``None`` (the
            default) keeps the legacy behaviour — reports never
            expire.
    """

    def __init__(self, plc_rates: Sequence[float], policy: str = "wolt",
                 handoff_outage_s: float = 1.0,
                 transport: Optional[Transport] = None,
                 guard: "Optional[DecisionGuard]" = None,
                 health: "Optional[HealthMonitor]" = None,
                 report_ttl_epochs: Optional[int] = None) -> None:
        if policy not in ("wolt", "greedy", "rssi"):
            raise ValueError(f"unsupported policy {policy!r}")
        self.plc_rates = np.asarray(plc_rates, dtype=float)
        if self.plc_rates.ndim != 1 or self.plc_rates.size == 0:
            raise ValueError("plc_rates must be a non-empty vector")
        if report_ttl_epochs is not None and report_ttl_epochs < 1:
            raise ValueError("report_ttl_epochs must be positive")
        if health is not None and health.n_extenders != self.plc_rates.size:
            raise ValueError(
                "health monitor must watch one extender per PLC link")
        self.policy = policy
        self.handoff_outage_s = handoff_outage_s
        self.transport = transport if transport is not None else Transport()
        self.guard = guard
        self.health = health
        self.report_ttl_epochs = report_ttl_epochs
        self.stats = ControllerStats()
        self._epoch = 0
        self._reports: Dict[int, ScanReport] = {}
        self._report_epoch: Dict[int, int] = {}
        self._last_good_rates: Dict[int, np.ndarray] = {}
        self._assignment: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # client-facing protocol

    @property
    def n_extenders(self) -> int:
        return self.plc_rates.size

    @property
    def connected_users(self) -> List[int]:
        """User ids currently associated, sorted."""
        return sorted(self._assignment)

    @property
    def associations(self) -> Dict[int, int]:
        """Current user id -> extender associations (a copy)."""
        return dict(self._assignment)

    def receive_scan_report(self, report: ScanReport
                            ) -> Optional[AssociationDirective]:
        """Handle a client's scan report; reply with a directive.

        A new client is admitted immediately: Greedy places it to
        maximize aggregate throughput, RSSI and WOLT park it on its
        strongest extender (WOLT re-optimizes everyone at the next
        :meth:`reconfigure`).  A *refreshed* report from an
        already-connected client only updates the CC's rate table — its
        association is kept as long as its current extender is still
        reachable, so an optimized WOLT placement survives re-reports.
        A client is re-parked only when its extender became unreachable
        (e.g. the extender browned out).

        Returns ``None`` when no directive reaches the client: the
        report was lost in transit, every directive delivery attempt
        was lost, or no directive was needed.  A new client whose
        directive never arrives stays on the strongest-RSSI extender it
        used to reach the CC (graceful degradation).
        """
        rates = np.asarray(report.wifi_rates, dtype=float)
        if rates.shape != (self.n_extenders,):
            raise ValueError("scan report must cover every extender")
        rates = self._checked_rates(report.user_id, rates)
        if not np.any(rates > 0):
            if self.guard is not None:
                # Nothing usable survived sanitation and there is no
                # last-known-good fallback: ignore the report (the
                # client physically stays wherever it is).
                return None
            raise ValueError(f"user {report.user_id} hears no extender")
        observed = self.transport.observe_report(
            ScanReport(report.user_id, rates))
        if observed is None:
            self.stats.dropped_reports += 1
            return None
        seen = np.asarray(observed.wifi_rates, dtype=float)
        self.stats.scan_reports += 1
        self._reports[report.user_id] = ScanReport(report.user_id, seen)
        self._report_epoch[report.user_id] = self._epoch
        self._last_good_rates[report.user_id] = seen.copy()
        current = self._assignment.get(report.user_id)
        if current is not None and seen[current] > 0:
            return None
        if self.policy == "greedy":
            scenario, ids = self._scenario()
            idx = ids.index(report.user_id)
            vec = self._assignment_vector(ids)
            vec[idx] = UNASSIGNED
            try:
                extender = greedy_attach_user(scenario, vec, idx)
            except ValueError:
                if self.guard is None:
                    raise
                extender = int(np.argmax(self._admission_rates(seen)))
        else:
            extender = int(np.argmax(self._admission_rates(seen)))
        directive = self._issue(report.user_id, extender)
        if directive is None and current is None:
            # The client reached the CC over its strongest-RSSI
            # association and never heard back: it physically stays
            # there (per its own, unperturbed scan).
            self._assignment[report.user_id] = int(np.argmax(rates))
        return directive

    def disconnect(self, user_id: int) -> None:
        """Remove a departing client."""
        self._reports.pop(user_id, None)
        self._report_epoch.pop(user_id, None)
        self._last_good_rates.pop(user_id, None)
        self._assignment.pop(user_id, None)

    def update_plc_telemetry(self, plc_rates: Sequence[float]) -> None:
        """Refresh the measured PLC capacities from telemetry.

        With a :class:`~repro.core.health.HealthMonitor` attached, the
        observation drives the quarantine state machine and non-finite
        or negative readings fall back to each extender's last
        known-good capacity.  Without one, untrusted telemetry is
        rejected loudly.
        """
        arr = np.asarray(plc_rates, dtype=float).ravel()
        if arr.shape[0] != self.n_extenders:
            raise ValueError(
                "PLC telemetry must cover every extender")
        if self.health is not None:
            carrying = np.zeros(self.n_extenders, dtype=bool)
            for j in self._assignment.values():
                if j != UNASSIGNED:
                    carrying[j] = True
            self.health.observe(arr, carrying)
            self.plc_rates = self.health.effective_rates(arr)
            return
        if not np.all(np.isfinite(arr)) or np.any(arr < 0):
            raise ValueError(
                "PLC telemetry must be finite and non-negative")
        self.plc_rates = arr

    def reconfigure(self) -> List[AssociationDirective]:
        """Epoch-boundary re-optimization (WOLT only; others no-op).

        Every call advances the controller's epoch clock (the unit of
        the report TTL).  With ``report_ttl_epochs`` set, users whose
        newest report expired are excluded from the solve and keep
        their last-known-good association.

        Returns the directives *delivered* to clients whose extender
        changed (a directive lost on every attempt is counted in
        :attr:`ControllerStats.dropped_directives` instead; its client
        keeps its previous extender).
        """
        self._epoch += 1
        if self.policy != "wolt" or not self._reports:
            return []
        fresh = self._fresh_ids()
        self.stats.stale_reports += len(self._reports) - len(fresh)
        if not fresh:
            return []
        before = self.guard.repairs if self.guard is not None else 0
        scenario, ids = self._scenario(fresh)
        result = solve_wolt(scenario, guard=self.guard)
        if self.guard is not None:
            self.stats.guard_repairs += self.guard.repairs - before
        directives = []
        for idx, uid in enumerate(ids):
            new_j = int(result.assignment[idx])
            if new_j == UNASSIGNED:
                # A guarded solve could not place this user (e.g. its
                # only extenders are quarantined): it keeps its
                # last-known-good association.
                continue
            if self._assignment.get(uid) != new_j:
                directive = self._issue(uid, new_j)
                if directive is not None:
                    directives.append(directive)
        return directives

    # ------------------------------------------------------------------
    # measurement

    def network_report(self) -> "ThroughputReport":
        """Current end-to-end throughput report (see
        :func:`repro.net.engine.evaluate`)."""
        # Measurement covers everyone (stale users included) against
        # the unmasked scenario: quarantine is solver bookkeeping, not
        # physics, and clients may legitimately still sit on a
        # quarantined extender.
        scenario, ids = self._scenario(mask_quarantined=False)
        vec = self._assignment_vector(ids)
        complete = self.guard is None or not np.any(vec == UNASSIGNED)
        return evaluate(scenario, vec, require_complete=complete)

    def reassignment_overhead_fraction(self, window_s: float) -> float:
        """Fraction of a window lost to handoff outages (per client).

        A coarse upper bound on WOLT's reconfiguration cost: total
        handoff outage divided by total client-time in the window.
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        clients = max(len(self._assignment), 1)
        return min(1.0, self.stats.handoff_time_s / (window_s * clients))

    # ------------------------------------------------------------------
    # internals

    def _issue(self, user_id: int,
               extender: int) -> Optional[AssociationDirective]:
        """Send one directive through the transport.

        Delivery is retried up to ``transport.max_retries`` times with
        exponential backoff.  On exhaustion the directive is recorded
        as dropped and ``None`` is returned — the client keeps its
        previous association.  A delivered re-association may still
        fail client-side (``failed_handoffs``); only a completed
        handoff changes the association and is charged outage time.
        """
        previous = self._assignment.get(user_id)
        directive = AssociationDirective(user_id=user_id,
                                         extender=extender)
        self.stats.directives_sent += 1
        delivered = False
        for attempt in range(self.transport.max_retries + 1):
            if self.transport.deliver_directive(directive):
                delivered = True
                break
            if attempt < self.transport.max_retries:
                self.stats.retries += 1
                self.stats.backoff_wait_s += \
                    self.transport.backoff_s(attempt)
        if not delivered:
            self.stats.dropped_directives += 1
            return None
        if previous is not None and previous != extender:
            if not self.transport.handoff_succeeds(directive):
                self.stats.failed_handoffs += 1
                return directive
            self.stats.reassignments += 1
            self.stats.handoff_time_s += self.handoff_outage_s
        self._assignment[user_id] = extender
        return directive

    def _checked_rates(self, user_id: int,
                       rates: np.ndarray) -> np.ndarray:
        """Finiteness gate on telemetry-derived rates (the W009 seam).

        Unguarded, non-finite telemetry is rejected loudly — better a
        clear error at receipt than a poisoned solve later.  Guarded,
        non-finite entries fall back to the user's last known-good
        rates (or 0 = unreachable) and the repair is counted.
        """
        if self.guard is None:
            if not np.all(np.isfinite(rates)):
                raise ValueError(
                    f"user {user_id} reported non-finite rates")
            return rates
        clean, report = self.guard.sanitize_rates(
            rates, fallback=self._last_good_rates.get(user_id),
            source="scan-report")
        if not report.clean:
            self.stats.sanitized_reports += 1
        return clean

    def _admission_rates(self, seen: np.ndarray) -> np.ndarray:
        """Rates used to park a new client on its strongest extender.

        Quarantined extenders are masked out so no client is commanded
        onto one — unless that would leave nothing to park on.
        """
        if self.health is None:
            return seen
        masked = np.where(self.health.quarantined, 0.0, seen)
        return masked if np.any(masked > 0) else seen

    def _fresh_ids(self) -> List[int]:
        """Reported users whose newest report is within the TTL."""
        ids = sorted(self._reports)
        if self.report_ttl_epochs is None:
            return ids
        return [uid for uid in ids
                if self._epoch - self._report_epoch.get(uid, self._epoch)
                <= self.report_ttl_epochs]

    def _scenario(self, ids: Optional[List[int]] = None,
                  mask_quarantined: bool = True
                  ) -> "Tuple[Scenario, List[int]]":
        if ids is None:
            ids = sorted(self._reports)
        wifi = np.vstack([self._reports[uid].wifi_rates for uid in ids])
        plc = self.plc_rates
        if (mask_quarantined and self.health is not None
                and np.any(self.health.quarantined)):
            quarantined = self.health.quarantined
            wifi = wifi.copy()
            wifi[:, quarantined] = 0.0
            plc = plc.copy()
            plc[quarantined] = 0.0
        if not np.all(np.isfinite(wifi)):
            # Reports are checked at receipt (_checked_rates); this is
            # defense in depth against cache corruption.
            raise ValueError("non-finite rates in the scan-report cache")
        return (Scenario(wifi_rates=wifi, plc_rates=plc,
                         user_ids=np.asarray(ids)), ids)

    def _assignment_vector(self, ids: List[int]) -> np.ndarray:
        return np.array([self._assignment.get(uid, UNASSIGNED)
                         for uid in ids])
