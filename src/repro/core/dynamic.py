"""Incremental WOLT with hysteresis (an extension beyond the paper).

Fig. 6c of the paper shows full WOLT re-optimization swaps roughly one
existing user per arrival.  Each swap is a real handoff (disassociation,
re-association, DHCP/ARP), so an operator may want to trade a little
aggregate throughput for fewer handoffs.  :class:`IncrementalWolt`
maintains a running association under churn and re-optimizes with a
*hysteresis threshold*: at each reconfiguration it computes the fresh
WOLT solution, then applies user moves greedily, keeping only those
whose marginal aggregate-throughput gain exceeds ``min_gain_mbps``
(and, optionally, at most ``max_moves`` of them).

With ``min_gain_mbps = 0`` and no move cap this reduces to vanilla
epoch-boundary WOLT; larger thresholds approach "never reassign"
(Greedy-like churn behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..net.engine import DeltaEvaluator, evaluate, evaluate_batch
from .problem import UNASSIGNED, Scenario
from .wolt import solve_wolt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .guard import DecisionGuard

__all__ = ["ReconfigureOutcome", "IncrementalWolt"]


@dataclass(frozen=True)
class ReconfigureOutcome:
    """Result of one incremental reconfiguration.

    Attributes:
        moves: ``(user_id, old_extender, new_extender)`` tuples applied.
        aggregate_before: aggregate throughput entering reconfiguration.
        aggregate_after: aggregate throughput after the applied moves.
        wolt_aggregate: what a full (unconstrained) WOLT re-solve would
            have achieved — the hysteresis cost is the gap to this.
    """

    moves: Tuple[Tuple[int, int, int], ...]
    aggregate_before: float
    aggregate_after: float
    wolt_aggregate: float

    @property
    def hysteresis_cost(self) -> float:
        """Aggregate throughput conceded to avoid extra handoffs."""
        return self.wolt_aggregate - self.aggregate_after


class IncrementalWolt:
    """A churn-aware association controller with bounded re-assignment.

    Args:
        plc_rates: per-extender PLC rates (Mbps).
        min_gain_mbps: a user move is applied only while it improves the
            aggregate by at least this much.
        max_moves: optional cap on moves per reconfiguration.
        plc_mode: PLC sharing law for evaluation and move scoring.
        delta: score candidate moves with a
            :class:`~repro.net.engine.DeltaEvaluator` (only the two
            cells a move touches are recomputed; default) instead of
            tiling the working assignment into a full
            :func:`~repro.net.engine.evaluate_batch`.  The delta scores
            are bit-identical to scalar :func:`~repro.net.engine.evaluate`
            (the batch kernel agrees to 1e-9), and the differential
            wall asserts the selected moves match on seeded churn
            sequences.  ``False`` keeps the batched oracle path.
        warm_start: seed every WOLT re-solve's Phase II with the
            *current* association as starting basis (see
            :func:`repro.core.wolt.solve_wolt`).  Off by default: the
            warm-started target may differ from the cold solve at
            local-search tie points, so it is an opt-in seam.
        guard: optional :class:`repro.core.guard.DecisionGuard` threaded
            into every WOLT re-solve (bit-identical on clean inputs).
    """

    def __init__(self, plc_rates: "Union[Sequence[float], np.ndarray]",
                 min_gain_mbps: float = 0.0,
                 max_moves: Optional[int] = None,
                 plc_mode: str = "redistribute",
                 delta: bool = True,
                 warm_start: bool = False,
                 guard: "Optional[DecisionGuard]" = None) -> None:
        if min_gain_mbps < 0:
            raise ValueError("min_gain_mbps must be non-negative")
        if max_moves is not None and max_moves < 0:
            raise ValueError("max_moves must be non-negative")
        self.plc_rates = np.asarray(plc_rates, dtype=float)
        if self.plc_rates.ndim != 1 or self.plc_rates.size == 0:
            raise ValueError("plc_rates must be a non-empty vector")
        self.min_gain_mbps = min_gain_mbps
        self.max_moves = max_moves
        self.plc_mode = plc_mode
        self.delta = delta
        self.warm_start = warm_start
        self.guard = guard
        #: user id -> WiFi rate row (length n_extenders)
        self._rates: Dict[int, np.ndarray] = {}
        #: user id -> extender index
        self.assignment: Dict[int, int] = {}
        self.total_moves = 0

    # ------------------------------------------------------------------
    # churn

    @property
    def n_users(self) -> int:
        return len(self._rates)

    def add_user(self, user_id: int,
                 wifi_rates: "Union[Sequence[float], np.ndarray]") -> int:
        """Admit a user on its strongest extender; returns the extender."""
        rates = np.asarray(wifi_rates, dtype=float)
        if rates.shape != self.plc_rates.shape:
            raise ValueError("one WiFi rate per extender is required")
        if not np.any(rates > 0):
            raise ValueError(f"user {user_id} hears no extender")
        if user_id in self._rates:
            raise ValueError(f"duplicate user id {user_id}")
        self._rates[user_id] = rates
        self.assignment[user_id] = int(np.argmax(rates))
        return self.assignment[user_id]

    def remove_user(self, user_id: int) -> None:
        """Remove a departing user."""
        self._rates.pop(user_id, None)
        self.assignment.pop(user_id, None)

    # ------------------------------------------------------------------
    # reconfiguration

    def _scenario(self) -> Tuple[Scenario, List[int]]:
        ids = sorted(self._rates)
        wifi = (np.vstack([self._rates[uid] for uid in ids]) if ids
                else np.empty((0, self.plc_rates.size)))
        return Scenario(wifi_rates=wifi, plc_rates=self.plc_rates), ids

    def aggregate_throughput(self) -> float:
        """Aggregate throughput of the current association."""
        scenario, ids = self._scenario()
        if not ids:
            return 0.0
        vec = np.array([self.assignment[uid] for uid in ids])
        return evaluate(scenario, vec, plc_mode=self.plc_mode,
                        require_complete=True).aggregate

    def reconfigure(self) -> ReconfigureOutcome:
        """Apply the best WOLT moves that clear the hysteresis bar.

        The fresh WOLT solution defines the candidate target extender of
        each user; candidate moves are applied greedily in order of
        marginal gain, re-evaluated after every application, until no
        remaining move gains at least ``min_gain_mbps`` (or the move cap
        is hit).  At ``min_gain_mbps == 0`` every target move is applied
        — zero-gain tie points included — so the final association *is*
        the fresh WOLT target (vanilla epoch-boundary WOLT), as the
        class contract promises.
        """
        scenario, ids = self._scenario()
        if not ids:
            return ReconfigureOutcome(moves=(), aggregate_before=0.0,
                                      aggregate_after=0.0,
                                      wolt_aggregate=0.0)
        current = np.array([self.assignment[uid] for uid in ids])
        before = evaluate(scenario, current, plc_mode=self.plc_mode,
                          require_complete=True).aggregate
        target = solve_wolt(scenario, plc_mode=self.plc_mode,
                            warm_start=current if self.warm_start
                            else None,
                            guard=self.guard)
        # A guarded solve may leave a genuinely unattachable user
        # UNASSIGNED; never "move" anyone to UNASSIGNED.
        pending = {idx for idx in range(len(ids))
                   if target.assignment[idx] != current[idx]
                   and target.assignment[idx] != UNASSIGNED}
        applied: List[Tuple[int, int, int]] = []
        working = current.copy()
        evaluator = (DeltaEvaluator(scenario, working,
                                    plc_mode=self.plc_mode)
                     if self.delta and pending else None)
        best = before
        while pending:
            if (self.max_moves is not None
                    and len(applied) >= self.max_moves):
                break
            idxs = sorted(pending)
            if evaluator is not None:
                # Delta scoring: each candidate recomputes only the two
                # cells its move touches (bit-identical to a scalar
                # evaluate of the moved assignment).
                aggregates: "Sequence[float]" = [
                    evaluator.score_move(idx, int(target.assignment[idx]))
                    for idx in idxs]
            else:
                # Score every pending move in one batched engine call
                # (bit-identical to the scalar loop by the PR-1
                # contract).
                batch = np.tile(working, (len(idxs), 1))
                batch[np.arange(len(idxs)), idxs] = \
                    target.assignment[idxs]
                aggregates = evaluate_batch(
                    scenario, batch, plc_mode=self.plc_mode,
                    require_complete=True).aggregates
            gains = [(float(agg) - best, idx)
                     for agg, idx in zip(aggregates, idxs)]
            gain, idx = max(gains)
            # The hysteresis bar: at a positive threshold, stop as soon
            # as the best remaining move falls short.  At the zero
            # threshold the class contract is "vanilla epoch-boundary
            # WOLT" — every remaining target move is applied, zero-gain
            # tie points included (pending shrinks each iteration, so
            # the loop still terminates).
            if self.min_gain_mbps > 0 and gain < self.min_gain_mbps:
                break
            moved_agg = float(aggregates[idxs.index(idx)])
            applied.append((ids[idx], int(working[idx]),
                            int(target.assignment[idx])))
            working[idx] = target.assignment[idx]
            if evaluator is not None:
                evaluator.commit(idx, int(target.assignment[idx]))
                # Re-sync from the evaluator's committed aggregate:
                # ``best += gain`` would accumulate one rounding error
                # per move and the greedy threshold would drift away
                # from the true baseline over a long churn sequence.
                best = evaluator.aggregate
            else:
                best = moved_agg
            pending.discard(idx)
        for user_id, _, new_j in applied:
            self.assignment[user_id] = new_j
        self.total_moves += len(applied)
        after = evaluate(scenario, working, plc_mode=self.plc_mode,
                         require_complete=True).aggregate
        return ReconfigureOutcome(moves=tuple(applied),
                                  aggregate_before=before,
                                  aggregate_after=after,
                                  wolt_aggregate=target.
                                  aggregate_throughput)
