"""Fairness-aware association (an extension beyond the paper).

WOLT maximizes the aggregate throughput; §V-D/§V-E of the paper measure
the fairness cost of that choice.  This module adds the natural
extension the paper leaves open: α-fair user association, maximizing

    sum_i U_alpha(t_i),   U_alpha(t) = log(t)            (alpha = 1)
                          U_alpha(t) = t^(1-alpha)/(1-alpha)  otherwise

over per-user end-to-end throughputs ``t_i``.  ``alpha = 0`` recovers
pure throughput maximization, ``alpha = 1`` is proportional fairness,
and ``alpha -> inf`` approaches max-min fairness.

The solver is a best-improvement local search over single relocations
seeded by WOLT's assignment — the same machinery WOLT's Phase II uses,
but driven by the α-fair objective evaluated on the *end-to-end* engine
(so the PLC side is fully accounted for).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..net.engine import ThroughputReport, evaluate
from ..net.metrics import jain_fairness
from .problem import Scenario
from .wolt import solve_wolt

__all__ = ["alpha_fair_utility", "AlphaFairResult", "solve_alpha_fair"]

#: Throughput floor (Mbps) so log/negative-power utilities stay finite.
_UTILITY_FLOOR = 1e-6


def alpha_fair_utility(throughputs: Sequence[float], alpha: float) -> float:
    """Total α-fair utility of a throughput allocation.

    Args:
        throughputs: per-user throughputs (Mbps); values are floored at
            a small epsilon so starving users yield a very negative (but
            finite) utility.
        alpha: fairness parameter (``>= 0``).

    Returns:
        ``sum_i U_alpha(t_i)``.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    t = np.maximum(np.asarray(list(throughputs), dtype=float),
                   _UTILITY_FLOOR)
    if abs(alpha - 1.0) < 1e-12:
        return float(np.sum(np.log(t)))
    return float(np.sum(t ** (1.0 - alpha) / (1.0 - alpha)))


@dataclass(frozen=True)
class AlphaFairResult:
    """Outcome of α-fair association.

    Attributes:
        assignment: per-user extender indices.
        report: end-to-end throughput report.
        utility: achieved α-fair utility.
        alpha: the fairness parameter used.
        iterations: local-search rounds performed.
    """

    assignment: np.ndarray
    report: ThroughputReport
    utility: float
    alpha: float
    iterations: int

    @property
    def aggregate_throughput(self) -> float:
        return self.report.aggregate

    @property
    def jain(self) -> float:
        return jain_fairness(self.report.user_throughputs)


def solve_alpha_fair(scenario: Scenario,
                     alpha: float = 1.0,
                     plc_mode: str = "redistribute",
                     max_rounds: int = 30,
                     initial_assignment: Optional[Sequence[int]] = None
                     ) -> AlphaFairResult:
    """α-fair user association by WOLT-seeded local search.

    Args:
        scenario: the network snapshot.
        alpha: fairness parameter (0 = throughput, 1 = proportional
            fair, larger = closer to max-min).
        plc_mode: PLC sharing law for evaluation.
        max_rounds: local-search round cap.
        initial_assignment: optional warm start (defaults to WOLT's
            assignment).

    Returns:
        An :class:`AlphaFairResult`.
    """
    if initial_assignment is None:
        assignment = solve_wolt(scenario, plc_mode=plc_mode).assignment
    else:
        assignment = np.array(initial_assignment, dtype=int)
        if assignment.shape[0] != scenario.n_users:
            raise ValueError("initial assignment length mismatch")

    def utility_of(vec: np.ndarray) -> float:
        report = evaluate(scenario, vec, plc_mode=plc_mode,
                          require_complete=True)
        return alpha_fair_utility(report.user_throughputs, alpha)

    counts = np.bincount(assignment, minlength=scenario.n_extenders)
    best = utility_of(assignment)
    rounds = 0
    improved = True
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for user in range(scenario.n_users):
            current = assignment[user]
            for j in scenario.reachable(user):
                j = int(j)
                if j == current:
                    continue
                if counts[j] + 1 > scenario.capacity_of(j):
                    continue
                # Never empty an extender if the instance has more users
                # than extenders (keeps Phase-I style coverage).
                if (counts[current] == 1
                        and scenario.n_users >= scenario.n_extenders):
                    continue
                assignment[user] = j
                candidate = utility_of(assignment)
                if candidate > best + 1e-9:
                    best = candidate
                    counts[current] -= 1
                    counts[j] += 1
                    current = j
                    improved = True
                else:
                    assignment[user] = current
    report = evaluate(scenario, assignment, plc_mode=plc_mode,
                      require_complete=True)
    return AlphaFairResult(assignment=assignment, report=report,
                           utility=best, alpha=alpha, iterations=rounds)
