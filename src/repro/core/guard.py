"""Decision guards: invariant validation and deterministic repair.

The solvers in this package trust their inputs and each other: WOLT
assumes Phase I covered every extender (Lemma 2), the engine assumes
every assigned extender is reachable, and the Central Controller solves
on whatever scan reports it holds.  Telemetry from real NIC drivers and
offline PLC measurements violates all of that — rates go NaN, extenders
report capacities they do not have, and a stale report can command a
user onto a dead BSS.

:class:`DecisionGuard` closes the loop.  It validates every solver or
baseline output against the paper's own invariants

* each user is assigned exactly once (constraint (7));
* an assigned extender is reachable — its WiFi rate is nonzero;
* per-extender user capacities (constraint (8)) hold;
* Phase I anchors exactly one user per extender and leaves no
  coverable extender uncovered (Lemma 2);
* telemetry-derived rates are finite and non-negative

and *repairs* violations deterministically instead of crashing:
out-of-range and unreachable directives are dropped, over-capacity
extenders evict their weakest members, and detached users are
reattached with :func:`repro.core.baselines.greedy_attach_user` (users
no extender can host are left :data:`~repro.core.problem.UNASSIGNED`
and reported).  Every check emits a structured :class:`GuardReport`.

The guard is wired behind a ``guard=`` seam: with ``guard=None`` (the
default everywhere) behaviour is bit-identical to the unguarded code,
and on *clean* inputs a guarded solve returns bit-identical decisions
— repair is a no-op whenever no invariant is violated (property-tested
by ``tests/test_guard.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, List, Optional, Sequence, Tuple

import numpy as np

from .problem import MIN_USABLE_RATE, UNASSIGNED, Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .phase1 import Phase1Result

__all__ = ["GuardError", "GuardViolation", "GuardReport", "DecisionGuard"]


class GuardError(ValueError):
    """A violation the guard cannot (or may not) repair.

    Raised for malformed outputs with no deterministic repair (e.g. an
    assignment vector of the wrong length) and, in ``strict`` mode, for
    any violation at all.
    """


@dataclass(frozen=True)
class GuardViolation:
    """One invariant violation found by the guard.

    Attributes:
        code: stable machine-readable identifier (see the invariants
            table in ``docs/ROBUSTNESS.md``).
        message: human-readable description.
        users: user indices involved (if any).
        extenders: extender indices involved (if any).
    """

    code: str
    message: str
    users: Tuple[int, ...] = ()
    extenders: Tuple[int, ...] = ()


@dataclass(frozen=True)
class GuardReport:
    """Structured diagnostics from one guard check or repair.

    Attributes:
        source: the stage that produced the checked artifact
            (``"phase1"``, ``"phase2"``, ``"wolt"``, ``"bnb"``,
            ``"rssi"``, ``"greedy"``, ``"controller"``, ...).
        violations: every invariant violation found (empty when clean).
        repaired_users: users whose assignment the repair changed.
        dropped_users: users left UNASSIGNED because no reachable
            extender with free capacity exists.
        sanitized_entries: telemetry entries replaced by
            :meth:`DecisionGuard.sanitize_rates`.
    """

    source: str
    violations: Tuple[GuardViolation, ...] = ()
    repaired_users: Tuple[int, ...] = ()
    dropped_users: Tuple[int, ...] = ()
    sanitized_entries: int = 0

    @property
    def clean(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def codes(self) -> Tuple[str, ...]:
        """The violation codes, in detection order."""
        return tuple(v.code for v in self.violations)


class DecisionGuard:
    """Validates and repairs association decisions.

    Args:
        strict: raise :class:`GuardError` on any violation instead of
            repairing (useful in CI, where a violation means a solver
            bug rather than bad telemetry).
        history: number of recent :class:`GuardReport` objects to keep
            on :attr:`reports`.

    Attributes:
        checks: total check/repair calls.
        violation_count: total violations detected.
        repairs: total users whose assignment a repair changed.
        drops: total users a repair had to leave UNASSIGNED.
        sanitized_entries: total telemetry entries replaced by
            :meth:`sanitize_rates`.
        reports: the most recent reports (bounded deque).
    """

    def __init__(self, strict: bool = False, history: int = 256) -> None:
        if history < 1:
            raise ValueError("history must be positive")
        self.strict = strict
        self.checks = 0
        self.violation_count = 0
        self.repairs = 0
        self.drops = 0
        self.sanitized_entries = 0
        self.reports: Deque[GuardReport] = deque(maxlen=history)

    # ------------------------------------------------------------------
    # bookkeeping

    @property
    def last_report(self) -> Optional[GuardReport]:
        """The most recent report, or None before the first check."""
        return self.reports[-1] if self.reports else None

    def _file(self, report: GuardReport) -> GuardReport:
        """Record a report in the counters and bounded history."""
        self.checks += 1
        self.violation_count += len(report.violations)
        self.repairs += len(report.repaired_users)
        self.drops += len(report.dropped_users)
        self.sanitized_entries += report.sanitized_entries
        self.reports.append(report)
        if self.strict and report.violations:
            raise GuardError(
                f"[{report.source}] invariant violations: "
                + "; ".join(v.message for v in report.violations))
        return report

    # ------------------------------------------------------------------
    # assignment invariants

    def check_assignment(self, scenario: Scenario,
                         assignment: Sequence[int],
                         source: str = "solver",
                         require_complete: bool = True) -> GuardReport:
        """Detect violations without repairing (never raises on them).

        Args:
            scenario: the network snapshot the assignment is for.
            assignment: per-user extender indices.
            source: label recorded on the report.
            require_complete: treat UNASSIGNED users as violations
                (constraint (7)).

        Returns:
            A :class:`GuardReport` (no mutation; strict mode still
            raises when violations are found).
        """
        assign = self._as_vector(scenario, assignment)
        violations = self._detect(scenario, assign, require_complete)
        return self._file(GuardReport(source=source,
                                      violations=tuple(violations)))

    def repair_assignment(self, scenario: Scenario,
                          assignment: Sequence[int],
                          source: str = "solver",
                          require_complete: bool = True
                          ) -> Tuple[np.ndarray, GuardReport]:
        """Detect violations and repair them deterministically.

        The repair sequence is: drop out-of-range directives, drop
        directives onto unreachable extenders, evict the weakest
        members of over-capacity extenders (lowest WiFi rate first,
        ties broken toward the higher user index), then — when
        ``require_complete`` — reattach every detached user in
        ascending user order with
        :func:`repro.core.baselines.greedy_attach_user`.  A user no
        extender can host stays UNASSIGNED and is reported in
        :attr:`GuardReport.dropped_users`.

        Repair is idempotent and is a no-op (bit-identical output) on
        a violation-free assignment.

        Returns:
            ``(repaired_assignment, report)``.
        """
        original = self._as_vector(scenario, assignment)
        assign = original.copy()
        violations: List[GuardViolation] = []

        attached = assign != UNASSIGNED
        bad = attached & ((assign < 0) | (assign >= scenario.n_extenders))
        if np.any(bad):
            users = tuple(int(u) for u in np.flatnonzero(bad))
            violations.append(GuardViolation(
                code="out-of-range-extender",
                message=f"users {list(users)} assigned to a nonexistent "
                        "extender index",
                users=users))
            assign[bad] = UNASSIGNED

        idx = np.flatnonzero(assign != UNASSIGNED)
        if idx.size:
            rates = scenario.wifi_rates[idx, assign[idx]]
            unreach = idx[rates <= MIN_USABLE_RATE]
            if unreach.size:
                users = tuple(int(u) for u in unreach)
                violations.append(GuardViolation(
                    code="unreachable-extender",
                    message=f"users {list(users)} assigned to an "
                            "extender they cannot hear",
                    users=users))
                assign[unreach] = UNASSIGNED

        if scenario.capacities is not None:
            for j in range(scenario.n_extenders):
                members = np.flatnonzero(assign == j)
                cap = int(scenario.capacities[j])
                if members.size <= cap:
                    continue
                order = sorted(
                    (int(u) for u in members),
                    key=lambda u: (-scenario.wifi_rates[u, j], u))
                evicted = tuple(sorted(order[cap:]))
                violations.append(GuardViolation(
                    code="over-capacity",
                    message=f"extender {j} holds {members.size} users "
                            f"against capacity {cap}; evicting "
                            f"{list(evicted)}",
                    users=evicted, extenders=(j,)))
                assign[list(evicted)] = UNASSIGNED

        dropped: List[int] = []
        if require_complete:
            missing_orig = np.flatnonzero(original == UNASSIGNED)
            if missing_orig.size:
                users = tuple(int(u) for u in missing_orig)
                violations.append(GuardViolation(
                    code="unassigned-user",
                    message=f"users {list(users)} arrived unassigned "
                            "(constraint (7))",
                    users=users))
            from .baselines import greedy_attach_user
            for user in np.flatnonzero(assign == UNASSIGNED):
                user = int(user)
                try:
                    assign[user] = greedy_attach_user(scenario, assign,
                                                      user)
                except ValueError:
                    dropped.append(user)
            if dropped:
                violations.append(GuardViolation(
                    code="unattachable-user",
                    message=f"users {dropped} have no reachable "
                            "extender with free capacity; left "
                            "UNASSIGNED",
                    users=tuple(dropped)))

        repaired = tuple(int(u)
                         for u in np.flatnonzero(assign != original))
        report = self._file(GuardReport(
            source=source, violations=tuple(violations),
            repaired_users=repaired, dropped_users=tuple(dropped)))
        return assign, report

    def _detect(self, scenario: Scenario, assign: np.ndarray,
                require_complete: bool) -> List[GuardViolation]:
        """Pure detection pass (mirrors the repair criteria exactly)."""
        violations: List[GuardViolation] = []
        attached = assign != UNASSIGNED
        bad = attached & ((assign < 0) | (assign >= scenario.n_extenders))
        if np.any(bad):
            users = tuple(int(u) for u in np.flatnonzero(bad))
            violations.append(GuardViolation(
                code="out-of-range-extender",
                message=f"users {list(users)} assigned to a nonexistent "
                        "extender index",
                users=users))
        ok = attached & ~bad
        idx = np.flatnonzero(ok)
        if idx.size:
            rates = scenario.wifi_rates[idx, assign[idx]]
            unreach = idx[rates <= MIN_USABLE_RATE]
            if unreach.size:
                users = tuple(int(u) for u in unreach)
                violations.append(GuardViolation(
                    code="unreachable-extender",
                    message=f"users {list(users)} assigned to an "
                            "extender they cannot hear",
                    users=users))
        if scenario.capacities is not None:
            counts = np.bincount(assign[ok],
                                 minlength=scenario.n_extenders) \
                if np.any(ok) else np.zeros(scenario.n_extenders, int)
            over = np.flatnonzero(counts > scenario.capacities)
            if over.size:
                extenders = tuple(int(j) for j in over)
                violations.append(GuardViolation(
                    code="over-capacity",
                    message=f"extenders {list(extenders)} exceed their "
                            "user capacity (constraint (8))",
                    extenders=extenders))
        if require_complete and np.any(~attached):
            users = tuple(int(u) for u in np.flatnonzero(~attached))
            violations.append(GuardViolation(
                code="unassigned-user",
                message=f"users {list(users)} arrived unassigned "
                        "(constraint (7))",
                users=users))
        return violations

    @staticmethod
    def _as_vector(scenario: Scenario,
                   assignment: Sequence[int]) -> np.ndarray:
        assign = np.asarray(assignment, dtype=int).ravel()
        if assign.shape[0] != scenario.n_users:
            raise GuardError(
                f"assignment has {assign.shape[0]} entries for "
                f"{scenario.n_users} users — no deterministic repair "
                "exists for a malformed vector")
        return assign

    # ------------------------------------------------------------------
    # Phase-I invariants (Lemma 2)

    def repair_phase1(self, scenario: Scenario,
                      result: "Phase1Result"
                      ) -> Tuple["Phase1Result", GuardReport]:
        """Validate and repair a Phase-I artifact against Lemma 2.

        Invariants: every anchor is reachable, no extender holds more
        than one anchor, and no extender listed as unmatched is in fact
        coverable by an unanchored user (a length-1 augmenting path —
        a sound certificate that the matching was not maximum).
        Repairs: unreachable anchors are released, duplicate anchors
        keep only the highest-utility user, and coverable unmatched
        extenders are anchored to their best unanchored user
        (ties break toward the lower user index).  On a clean artifact
        the result is returned unchanged (same object).
        """
        from .phase1 import Phase1Result

        orig_assign = np.asarray(result.assignment, dtype=int).ravel()
        if orig_assign.shape[0] != scenario.n_users:
            raise GuardError("phase1 assignment has the wrong length")
        assign = orig_assign.copy()
        utilities = np.asarray(result.utilities, dtype=float)
        orig_unmatched = set(
            int(e) for e in np.asarray(result.unmatched_extenders,
                                       dtype=int).ravel())
        violations: List[GuardViolation] = []

        anchored = np.flatnonzero(assign != UNASSIGNED)
        bad_range = [int(u) for u in anchored
                     if not 0 <= assign[u] < scenario.n_extenders]
        if bad_range:
            violations.append(GuardViolation(
                code="out-of-range-extender",
                message=f"phase1 anchors {bad_range} out of range",
                users=tuple(bad_range)))
            assign[bad_range] = UNASSIGNED
            anchored = np.flatnonzero(assign != UNASSIGNED)
        unreach = [int(u) for u in anchored
                   if scenario.wifi_rates[u, assign[u]]
                   <= MIN_USABLE_RATE]
        if unreach:
            violations.append(GuardViolation(
                code="unreachable-anchor",
                message=f"phase1 anchors {unreach} cannot hear their "
                        "extender; released",
                users=tuple(unreach)))
            assign[unreach] = UNASSIGNED

        for j in range(scenario.n_extenders):
            members = np.flatnonzero(assign == j)
            if members.size <= 1:
                continue
            keep = min((int(u) for u in members),
                       key=lambda u: (-utilities[u, j], u))
            released = tuple(int(u) for u in members if int(u) != keep)
            violations.append(GuardViolation(
                code="duplicate-anchor",
                message=f"extender {j} holds {members.size} Phase-I "
                        f"anchors (Lemma 2 allows one); keeping user "
                        f"{keep}",
                users=released, extenders=(j,)))
            assign[list(released)] = UNASSIGNED

        # Lemma-2 cover: every extender either carries exactly one
        # anchor or is reported unmatched *and* genuinely uncoverable
        # (no currently-unanchored user reaches it — a length-1
        # augmenting path is a sound certificate the matching was not
        # maximum).  Coverable extenders are (re-)anchored to their
        # best unanchored user; a violation is recorded only when the
        # original artifact itself was at fault, so a clean artifact
        # round-trips unchanged.
        covered = np.zeros(scenario.n_extenders, dtype=bool)
        anchored = np.flatnonzero(assign != UNASSIGNED)
        covered[assign[anchored]] = True
        for j in np.flatnonzero(~covered):
            j = int(j)
            candidates = [int(u) for u in range(scenario.n_users)
                          if assign[u] == UNASSIGNED
                          and np.isfinite(utilities[u, j])
                          and scenario.wifi_rates[u, j]
                          > MIN_USABLE_RATE]
            orig_covered = bool(np.any(orig_assign == j))
            if not orig_covered and j not in orig_unmatched:
                violations.append(GuardViolation(
                    code="uncovered-extender",
                    message=f"extender {j} neither anchored nor "
                            "reported unmatched",
                    extenders=(j,)))
            elif j in orig_unmatched and any(
                    orig_assign[u] == UNASSIGNED for u in candidates):
                violations.append(GuardViolation(
                    code="uncovered-extender",
                    message=f"extender {j} declared unmatched although "
                            "an unanchored user reaches it (Lemma-2 "
                            "cover violation)",
                    extenders=(j,)))
            if candidates:
                best = min(candidates,
                           key=lambda u: (-utilities[u, j], u))
                assign[best] = j

        if not violations:
            report = self._file(GuardReport(source="phase1"))
            return result, report

        anchored = np.sort(np.flatnonzero(assign != UNASSIGNED))
        matched = np.zeros(scenario.n_extenders, dtype=bool)
        matched[assign[anchored]] = True
        objective = float(utilities[anchored,
                                    assign[anchored]].sum()) \
            if anchored.size else 0.0
        repaired_users = tuple(
            int(u) for u in np.flatnonzero(
                assign != np.asarray(result.assignment)))
        report = self._file(GuardReport(
            source="phase1", violations=tuple(violations),
            repaired_users=repaired_users))
        fixed = Phase1Result(
            assignment=assign, anchored_users=anchored,
            utilities=result.utilities, objective=objective,
            unmatched_extenders=np.flatnonzero(~matched))
        return fixed, report

    # ------------------------------------------------------------------
    # telemetry sanitation

    def sanitize_rates(self, rates: Sequence[float],
                       fallback: Optional[np.ndarray] = None,
                       source: str = "telemetry"
                       ) -> Tuple[np.ndarray, GuardReport]:
        """Replace non-finite / negative telemetry entries.

        Non-finite entries take the corresponding ``fallback``
        (last-known-good) value when one is provided and finite, else
        ``0.0`` (unreachable); negative entries are clamped to ``0.0``.
        The number of replaced entries is recorded on the report and
        the guard's :attr:`sanitized_entries` counter.

        Returns:
            ``(clean_rates, report)`` — a new array; the input is not
            mutated.
        """
        arr = np.array(rates, dtype=float)
        nonfinite = ~np.isfinite(arr)
        negative = np.isfinite(arr) & (arr < 0)
        n_fixed = int(nonfinite.sum() + negative.sum())
        if n_fixed == 0:
            report = self._file(GuardReport(source=source))
            return arr, report
        if fallback is not None:
            fb = np.asarray(fallback, dtype=float)
            if fb.shape != arr.shape:
                raise GuardError("fallback shape must match rates")
            safe_fb = np.where(np.isfinite(fb) & (fb >= 0), fb, 0.0)
            arr[nonfinite] = safe_fb[nonfinite]
        else:
            arr[nonfinite] = 0.0
        arr[negative] = 0.0
        violation = GuardViolation(
            code="nonfinite-telemetry",
            message=f"{n_fixed} non-finite or negative telemetry "
                    "entries replaced")
        report = self._file(GuardReport(source=source,
                                        violations=(violation,),
                                        sanitized_entries=n_fixed))
        return arr, report
