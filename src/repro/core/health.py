"""Extender health monitoring: quarantine and probation.

The Central Controller's PLC capacities come from offline iperf
measurements (§V-A) refreshed by telemetry.  Real power-line links lie:
capacities go NaN when a probe fails, read zero while the extender is
visibly carrying traffic, and flap by an order of magnitude between
probes (see the enterprise-PLC measurement study in PAPERS.md).  An
extender whose reported capacity cannot be trusted should not receive
users just because one probe looked great.

:class:`HealthMonitor` watches one capacity observation per extender
per epoch and drives a small quarantine state machine:

* **healthy -> quarantined** when the reported capacity is non-finite,
  zero while the extender carries traffic, or has been *flapping* —
  swinging by more than ``flap_band`` (relative) against the previous
  finite observation for ``flap_strikes`` consecutive epochs (a single
  swing is a legitimate capacity change; a sustained oscillation is a
  sick link).
* **quarantined -> healthy** after ``probation_epochs`` consecutive
  clean observations (finite, non-negative, inside the flap band).

Quarantined extenders are masked out of the solve exactly like dead
ones (:func:`repro.sim.failures.fail_extenders` semantics: zero WiFi
column, zero PLC rate), so no user is ever *commanded* onto one.  The
monitor never quarantines the last healthy extender — serving users on
a suspect link beats serving nobody.

Every transition is logged as a :class:`HealthEvent`, and
:meth:`HealthMonitor.effective_rates` supplies last-known-good
capacities for solving while telemetry is garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["HealthEvent", "HealthMonitor"]

#: Relative swing below which two finite capacity observations are
#: considered consistent (no flap strike, clean probation epoch).
_EPS = 1e-12


@dataclass(frozen=True)
class HealthEvent:
    """One quarantine state-machine transition.

    Attributes:
        epoch: observation epoch (0-based) the transition happened in.
        extender: extender index.
        event: ``"quarantine"``, ``"readmit"`` or
            ``"quarantine-skipped"`` (the last healthy extender is
            never quarantined).
        reason: diagnostic — ``"nonfinite-capacity"``,
            ``"zero-capacity-under-traffic"``, ``"capacity-flapping"``
            or ``"probation-complete"``.
    """

    epoch: int
    extender: int
    event: str
    reason: str


class HealthMonitor:
    """Per-extender capacity health tracking with quarantine.

    Args:
        n_extenders: number of extenders watched.
        flap_band: relative swing between consecutive finite
            observations above which an epoch counts as a flap strike
            (``0.5`` = a 50 % move).
        flap_strikes: consecutive flap strikes that trigger quarantine.
        probation_epochs: consecutive clean observations a quarantined
            extender must deliver before re-admission.

    Attributes:
        epoch: observations processed so far.
        events: every state-machine transition, in order.
    """

    def __init__(self, n_extenders: int, flap_band: float = 0.5,
                 flap_strikes: int = 2,
                 probation_epochs: int = 3) -> None:
        if n_extenders < 1:
            raise ValueError("n_extenders must be positive")
        if flap_band <= 0:
            raise ValueError("flap_band must be positive")
        if flap_strikes < 1 or probation_epochs < 1:
            raise ValueError(
                "flap_strikes and probation_epochs must be positive")
        self.n_extenders = n_extenders
        self.flap_band = flap_band
        self.flap_strikes = flap_strikes
        self.probation_epochs = probation_epochs
        self.epoch = 0
        self.events: List[HealthEvent] = []
        self._quarantined = np.zeros(n_extenders, dtype=bool)
        self._flap_count = np.zeros(n_extenders, dtype=int)
        self._clean_streak = np.zeros(n_extenders, dtype=int)
        self._last_seen = np.full(n_extenders, np.nan)
        self._last_good = np.full(n_extenders, np.nan)

    # ------------------------------------------------------------------
    # queries

    @property
    def quarantined(self) -> np.ndarray:
        """Boolean quarantine mask (a copy)."""
        return self._quarantined.copy()

    def quarantined_extenders(self) -> Tuple[int, ...]:
        """Indices currently quarantined, ascending."""
        return tuple(int(j)
                     for j in np.flatnonzero(self._quarantined))

    def is_quarantined(self, extender: int) -> bool:
        """Whether one extender is currently quarantined."""
        return bool(self._quarantined[extender])

    def effective_rates(self,
                        reported: Sequence[float]) -> np.ndarray:
        """Finite capacities usable by a solver.

        Finite non-negative reports pass through; anything else takes
        the last *clean* finite non-negative observation — one
        :meth:`observe` found no fault with (suspect readings such as
        zero-under-traffic never become the fallback) — or ``0.0`` when
        there never was one.  (Quarantine is a separate concern — mask
        with :attr:`quarantined` / ``fail_extenders``.)
        """
        arr = np.asarray(reported, dtype=float).ravel()
        if arr.shape[0] != self.n_extenders:
            raise ValueError("reported must cover every extender")
        good = np.isfinite(arr) & (arr >= 0)
        fallback = np.where(np.isfinite(self._last_good),
                            self._last_good, 0.0)
        return np.where(good, arr, fallback)

    # ------------------------------------------------------------------
    # the state machine

    def observe(self, plc_rates: Sequence[float],
                carrying_traffic: Optional[Sequence[bool]] = None
                ) -> np.ndarray:
        """Fold in one epoch of capacity telemetry.

        Args:
            plc_rates: reported per-extender PLC capacity (Mbps); may
                contain NaN/inf (that is the point).
            carrying_traffic: per-extender flag — does the extender
                currently serve at least one user?  A zero (or
                negative) capacity report is only damning while the
                extender demonstrably carries traffic.

        Returns:
            The updated quarantine mask (a copy).
        """
        rates = np.asarray(plc_rates, dtype=float).ravel()
        if rates.shape[0] != self.n_extenders:
            raise ValueError("plc_rates must cover every extender")
        if carrying_traffic is None:
            traffic = np.zeros(self.n_extenders, dtype=bool)
        else:
            traffic = np.asarray(carrying_traffic, dtype=bool).ravel()
            if traffic.shape[0] != self.n_extenders:
                raise ValueError(
                    "carrying_traffic must cover every extender")

        for j in range(self.n_extenders):
            reason = self._suspect_reason(j, float(rates[j]),
                                          bool(traffic[j]))
            if self._quarantined[j]:
                if reason is None:
                    self._clean_streak[j] += 1
                    if self._clean_streak[j] >= self.probation_epochs:
                        self._quarantined[j] = False
                        self._clean_streak[j] = 0
                        self._flap_count[j] = 0
                        self.events.append(HealthEvent(
                            epoch=self.epoch, extender=j,
                            event="readmit",
                            reason="probation-complete"))
                else:
                    self._clean_streak[j] = 0
            elif reason is not None:
                if np.count_nonzero(~self._quarantined) <= 1:
                    self.events.append(HealthEvent(
                        epoch=self.epoch, extender=j,
                        event="quarantine-skipped", reason=reason))
                else:
                    self._quarantined[j] = True
                    self._clean_streak[j] = 0
                    self.events.append(HealthEvent(
                        epoch=self.epoch, extender=j,
                        event="quarantine", reason=reason))
            if np.isfinite(rates[j]):
                self._last_seen[j] = float(rates[j])
                # Only a *clean* observation may become the last-known-
                # good fallback.  A damning one (zero capacity while the
                # extender demonstrably carries traffic, or a flapping
                # epoch) passes the ``>= 0`` test yet is exactly the
                # reading quarantine distrusts; folding it in would let
                # ``effective_rates`` starve the extender with its own
                # indictment long after telemetry recovers.
                if rates[j] >= 0 and reason is None:
                    self._last_good[j] = float(rates[j])
        self.epoch += 1
        return self.quarantined

    def _suspect_reason(self, j: int, rate: float,
                        traffic: bool) -> Optional[str]:
        """Why this epoch's observation is suspect (None = clean).

        Also advances the per-extender flap counter: a finite
        observation swinging more than ``flap_band`` (relative to the
        larger of the two values) against the previous finite
        observation is a strike; a consistent observation resets the
        counter.
        """
        if not np.isfinite(rate):
            return "nonfinite-capacity"
        if rate <= 0 and traffic:
            self._flap_count[j] = 0
            return "zero-capacity-under-traffic"
        prev = self._last_seen[j]
        if np.isfinite(prev):
            scale = max(abs(prev), abs(rate), _EPS)
            if abs(rate - prev) > self.flap_band * scale:
                self._flap_count[j] += 1
            else:
                self._flap_count[j] = 0
        if self._flap_count[j] >= self.flap_strikes:
            return "capacity-flapping"
        return None
