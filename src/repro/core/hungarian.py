"""From-scratch rectangular assignment solver (Hungarian method family).

Phase I of WOLT (Theorem 2) maps the relaxed Problem 1 onto a linear
assignment problem: pick exactly one user per extender so that the sum of
task utilities ``u_ij = min(c_j/|A|, r_ij)`` is maximized.  The paper
solves it with the Hungarian algorithm in ``O(|A|^3)``.

This module implements the shortest-augmenting-path variant of the
Hungarian method (Jonker-Volgenant style) for *rectangular* cost matrices,
without relying on :func:`scipy.optimize.linear_sum_assignment` — although
the test-suite cross-checks the two on random instances.

The solver minimizes cost; :func:`solve_assignment` exposes both
orientations through a ``maximize`` flag and understands forbidden pairs
(``+inf`` cost / ``-inf`` utility).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["solve_assignment", "InfeasibleAssignmentError"]


class InfeasibleAssignmentError(ValueError):
    """Raised when no complete matching avoids forbidden pairs."""


def solve_assignment(weights: np.ndarray,
                     maximize: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the rectangular linear assignment problem.

    Every column (task) of the smaller dimension is matched to a distinct
    row (agent); with an ``n x m`` matrix, ``min(n, m)`` pairs are
    produced.

    Args:
        weights: 2-D matrix of utilities (``maximize=True``) or costs
            (``maximize=False``).  ``-inf`` utility / ``+inf`` cost marks a
            forbidden pair; NaN is rejected.
        maximize: orientation of the objective.

    Returns:
        ``(rows, cols)`` index arrays of the matched pairs, sorted by
        column when the matrix is tall (more rows than columns) and by row
        otherwise — mirroring scipy's convention of sorting by the first
        axis of the *untransposed* problem.

    Raises:
        InfeasibleAssignmentError: if no complete matching exists.
        ValueError: on NaN entries or empty input.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.size == 0:
        raise ValueError("weights must be a non-empty 2-D matrix")
    if np.any(np.isnan(w)):
        raise ValueError("weights must not contain NaN")

    cost = -w if maximize else w.copy()
    forbidden = np.isinf(cost) & (cost > 0)
    if maximize and np.any(np.isinf(cost) & (cost < 0)):
        raise ValueError("utilities must not be +inf")
    if not maximize and np.any(np.isinf(cost) & (cost < 0)):
        raise ValueError("costs must not be -inf")

    finite = cost[~forbidden]
    if finite.size == 0:
        raise InfeasibleAssignmentError("all pairs are forbidden")
    # Replace forbidden entries by a cost so large they are never chosen
    # unless unavoidable (detected afterwards).
    span = float(finite.max() - finite.min()) + 1.0
    big = float(finite.max()) + span * (max(cost.shape) + 1)
    cost = np.where(forbidden, big, cost)

    transposed = cost.shape[0] > cost.shape[1]
    if transposed:
        cost = cost.T
        forbidden_t = forbidden.T
    else:
        forbidden_t = forbidden

    row4col, col4row = _shortest_path_assignment(cost)

    rows = np.arange(cost.shape[0])
    cols = col4row
    if np.any(forbidden_t[rows, cols]):
        raise InfeasibleAssignmentError(
            "no complete matching avoids the forbidden pairs")
    if transposed:
        order = np.argsort(cols)
        return cols[order], rows[order]
    return rows, cols


def _shortest_path_assignment(cost: np.ndarray
                              ) -> Tuple[np.ndarray, np.ndarray]:
    """Jonker-Volgenant successive shortest augmenting paths.

    Expects ``n_rows <= n_cols``; matches every row.  Returns
    ``(row4col, col4row)`` where ``row4col[j]`` is the row matched to
    column ``j`` (or -1) and ``col4row[i]`` the column matched to row
    ``i``.
    """
    n_rows, n_cols = cost.shape
    u = np.zeros(n_rows)  # row duals
    v = np.zeros(n_cols)  # column duals
    col4row = np.full(n_rows, -1, dtype=int)
    row4col = np.full(n_cols, -1, dtype=int)

    for cur_row in range(n_rows):
        shortest = np.full(n_cols, np.inf)
        pred_row = np.full(n_cols, -1, dtype=int)
        scanned_rows = np.zeros(n_rows, dtype=bool)
        scanned_cols = np.zeros(n_cols, dtype=bool)
        lowest = 0.0
        sink = -1
        i = cur_row
        while sink == -1:
            scanned_rows[i] = True
            slack = lowest + cost[i] - u[i] - v
            improve = ~scanned_cols & (slack < shortest)
            shortest[improve] = slack[improve]
            pred_row[improve] = i
            open_cols = np.flatnonzero(~scanned_cols)
            j = open_cols[np.argmin(shortest[open_cols])]
            lowest = shortest[j]
            if np.isinf(lowest):  # pragma: no cover - guarded by `big`
                raise InfeasibleAssignmentError("matching cannot be extended")
            scanned_cols[j] = True
            if row4col[j] == -1:
                sink = j
            else:
                i = row4col[j]
        # Dual updates keep reduced costs non-negative.
        u[cur_row] += lowest
        others = scanned_rows.copy()
        others[cur_row] = False
        for i2 in np.flatnonzero(others):
            u[i2] += lowest - shortest[col4row[i2]]
        v[scanned_cols] -= lowest - shortest[scanned_cols]
        # Augment along the alternating path back to cur_row.
        j = sink
        while True:
            i2 = pred_row[j]
            row4col[j] = i2
            col4row[i2], j = j, col4row[i2]
            if i2 == cur_row:
                break
    return row4col, col4row
