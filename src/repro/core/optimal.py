"""Exhaustive optimal association for small instances.

Problem 1 is NP-hard (Theorem 1), so the paper only reports optimal
assignments on toy scenarios (Fig. 3).  This module provides a brute-force
search with feasibility pruning, used to (a) reproduce the Fig. 3 case
study and (b) certify WOLT's solutions on randomized small instances in
the test suite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..net.engine import evaluate_batch
from .problem import Scenario

__all__ = ["OptimalResult", "brute_force_optimal", "search_space_size"]

#: Refuse to enumerate spaces larger than this without an explicit limit.
DEFAULT_MAX_COMBINATIONS = 2_000_000

#: Candidate assignments scored per batched engine call.
BATCH_CHUNK = 1024


@dataclass(frozen=True)
class OptimalResult:
    """Certified optimum of a small Problem-1 instance.

    Attributes:
        assignment: an optimal complete assignment.
        aggregate_throughput: its aggregate end-to-end throughput (Mbps).
        explored: number of complete assignments evaluated.
    """

    assignment: np.ndarray
    aggregate_throughput: float  # woltlint: disable=W005 — established result API; value is Mbps
    explored: int


def search_space_size(scenario: Scenario) -> int:
    """Number of complete assignments respecting reachability."""
    size = 1
    for user in range(scenario.n_users):
        size *= max(len(scenario.reachable(user)), 1)
    return size


def _candidate_assignments(scenario: Scenario) -> Iterator[np.ndarray]:
    choices = [scenario.reachable(user).tolist()
               for user in range(scenario.n_users)]
    for combo in itertools.product(*choices):
        yield np.asarray(combo, dtype=int)


def brute_force_optimal(scenario: Scenario,
                        plc_mode: str = "redistribute",
                        max_combinations: Optional[int] = None
                        ) -> OptimalResult:
    """Exhaustively find the throughput-optimal complete assignment.

    Args:
        scenario: the network snapshot (small: the search is
            ``prod_i |reachable(i)|``).
        plc_mode: PLC sharing law during evaluation.
        max_combinations: override the safety cap on search-space size.

    Returns:
        An :class:`OptimalResult` certificate.

    Raises:
        ValueError: if the search space exceeds the cap, or some user has
            no reachable extender.
    """
    cap = max_combinations or DEFAULT_MAX_COMBINATIONS
    space = search_space_size(scenario)
    if space > cap:
        raise ValueError(
            f"search space of {space} assignments exceeds the cap of {cap}")
    for user in range(scenario.n_users):
        if len(scenario.reachable(user)) == 0:
            raise ValueError(f"user {user} has no reachable extender")

    caps = scenario.capacities
    best_assignment = None
    best_value = -np.inf
    explored = 0
    chunk = []
    # Feasible candidates are scored in batched chunks: one vectorized
    # engine call per BATCH_CHUNK assignments instead of one scalar call
    # per assignment.  Within a chunk the first-occurrence argmax matches
    # the strict ``>`` scan of the per-assignment loop.
    def flush() -> None:
        nonlocal best_assignment, best_value, explored
        if not chunk:
            return
        batch = np.asarray(chunk, dtype=int)
        values = evaluate_batch(scenario, batch,
                                plc_mode=plc_mode).aggregates
        explored += batch.shape[0]
        k = int(np.argmax(values))
        if values[k] > best_value:
            best_value = float(values[k])
            best_assignment = batch[k].copy()
        chunk.clear()

    for assignment in _candidate_assignments(scenario):
        if caps is not None:
            counts = np.bincount(assignment, minlength=scenario.n_extenders)
            if np.any(counts > caps):
                continue
        chunk.append(assignment)
        if len(chunk) >= BATCH_CHUNK:
            flush()
    flush()
    if best_assignment is None:
        raise ValueError("no capacity-feasible complete assignment exists")
    return OptimalResult(assignment=best_assignment,
                         aggregate_throughput=float(best_value),
                         explored=explored)
