"""The Theorem-1 NP-hardness reduction, made executable.

Theorem 1 of the paper proves Problem 1 NP-hard by reducing the
PARTITION problem to a family of Problem-1 instances with two extenders
of unbounded PLC rate.  The construction in the proof uses negative
"rates", which is a formal device; the *executable* essence is the
equivalence it rests on:

    maximizing  |N1| / sum_{i in N1} a_i  +  |N2| / sum_{i in N2} a_i
    over balanced bipartitions of positive weights is achieved when the
    two sides' weight sums are as equal as possible,

where each user's "airtime" ``a_i = 1/r_i`` plays the role of a
PARTITION weight.  This module builds that bridge in both directions:

* :func:`partition_to_scenario` encodes a PARTITION instance as a
  two-extender Problem-1 scenario whose *airtime-balanced* optimal
  association corresponds to an optimal partition;
* :func:`balanced_partition_value` recovers the partition imbalance
  from an association;
* :func:`solve_partition_by_association` runs the reduction end to end
  with the brute-force Problem-1 solver on small instances.

It exists to *test* the hardness construction, and as documentation of
why no polynomial exact algorithm should be expected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import itertools

import numpy as np

from .problem import Scenario

__all__ = ["partition_to_scenario", "balanced_partition_value",
           "solve_partition_by_association", "PartitionResult"]

#: PLC rate standing in for the proof's "very good" (infinite) links.
_HUGE_PLC_RATE = 1e9


def partition_to_scenario(weights: Sequence[float]) -> Scenario:
    """Encode a PARTITION instance as a two-extender scenario.

    Each element of weight ``w_i`` becomes a user whose WiFi *airtime*
    per bit is ``w_i`` toward both extenders (rate ``1/w_i``); both
    extenders have effectively unbounded PLC backhaul, so Problem 1's
    objective reduces to the pure WiFi term the proof of Theorem 1
    analyzes.
    """
    w = np.asarray(list(weights), dtype=float)
    if w.size < 2:
        raise ValueError("PARTITION needs at least two weights")
    if np.any(w <= 0):
        raise ValueError("weights must be positive")
    rates = np.repeat((1.0 / w)[:, np.newaxis], 2, axis=1)
    return Scenario(wifi_rates=rates,
                    plc_rates=np.array([_HUGE_PLC_RATE, _HUGE_PLC_RATE]))


def balanced_partition_value(weights: Sequence[float],
                             assignment: Sequence[int]) -> float:
    """Imbalance ``|sum(side 0) - sum(side 1)|`` of an association."""
    w = np.asarray(list(weights), dtype=float)
    assign = np.asarray(list(assignment), dtype=int)
    if assign.shape != w.shape:
        raise ValueError("one side per weight is required")
    if not set(np.unique(assign)) <= {0, 1}:
        raise ValueError("assignment must be binary (two extenders)")
    side0 = float(w[assign == 0].sum())
    return abs(side0 - (float(w.sum()) - side0))


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of solving PARTITION through Problem 1.

    Attributes:
        assignment: side (extender) of each element.
        imbalance: ``|W0 - W1|`` of the produced partition.
        is_perfect: the instance admits — and we found — a perfect
            (zero-imbalance) balanced partition.
    """

    assignment: np.ndarray
    imbalance: float
    is_perfect: bool


def solve_partition_by_association(weights: Sequence[float]
                                   ) -> PartitionResult:
    """Solve PARTITION on a small instance via Problem-1 associations.

    Following the proof of Theorem 1: padding each side with zero-weight
    dummy users equalizes the member counts, after which the Problem-1
    objective under the reduction is ``C/W0 + C/W1`` for a constant
    ``C`` — a convex function of the side weight ``W0`` whose *minimum*
    sits at the balanced split ``W0 = W/2``.  (The proof's negative
    rates turn Problem 1's maximization into exactly this minimization;
    we work with positive airtimes and minimize directly over every
    dummy-padded split.)  Exponential, as it must be.
    """
    w = np.asarray(list(weights), dtype=float)
    if w.size < 2:
        raise ValueError("PARTITION needs at least two weights")
    if np.any(w <= 0):
        raise ValueError("weights must be positive")
    if w.size > 20:
        raise ValueError("instance too large for the exact reduction")
    best_assignment = None
    best_objective = np.inf
    n = w.size
    for k in range(1, n):
        for side0 in itertools.combinations(range(n), k):
            assign = np.ones(n, dtype=int)
            assign[list(side0)] = 0
            w0 = float(w[assign == 0].sum())
            w1 = float(w.sum()) - w0
            # Dummy-padded Problem-1 objective (the constant C divides
            # out): minimized at the weight-balanced split.
            objective = 1.0 / w0 + 1.0 / w1
            if objective < best_objective:
                best_objective = objective
                best_assignment = assign
    imbalance = balanced_partition_value(w, best_assignment)
    # A perfect partition is only detectable when the total is even
    # (for integer weights); report exactness by imbalance.
    return PartitionResult(assignment=best_assignment,
                           imbalance=imbalance,
                           is_perfect=bool(imbalance < 1e-9))
