"""Phase I of WOLT: the relaxed assignment problem (Theorem 2).

Phase I solves Problem 1 with constraint (7) relaxed (not every user needs
to be connected) and constraint (8) tightened to "at least one user per
extender".  Lemma 2 shows an optimum of this relaxation attaches *exactly
one* user to each extender, and Theorem 2 shows the relaxation is then an
ordinary linear assignment problem with task utilities

    u_ij = min(c_j / |A|, r_ij)

— the end-to-end rate user ``i`` would see alone on extender ``j`` when
all ``|A|`` extenders time-share the PLC backhaul equally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from .hungarian import InfeasibleAssignmentError, solve_assignment
from .problem import MIN_USABLE_RATE, UNASSIGNED, Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .guard import DecisionGuard

__all__ = ["phase1_utilities", "Phase1Result", "solve_phase1"]


def phase1_utilities(scenario: Scenario) -> np.ndarray:
    """Task-utility matrix ``u_ij = min(c_j/|A|, r_ij)`` (Alg. 1, l. 1-3).

    Unreachable (user, extender) pairs get ``-inf`` so the assignment
    solver never selects them.
    """
    n_ext = scenario.n_extenders
    fair_plc = scenario.plc_rates / max(n_ext, 1)
    utilities = np.minimum(fair_plc[np.newaxis, :], scenario.wifi_rates)
    return np.where(scenario.wifi_rates > MIN_USABLE_RATE, utilities, -np.inf)


@dataclass(frozen=True)
class Phase1Result:
    """Outcome of Phase I.

    Attributes:
        assignment: length-``n_users`` array; the Phase-I users carry their
            extender index, everyone else is :data:`UNASSIGNED`.
        anchored_users: the set ``U1`` — indices of users placed in Phase I.
        utilities: the task-utility matrix used.
        objective: sum of utilities of the selected pairs (the relaxed
            Problem-1 optimum under Lemma 2).
        unmatched_extenders: extenders left without a Phase-I user, which
            only happens when there are fewer users than extenders or when
            reachability makes a perfect extender matching impossible.
    """

    assignment: np.ndarray
    anchored_users: np.ndarray
    utilities: np.ndarray
    objective: float
    unmatched_extenders: np.ndarray


def solve_phase1(scenario: Scenario,
                 utilities: Optional[np.ndarray] = None,
                 guard: "Optional[DecisionGuard]" = None) -> Phase1Result:
    """Solve the Phase-I assignment problem.

    One distinct user is matched to every extender (when user supply and
    reachability allow) so as to maximize total utility, using the
    from-scratch Hungarian solver.

    Args:
        scenario: the network snapshot.
        utilities: optional pre-computed utility matrix (defaults to
            :func:`phase1_utilities`).
        guard: optional :class:`repro.core.guard.DecisionGuard`; the
            returned artifact is validated (and, if needed, repaired)
            against Lemma 2 via
            :meth:`~repro.core.guard.DecisionGuard.repair_phase1`.  On
            a clean artifact this is a no-op returning the same object.

    Returns:
        A :class:`Phase1Result`.
    """
    if utilities is None:
        utilities = phase1_utilities(scenario)
    utilities = np.asarray(utilities, dtype=float)
    if utilities.shape != (scenario.n_users, scenario.n_extenders):
        raise ValueError("utilities must be a (n_users, n_extenders) matrix")

    assignment = np.full(scenario.n_users, UNASSIGNED, dtype=int)
    candidate_ext = np.flatnonzero(np.any(np.isfinite(utilities), axis=0))
    if candidate_ext.size == 0 or scenario.n_users == 0:
        result = Phase1Result(assignment=assignment,
                              anchored_users=np.empty(0, dtype=int),
                              utilities=utilities, objective=0.0,
                              unmatched_extenders=np.arange(
                                  scenario.n_extenders))
        if guard is not None:
            result, _ = guard.repair_phase1(scenario, result)
        return result

    sub = utilities[:, candidate_ext]
    try:
        rows, cols = solve_assignment(sub, maximize=True)
    except InfeasibleAssignmentError:
        # Reachability prevents a perfect matching on all candidate
        # extenders (a Hall-condition violation).  Restrict to a maximum
        # matchable subset of extenders and retry.
        matchable = _max_matchable_extenders(sub)
        candidate_ext = candidate_ext[matchable]
        sub = utilities[:, candidate_ext]
        rows, cols = solve_assignment(sub, maximize=True)

    users = rows
    extenders = candidate_ext[cols]
    assignment[users] = extenders
    objective = float(utilities[users, extenders].sum())
    matched_mask = np.zeros(scenario.n_extenders, dtype=bool)
    matched_mask[extenders] = True
    result = Phase1Result(assignment=assignment,
                          anchored_users=np.sort(users),
                          utilities=utilities,
                          objective=objective,
                          unmatched_extenders=np.flatnonzero(~matched_mask))
    if guard is not None:
        result, _ = guard.repair_phase1(scenario, result)
    return result


def _max_matchable_extenders(utilities: np.ndarray) -> np.ndarray:
    """Columns that admit a simultaneous matching to distinct rows.

    Uses Hopcroft-Karp maximum bipartite matching on the feasibility graph
    (finite-utility pairs) and returns the matched column indices.
    """
    import networkx as nx

    n_users, n_ext = utilities.shape
    graph = nx.Graph()
    user_nodes = [("u", i) for i in range(n_users)]
    ext_nodes = [("e", j) for j in range(n_ext)]
    graph.add_nodes_from(user_nodes, bipartite=0)
    graph.add_nodes_from(ext_nodes, bipartite=1)
    for i in range(n_users):
        for j in np.flatnonzero(np.isfinite(utilities[i])):
            graph.add_edge(("u", i), ("e", int(j)))
    matching = nx.bipartite.maximum_matching(graph, top_nodes=user_nodes)
    matched = sorted(j for kind, j in matching if kind == "e")
    return np.asarray(matched, dtype=int)
