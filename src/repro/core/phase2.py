"""Phase II of WOLT: attaching the remaining users (Problem 2).

With the Phase-I anchors ``U1`` fixed, Problem 2 attaches the remaining
users ``U2 = U \\ U1`` so as to maximize the *WiFi-side* aggregate
throughput ``sum_j T_WiFi_j`` (the PLC backhaul was already saturated by
Phase I, so its grants barely move).  Theorem 3 proves the continuous
relaxation of Problem 2 has integral optima, so no rounding machinery is
needed.

Two solvers are provided:

* :func:`solve_phase2` (default) — a deterministic combinatorial solver
  that operationalizes the shift argument in the proof of Theorem 3:
  users are inserted by best marginal WiFi-throughput gain, then a
  best-improvement local search relocates single users until no single
  relocation raises the objective.  Every iterate is integral.
* :func:`solve_phase2_continuous` — the paper's "numerical nonlinear
  program" route: the smooth fractional extension of Problem 2 is solved
  with SLSQP (an interior/SQP method, stopping when the objective
  improvement drops below ``1e-5`` as in §IV-B), and the solution is
  snapped to the nearest integral point.  Used to cross-check Theorem 3
  empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..net.engine import _record
from .problem import MIN_USABLE_RATE, UNASSIGNED, Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .guard import DecisionGuard

__all__ = ["Phase2Result", "solve_phase2", "solve_phase2_continuous",
           "wifi_objective"]

#: Stopping threshold for the numerical solver, as quoted in §IV-B.
SOLVER_TOLERANCE = 1e-5


@dataclass(frozen=True)
class Phase2Result:
    """Outcome of Phase II.

    Attributes:
        assignment: complete per-user extender indices (Phase-I anchors
            preserved, Phase-II users filled in).
        objective: the Problem-2 objective ``sum_j T_WiFi_j`` (Mbps).
        iterations: local-search relocation rounds (combinatorial solver)
            or SQP iterations (continuous solver).
        was_integral: True when the raw solver output was already
            integral (always True for the combinatorial solver).
    """

    assignment: np.ndarray
    objective: float
    iterations: int
    was_integral: bool


def wifi_objective(scenario: Scenario, assignment: Sequence[int]) -> float:
    """The Problem-2 objective: total WiFi throughput across extenders."""
    from ..wifi.sharing import cell_throughputs

    return float(cell_throughputs(scenario.wifi_rates, assignment,
                                  scenario.n_extenders).sum())


class _CellState:
    """Incremental per-extender WiFi state for fast marginal evaluation."""

    def __init__(self, scenario: Scenario, assignment: np.ndarray) -> None:
        self.scenario = scenario
        n_ext = scenario.n_extenders
        self.counts = np.zeros(n_ext, dtype=int)
        self.inv_rate_sums = np.zeros(n_ext, dtype=float)
        for i in np.flatnonzero(assignment != UNASSIGNED):
            j = assignment[i]
            self.counts[j] += 1
            self.inv_rate_sums[j] += 1.0 / scenario.wifi_rates[i, j]

    def throughput(self, j: int) -> float:
        if self.counts[j] == 0:
            return 0.0
        return self.counts[j] / self.inv_rate_sums[j]

    def total(self) -> float:
        busy = self.counts > 0
        return float((self.counts[busy] / self.inv_rate_sums[busy]).sum())

    def gain_of_adding(self, user: int, j: int) -> float:
        """Change in ``sum_j T_WiFi_j`` if ``user`` joins extender ``j``."""
        _record(scalar=1)  # one candidate scored the scalar way
        r = self.scenario.wifi_rates[user, j]
        if r <= MIN_USABLE_RATE:
            return -np.inf
        new = (self.counts[j] + 1) / (self.inv_rate_sums[j] + 1.0 / r)
        return new - self.throughput(j)

    def add(self, user: int, j: int) -> None:
        self.counts[j] += 1
        self.inv_rate_sums[j] += 1.0 / self.scenario.wifi_rates[user, j]

    def remove(self, user: int, j: int) -> None:
        self.counts[j] -= 1
        self.inv_rate_sums[j] -= 1.0 / self.scenario.wifi_rates[user, j]
        if self.counts[j] == 0:
            self.inv_rate_sums[j] = 0.0

    def room(self, j: int) -> bool:
        return self.counts[j] < self.scenario.capacity_of(j)


class _BatchGains:
    """Vectorized marginal-gain evaluation against a :class:`_CellState`.

    Precomputes the inverse-rate matrix and reachability mask once, then
    scores whole candidate batches (every pending user x every extender)
    with a couple of numpy sweeps.  The arithmetic is elementwise
    identical to :meth:`_CellState.gain_of_adding`, so the vectorized
    search makes bit-identical decisions to the scalar reference loop.
    """

    def __init__(self, scenario: Scenario) -> None:
        rates = scenario.wifi_rates
        self.reach = rates > MIN_USABLE_RATE
        self.inv_rates = np.zeros_like(rates)
        self.inv_rates[self.reach] = 1.0 / rates[self.reach]
        if scenario.capacities is None:
            self.caps = np.full(scenario.n_extenders, np.inf)
        else:
            self.caps = scenario.capacities.astype(float)

    def cell_throughputs(self, state: _CellState) -> np.ndarray:
        out = np.zeros(state.counts.shape[0])
        busy = state.counts > 0
        out[busy] = state.counts[busy] / state.inv_rate_sums[busy]
        return out

    def gains(self, state: _CellState, users: np.ndarray) -> np.ndarray:
        """``(len(users), n_extenders)`` matrix of insertion gains.

        Unreachable pairs are ``-inf``; capacity is NOT masked here (the
        callers need different room semantics).
        """
        _record(batch=1, rows=int(users.size) * self.reach.shape[1])
        tput = self.cell_throughputs(state)
        with np.errstate(divide="ignore", invalid="ignore"):
            new = ((state.counts[np.newaxis, :] + 1)
                   / (state.inv_rate_sums[np.newaxis, :]
                      + self.inv_rates[users]))
        return np.where(self.reach[users], new - tput[np.newaxis, :],
                        -np.inf)

    def room(self, state: _CellState) -> np.ndarray:
        return state.counts < self.caps


def _greedy_insertion_batch(scenario: Scenario, state: _CellState,
                            gains: _BatchGains, assignment: np.ndarray,
                            remaining: "List[int]",
                            drop_unplaceable: bool = False) -> None:
    """Batched greedy insertion (vectorized candidate scoring).

    Each iteration scores every (pending user, extender) candidate in one
    vectorized pass and applies the row-major argmax — the same pair the
    scalar first-strictly-greater scan selects.  With
    ``drop_unplaceable`` (the guarded mode) insertion stops when no
    feasible pair remains, leaving the leftovers UNASSIGNED for the
    guard to report, instead of raising.
    """
    while remaining:
        rem = np.asarray(remaining, dtype=int)
        batch = gains.gains(state, rem)
        batch = np.where(gains.room(state)[np.newaxis, :], batch, -np.inf)
        flat = int(np.argmax(batch))
        if np.isneginf(batch.flat[flat]):
            if drop_unplaceable:
                break
            raise ValueError(
                f"users {remaining} cannot be attached to any extender")
        user = int(rem[flat // scenario.n_extenders])
        j = flat % scenario.n_extenders
        state.add(user, j)
        assignment[user] = j
        remaining.remove(user)


def _greedy_insertion_delta(scenario: Scenario, state: _CellState,
                            gains: _BatchGains, assignment: np.ndarray,
                            remaining: "List[int]",
                            drop_unplaceable: bool = False) -> None:
    """Delta-maintained greedy insertion (incremental gains matrix).

    Placing a user on extender ``j`` only changes the membership of
    cell ``j``, so only *column* ``j`` of the insertion-gains matrix
    can change — every other candidate's marginal gain is untouched.
    This variant pays the full ``(pending x extenders)`` sweep once,
    then refreshes a single column per placement: ``O(U + U·E_argmax)``
    per iteration instead of rebuilding the whole matrix.

    The refreshed column uses elementwise-identical arithmetic to
    :meth:`_BatchGains.gains`, and placed rows are masked to ``-inf``
    (row-major argmax then selects the same pair the batched rebuild
    would), so the decisions are bit-identical to
    :func:`_greedy_insertion_batch` — the differential test wall
    asserts this on random scenarios.
    """
    if not remaining:
        return
    n_ext = scenario.n_extenders
    rem = np.asarray(remaining, dtype=int)
    matrix = np.full((scenario.n_users, n_ext), -np.inf)
    matrix[rem] = np.where(gains.room(state)[np.newaxis, :],
                           gains.gains(state, rem), -np.inf)
    while remaining:
        flat = int(np.argmax(matrix))
        if np.isneginf(matrix.flat[flat]):
            if drop_unplaceable:
                break
            raise ValueError(
                f"users {remaining} cannot be attached to any extender")
        user, j = divmod(flat, n_ext)
        state.add(user, j)
        assignment[user] = j
        remaining.remove(user)
        matrix[user, :] = -np.inf
        pending = np.asarray(remaining, dtype=int)
        if pending.size == 0:
            break
        # Refresh only column j: the touched cell's occupancy changed.
        _record(delta=int(pending.size))
        if state.counts[j] < gains.caps[j]:
            tput_j = state.throughput(j)
            with np.errstate(divide="ignore", invalid="ignore"):
                new_col = ((state.counts[j] + 1)
                           / (state.inv_rate_sums[j]
                              + gains.inv_rates[pending, j]))
            matrix[pending, j] = np.where(gains.reach[pending, j],
                                          new_col - tput_j, -np.inf)
        else:
            matrix[pending, j] = -np.inf


def _greedy_insertion_scalar(scenario: Scenario, state: _CellState,
                             assignment: np.ndarray,
                             remaining: "List[int]",
                             drop_unplaceable: bool = False) -> None:
    """Reference scalar greedy insertion (one engine call per candidate)."""
    while remaining:
        best = None  # (gain, user, extender)
        for user in remaining:
            for j in scenario.reachable(user):
                if not state.room(j):
                    continue
                gain = state.gain_of_adding(user, int(j))
                if best is None or gain > best[0]:
                    best = (gain, user, int(j))
        if best is None:
            if drop_unplaceable:
                break
            raise ValueError(
                f"users {remaining} cannot be attached to any extender")
        _, user, j = best
        state.add(user, j)
        assignment[user] = j
        remaining.remove(user)


def _relocate_batch(scenario: Scenario, state: _CellState,
                    gains: _BatchGains, assignment: np.ndarray,
                    user: int) -> int:
    """Best relocation target for one user, gains scored in one batch.

    Replicates the scalar hysteresis scan (ascending extenders, strict
    ``> best + 1e-12`` improvement) over a vectorized gain vector.
    """
    cur = int(assignment[user])
    state.remove(user, cur)
    g = gains.gains(state, np.asarray([user]))[0]
    room = gains.room(state)
    best_j, best_gain = cur, g[cur]
    for j in np.flatnonzero(gains.reach[user]):
        j = int(j)
        if j == cur or not room[j]:
            continue
        if g[j] > best_gain + 1e-12:
            best_j, best_gain = j, g[j]
    state.add(user, best_j)
    return best_j


def _relocate_scalar(scenario: Scenario, state: _CellState,
                     assignment: np.ndarray, user: int) -> int:
    """Reference scalar relocation scan."""
    cur = int(assignment[user])
    state.remove(user, cur)
    base_gain = state.gain_of_adding(user, cur)
    best_j, best_gain = cur, base_gain
    for j in scenario.reachable(user):
        j = int(j)
        if j == cur or not state.room(j):
            continue
        gain = state.gain_of_adding(user, j)
        if gain > best_gain + 1e-12:
            best_j, best_gain = j, gain
    state.add(user, best_j)
    return best_j


def solve_phase2(scenario: Scenario,
                 phase1_assignment: Sequence[int],
                 max_rounds: int = 100,
                 vectorized: bool = True,
                 delta: bool = True,
                 warm_start: Optional[Sequence[int]] = None,
                 guard: "Optional[DecisionGuard]" = None) -> Phase2Result:
    """Combinatorial Phase-II solver (greedy insertion + local search).

    Args:
        scenario: the network snapshot.
        phase1_assignment: per-user extender indices with the ``U1``
            anchors set and everyone else :data:`UNASSIGNED`.
        max_rounds: safety cap on local-search rounds.
        vectorized: score candidate batches with numpy sweeps (the
            default).  ``False`` selects the scalar reference loops; both
            paths make bit-identical decisions (asserted by the
            test-suite) — the scalar path exists only as the differential
            oracle.
        delta: maintain the insertion-gains matrix incrementally,
            refreshing only the column a placement touches, instead of
            rebuilding the whole ``(pending x extenders)`` matrix per
            placement (default; requires ``vectorized``).  Decisions are
            bit-identical to the full rebuild — the differential wall in
            ``tests/test_delta_eval.py`` asserts it.  ``False`` selects
            the full-rebuild batch path as the differential oracle.
        warm_start: optional previous-epoch assignment used as the
            starting basis: each pending (non-anchor) user whose
            warm-start extender is still reachable and has room is
            pre-placed there; only the leftovers go through greedy
            insertion, and the local search then polishes from a
            near-solution instead of from scratch.  ``None`` (default)
            preserves today's cold-start behaviour exactly.
        guard: optional :class:`repro.core.guard.DecisionGuard`.  When
            set, invalid anchors are repaired instead of poisoning the
            search, unattachable users are left UNASSIGNED and reported
            instead of raising, and the final assignment is validated.
            On clean inputs the guarded result is bit-identical to the
            unguarded one.

    Returns:
        A :class:`Phase2Result` with a complete, integral assignment
        (guarded mode may leave genuinely unattachable users
        UNASSIGNED, reported on the guard).

    Raises:
        ValueError: if some user cannot be attached anywhere (no reachable
            extender with free capacity), i.e. constraint (7) cannot hold
            — only without a guard.
    """
    assignment = np.array(phase1_assignment, dtype=int)
    if assignment.shape[0] != scenario.n_users:
        raise ValueError("phase1_assignment length must equal n_users")
    if guard is not None:
        # Repair the incoming anchors before they poison _CellState
        # (an anchor on an unreachable extender divides by zero rate).
        assignment, _ = guard.repair_assignment(
            scenario, assignment, source="phase2-anchors",
            require_complete=False)
    anchors = assignment.copy()
    state = _CellState(scenario, assignment)
    remaining = list(np.flatnonzero(assignment == UNASSIGNED))
    if warm_start is not None:
        warm = np.asarray(warm_start, dtype=int)
        if warm.shape[0] != scenario.n_users:
            raise ValueError("warm_start length must equal n_users")
        # Pre-place pending users on their previous-epoch extender when
        # it is still viable; they stay movable for the local search.
        for user in list(remaining):
            j = int(warm[user])
            if (j == UNASSIGNED or j < 0 or j >= scenario.n_extenders
                    or scenario.wifi_rates[user, j] <= MIN_USABLE_RATE
                    or not state.room(j)):
                continue
            state.add(int(user), j)
            assignment[user] = j
            remaining.remove(user)
    gains = _BatchGains(scenario) if vectorized else None

    # Greedy insertion: repeatedly place the (user, extender) pair with the
    # largest marginal gain in total WiFi throughput.
    drop = guard is not None
    if vectorized and delta:
        _greedy_insertion_delta(scenario, state, gains, assignment,
                                remaining, drop_unplaceable=drop)
    elif vectorized:
        _greedy_insertion_batch(scenario, state, gains, assignment,
                                remaining, drop_unplaceable=drop)
    else:
        _greedy_insertion_scalar(scenario, state, assignment, remaining,
                                 drop_unplaceable=drop)

    # Local search over single relocations and pairwise swaps of U2 users
    # (the Phase-I anchors stay put, as the paper fixes U1).  Relocations
    # realize the shift argument of Theorem 3; swaps escape the
    # single-move local optima that pure shifting can get stuck in.
    # Users the guarded insertion could not place are not movable.
    movable = np.flatnonzero((anchors == UNASSIGNED)
                             & (assignment != UNASSIGNED))
    rounds = 0
    improved = True
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for user in movable:
            cur = assignment[user]
            if vectorized:
                best_j = _relocate_batch(scenario, state, gains,
                                         assignment, int(user))
            else:
                best_j = _relocate_scalar(scenario, state, assignment,
                                          int(user))
            assignment[user] = best_j
            if best_j != cur:
                improved = True
        if _try_swaps(scenario, state, assignment, movable):
            improved = True
    objective = state.total()
    if guard is not None:
        assignment, report = guard.repair_assignment(
            scenario, assignment, source="phase2", require_complete=True)
        if report.repaired_users:
            objective = wifi_objective(scenario, assignment)
    return Phase2Result(assignment=assignment, objective=objective,
                        iterations=rounds, was_integral=True)


def _try_swaps(scenario: Scenario, state: _CellState,
               assignment: np.ndarray, movable: np.ndarray) -> bool:
    """One first-improvement pass of pairwise extender swaps.

    Swapping users on different extenders keeps per-cell counts (and hence
    capacities) intact while exploring moves a single relocation cannot
    reach.  Returns True if any swap improved the objective.
    """
    improved = False
    for a_pos in range(movable.size):
        a = int(movable[a_pos])
        for b_pos in range(a_pos + 1, movable.size):
            b = int(movable[b_pos])
            ja, jb = int(assignment[a]), int(assignment[b])
            if ja == jb:
                continue
            ra_jb = scenario.wifi_rates[a, jb]
            rb_ja = scenario.wifi_rates[b, ja]
            if ra_jb <= MIN_USABLE_RATE or rb_ja <= MIN_USABLE_RATE:
                continue
            before = state.throughput(ja) + state.throughput(jb)
            state.remove(a, ja)
            state.remove(b, jb)
            state.add(a, jb)
            state.add(b, ja)
            after = state.throughput(ja) + state.throughput(jb)
            if after > before + 1e-12:
                assignment[a], assignment[b] = jb, ja
                improved = True
            else:
                state.remove(a, jb)
                state.remove(b, ja)
                state.add(a, ja)
                state.add(b, jb)
    return improved


def solve_phase2_continuous(scenario: Scenario,
                            phase1_assignment: Sequence[int],
                            tolerance: float = SOLVER_TOLERANCE,
                            max_iterations: int = 200,
                            rng: Optional[np.random.Generator] = None,
                            guard: "Optional[DecisionGuard]" = None
                            ) -> Phase2Result:
    """Numerical Phase-II solver on the fractional relaxation of Problem 2.

    Variables ``x_ij in [0, 1]`` for each Phase-II user and reachable
    extender, with the smooth objective

        sum_j (m_j + sum_i x_ij) / (D_j + sum_i x_ij / r_ij)

    where ``m_j`` and ``D_j`` account for the fixed Phase-I anchors.  The
    optimum is integral by Theorem 3; the returned assignment snaps each
    user to its largest ``x_ij`` and reports whether snapping was a no-op.
    With a ``guard``, invalid anchors are repaired up front and users
    with no reachable extender are left UNASSIGNED and reported instead
    of raising.
    """
    from scipy import optimize

    assignment = np.array(phase1_assignment, dtype=int)
    if guard is not None:
        assignment, _ = guard.repair_assignment(
            scenario, assignment, source="phase2-anchors",
            require_complete=False)
    pending = np.flatnonzero(assignment == UNASSIGNED)
    if guard is not None and pending.size:
        hears = np.array([scenario.reachable(int(u)).size > 0
                          for u in pending])
        pending = pending[hears]
    if pending.size == 0:
        result = Phase2Result(
            assignment=assignment,
            objective=wifi_objective(scenario, assignment),
            iterations=0, was_integral=True)
        return _finalize_continuous(scenario, result, guard)

    n_ext = scenario.n_extenders
    anchored = np.flatnonzero(assignment != UNASSIGNED)
    base_counts = np.zeros(n_ext)
    base_inv = np.zeros(n_ext)
    for i in anchored:
        j = assignment[i]
        base_counts[j] += 1.0
        base_inv[j] += 1.0 / scenario.wifi_rates[i, j]

    # Variable layout: one block of n_ext entries per pending user;
    # unreachable pairs are pinned to zero via bounds.
    n_vars = pending.size * n_ext
    rates = np.maximum(scenario.wifi_rates[pending], MIN_USABLE_RATE)
    reach = scenario.wifi_rates[pending] > MIN_USABLE_RATE
    for k, user in enumerate(pending):
        if not np.any(reach[k]):
            raise ValueError(f"user {int(user)} has no reachable extender")

    def unpack(x: np.ndarray) -> np.ndarray:
        return x.reshape(pending.size, n_ext)

    def objective(x: np.ndarray) -> float:
        xm = unpack(x)
        counts = base_counts + xm.sum(axis=0)
        inv = base_inv + (xm / rates).sum(axis=0)
        busy = counts > 1e-12
        return -float((counts[busy] / inv[busy]).sum())

    constraints = []
    for k in range(pending.size):
        sel = np.zeros(n_vars)
        sel[k * n_ext:(k + 1) * n_ext] = 1.0
        constraints.append({"type": "eq",
                            "fun": (lambda x, s=sel: float(s @ x) - 1.0),
                            "jac": (lambda x, s=sel: s)})
    bounds = [(0.0, 1.0 if reach[k, j] else 0.0)
              for k in range(pending.size) for j in range(n_ext)]

    # woltlint: disable=W010 — API default for ad-hoc direct calls; the
    # SLSQP warm start only perturbs x0, and callers on the worker path
    # pass a SeedSequence-derived generator.
    rng = rng or np.random.default_rng(0)
    x0 = np.zeros((pending.size, n_ext))
    for k in range(pending.size):
        opts = np.flatnonzero(reach[k])
        weights = rng.random(opts.size) + 0.5
        x0[k, opts] = weights / weights.sum()

    result = optimize.minimize(objective, x0.ravel(), method="SLSQP",
                               bounds=bounds, constraints=constraints,
                               options={"maxiter": max_iterations,
                                        "ftol": tolerance})
    xm = unpack(np.clip(result.x, 0.0, 1.0))
    xm = np.where(reach, xm, -np.inf)
    choice = np.argmax(xm, axis=1)
    largest = xm[np.arange(pending.size), choice]
    was_integral = bool(np.all(np.abs(largest - 1.0) < 1e-3))
    assignment[pending] = choice
    outcome = Phase2Result(assignment=assignment,
                           objective=wifi_objective(scenario, assignment),
                           iterations=int(result.nit),
                           was_integral=was_integral)
    return _finalize_continuous(scenario, outcome, guard)


def _finalize_continuous(scenario: Scenario, result: Phase2Result,
                         guard: "Optional[DecisionGuard]") -> Phase2Result:
    """Guarded post-validation of the continuous solver's snap."""
    if guard is None:
        return result
    assignment, report = guard.repair_assignment(
        scenario, result.assignment, source="phase2",
        require_complete=True)
    if not report.repaired_users:
        return result
    return Phase2Result(assignment=assignment,
                        objective=wifi_objective(scenario, assignment),
                        iterations=result.iterations,
                        was_integral=result.was_integral)
