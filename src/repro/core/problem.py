"""Data model for the PLC-WiFi user-assignment problem (Problem 1).

A :class:`Scenario` captures everything the association algorithms need:
the WiFi PHY rate matrix ``r_ij`` between every user and extender, the PLC
PHY rate ``c_j`` of every extender's backhaul link, and (optionally) the
per-extender user capacity ``B_j`` of constraint (8).

An *assignment* is represented as an integer array of length ``n_users``
whose entry is the extender index a user attaches to, or
:data:`UNASSIGNED` (-1) for a user not (yet) attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["UNASSIGNED", "Scenario", "validate_assignment",
           "validate_assignment_batch", "users_of"]

#: Sentinel extender index for an unattached user.
UNASSIGNED = -1

#: Rate below which a WiFi link is considered unusable (no association).
MIN_USABLE_RATE = 1e-9


@dataclass(frozen=True)
class Scenario:
    """A static snapshot of the PLC-WiFi network.

    Attributes:
        wifi_rates: ``(n_users, n_extenders)`` matrix of WiFi PHY rates
            ``r_ij`` in Mbps.  A non-positive entry marks an unreachable
            extender for that user (association forbidden).
        plc_rates: length-``n_extenders`` vector of PLC PHY rates ``c_j``
            in Mbps (the isolation throughput of each backhaul link).
        capacities: optional length-``n_extenders`` vector of the maximum
            number of users per extender (constraint (8), ``B_j``).  When
            omitted, extenders are uncapacitated.
        user_ids: optional stable identifiers for the users (defaults to
            ``0..n_users-1``); carried through dynamic simulations so that
            re-assignment accounting can track individuals.
    """

    wifi_rates: np.ndarray
    plc_rates: np.ndarray
    capacities: Optional[np.ndarray] = None
    user_ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        wifi = np.atleast_2d(np.asarray(self.wifi_rates, dtype=float))
        plc = np.asarray(self.plc_rates, dtype=float).ravel()
        object.__setattr__(self, "wifi_rates", wifi)
        object.__setattr__(self, "plc_rates", plc)
        if wifi.ndim != 2:
            raise ValueError("wifi_rates must be a 2-D matrix")
        if wifi.shape[1] != plc.shape[0]:
            raise ValueError(
                f"wifi_rates has {wifi.shape[1]} extender columns but "
                f"plc_rates has {plc.shape[0]} entries")
        if not np.all(np.isfinite(wifi)) or not np.all(np.isfinite(plc)):
            raise ValueError("rates must be finite (no NaN or inf)")
        if np.any(plc < 0):
            raise ValueError("PLC rates must be non-negative")
        if self.capacities is not None:
            caps = np.asarray(self.capacities, dtype=int).ravel()
            if caps.shape[0] != plc.shape[0]:
                raise ValueError("capacities must have one entry per extender")
            if np.any(caps < 0):
                raise ValueError("capacities must be non-negative")
            object.__setattr__(self, "capacities", caps)
        if self.user_ids is not None:
            ids = np.asarray(self.user_ids).ravel()
            if ids.shape[0] != wifi.shape[0]:
                raise ValueError("user_ids must have one entry per user")
            object.__setattr__(self, "user_ids", ids)

    @property
    def n_users(self) -> int:
        """Number of users ``|U|``."""
        return self.wifi_rates.shape[0]

    @property
    def n_extenders(self) -> int:
        """Number of extenders ``|A|``."""
        return self.plc_rates.shape[0]

    def reachable(self, user: int) -> np.ndarray:
        """Indices of the extenders user ``user`` can associate with."""
        return np.flatnonzero(self.wifi_rates[user] > MIN_USABLE_RATE)

    def capacity_of(self, extender: int) -> float:
        """User capacity ``B_j`` of an extender (``inf`` if uncapacitated)."""
        if self.capacities is None:
            return float("inf")
        return float(self.capacities[extender])

    def subset_users(self, users: Sequence[int]) -> "Scenario":
        """A scenario restricted to the given user indices (order kept)."""
        idx = np.asarray(users, dtype=int)
        ids = None if self.user_ids is None else self.user_ids[idx]
        return Scenario(wifi_rates=self.wifi_rates[idx],
                        plc_rates=self.plc_rates,
                        capacities=self.capacities,
                        user_ids=ids)

    def with_users(self, wifi_rows: np.ndarray,
                   user_ids: Optional[np.ndarray] = None) -> "Scenario":
        """A scenario with additional users appended."""
        rows = np.atleast_2d(np.asarray(wifi_rows, dtype=float))
        new_wifi = np.vstack([self.wifi_rates, rows])
        ids = None
        if self.user_ids is not None and user_ids is not None:
            ids = np.concatenate([self.user_ids, np.asarray(user_ids).ravel()])
        return Scenario(wifi_rates=new_wifi, plc_rates=self.plc_rates,
                        capacities=self.capacities, user_ids=ids)


def validate_assignment(scenario: Scenario,
                        assignment: Sequence[int],
                        require_complete: bool = True,
                        enforce_capacity: bool = True) -> np.ndarray:
    """Check an assignment against the constraints of Problem 1.

    Args:
        scenario: the network snapshot.
        assignment: per-user extender index (or :data:`UNASSIGNED`).
        require_complete: enforce constraint (7) — every user attached.
        enforce_capacity: enforce constraint (8) — at most ``B_j`` users
            per extender (only when the scenario defines capacities).

    Returns:
        The assignment as a validated integer numpy array.

    Raises:
        ValueError: on any constraint violation.
    """
    assign = np.asarray(assignment, dtype=int).ravel()
    if assign.shape[0] != scenario.n_users:
        raise ValueError(
            f"assignment has {assign.shape[0]} entries for "
            f"{scenario.n_users} users")
    bad = (assign != UNASSIGNED) & ((assign < 0) |
                                    (assign >= scenario.n_extenders))
    if np.any(bad):
        raise ValueError(f"extender index out of range for users "
                         f"{np.flatnonzero(bad).tolist()}")
    if require_complete and np.any(assign == UNASSIGNED):
        raise ValueError(
            f"constraint (7) violated: users "
            f"{np.flatnonzero(assign == UNASSIGNED).tolist()} unassigned")
    attached = assign != UNASSIGNED
    if np.any(attached):
        rates = scenario.wifi_rates[np.flatnonzero(attached),
                                    assign[attached]]
        if np.any(rates <= MIN_USABLE_RATE):
            bad_users = np.flatnonzero(attached)[rates <= MIN_USABLE_RATE]
            raise ValueError(f"users {bad_users.tolist()} assigned to an "
                             "unreachable extender")
    if enforce_capacity and scenario.capacities is not None:
        counts = np.bincount(assign[attached],
                             minlength=scenario.n_extenders)
        over = np.flatnonzero(counts > scenario.capacities)
        if over.size:
            raise ValueError(
                f"constraint (8) violated at extenders {over.tolist()}")
    return assign


def validate_assignment_batch(scenario: Scenario,
                              assignments: Sequence[Sequence[int]],
                              require_complete: bool = True,
                              enforce_capacity: bool = True) -> np.ndarray:
    """Vectorized :func:`validate_assignment` for a batch of candidates.

    Args:
        scenario: the network snapshot.
        assignments: ``(B, n_users)`` matrix of per-user extender indices
            (or :data:`UNASSIGNED`); a 1-D assignment is promoted to a
            batch of one.
        require_complete: enforce constraint (7) on every row.
        enforce_capacity: enforce constraint (8) on every row.

    Returns:
        The assignments as a validated ``(B, n_users)`` integer array.

    Raises:
        ValueError: on any constraint violation in any row (the message
            names the offending batch rows).
    """
    assign = np.atleast_2d(np.asarray(assignments, dtype=int))
    if assign.ndim != 2 or assign.shape[1] != scenario.n_users:
        raise ValueError(
            f"assignments must be (B, {scenario.n_users}); got shape "
            f"{assign.shape}")
    attached = assign != UNASSIGNED
    bad = attached & ((assign < 0) | (assign >= scenario.n_extenders))
    if np.any(bad):
        raise ValueError(
            f"extender index out of range in batch rows "
            f"{sorted(set(np.nonzero(bad)[0].tolist()))}")
    if require_complete and not np.all(attached):
        raise ValueError(
            f"constraint (7) violated in batch rows "
            f"{sorted(set(np.nonzero(~attached)[0].tolist()))}")
    if np.any(attached):
        safe = np.where(attached, assign, 0)
        rates = scenario.wifi_rates[
            np.arange(scenario.n_users)[np.newaxis, :], safe]
        unreachable = attached & (rates <= MIN_USABLE_RATE)
        if np.any(unreachable):
            raise ValueError(
                f"users assigned to an unreachable extender in batch rows "
                f"{sorted(set(np.nonzero(unreachable)[0].tolist()))}")
    if enforce_capacity and scenario.capacities is not None:
        n_batch = assign.shape[0]
        n_ext = scenario.n_extenders
        flat = (np.arange(n_batch)[:, np.newaxis] * n_ext
                + np.where(attached, assign, 0))[attached]
        counts = np.bincount(flat, minlength=n_batch * n_ext)
        counts = counts.reshape(n_batch, n_ext)
        over = counts > scenario.capacities[np.newaxis, :]
        if np.any(over):
            raise ValueError(
                f"constraint (8) violated in batch rows "
                f"{sorted(set(np.nonzero(over)[0].tolist()))}")
    return assign


def users_of(assignment: Sequence[int], extender: int) -> np.ndarray:
    """Indices of users attached to ``extender`` (the set ``N_j``)."""
    return np.flatnonzero(np.asarray(assignment, dtype=int) == extender)
