"""WOLT: the complete two-phase user-association algorithm (Alg. 1).

``WOLT = Phase I (Hungarian on u_ij = min(c_j/|A|, r_ij))
       + Phase II (Problem 2 on the leftover users)``

The solver returns the full assignment together with the per-phase
artifacts, and can be evaluated against the end-to-end throughput engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..net.engine import ThroughputReport, evaluate
from .phase1 import Phase1Result, phase1_utilities, solve_phase1
from .phase2 import Phase2Result, solve_phase2, solve_phase2_continuous
from .problem import UNASSIGNED, Scenario

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .guard import DecisionGuard

__all__ = ["WoltResult", "solve_wolt"]


@dataclass(frozen=True)
class WoltResult:
    """Outcome of running WOLT on a scenario.

    Attributes:
        assignment: complete per-user extender indices.
        phase1: the Phase-I artifact (anchors ``U1``, utilities, ...).
        phase2: the Phase-II artifact (objective, iterations, ...).
        report: end-to-end throughput report of the final assignment.
    """

    assignment: np.ndarray
    phase1: Phase1Result
    phase2: Phase2Result
    report: ThroughputReport

    @property
    def aggregate_throughput(self) -> float:
        """Total end-to-end network throughput (Mbps)."""
        return self.report.aggregate

    @property
    def anchored_users(self) -> np.ndarray:
        """The Phase-I user set ``U1``."""
        return self.phase1.anchored_users


def solve_wolt(scenario: Scenario,
               phase2_solver: str = "combinatorial",
               plc_mode: str = "redistribute",
               rng: Optional[np.random.Generator] = None,
               vectorized: bool = True,
               warm_start: Optional[Sequence[int]] = None,
               guard: "Optional[DecisionGuard]" = None) -> WoltResult:
    """Run the full WOLT association algorithm (Alg. 1 of the paper).

    Args:
        scenario: the network snapshot.
        phase2_solver: ``"combinatorial"`` (default; greedy insertion plus
            local search, always integral) or ``"continuous"`` (the
            paper's numerical nonlinear-program route, cross-checking
            Theorem 3).
        plc_mode: PLC sharing law used in the final evaluation (the
            algorithm itself is model-free; see
            :func:`repro.net.engine.evaluate`).
        rng: optional generator for the continuous solver's start point.
        vectorized: score Phase-II candidate moves in batches (default);
            ``False`` selects the scalar reference loops, which make
            bit-identical decisions (see :func:`repro.core.phase2.solve_phase2`).
        warm_start: optional previous-epoch assignment handed to the
            combinatorial Phase-II solver as its starting basis (see
            :func:`repro.core.phase2.solve_phase2`); ignored by the
            continuous solver.  ``None`` (default) is the cold start.
        guard: optional :class:`repro.core.guard.DecisionGuard` threaded
            through both phases.  Guarded, WOLT repairs invariant
            violations instead of raising (genuinely unattachable users
            are left :data:`UNASSIGNED` and reported), and the final
            assignment is re-validated.  On clean inputs the guarded
            decisions are bit-identical to the unguarded ones.

    Returns:
        A :class:`WoltResult`.
    """
    utilities = phase1_utilities(scenario)
    phase1 = solve_phase1(scenario, utilities, guard=guard)
    if phase2_solver == "combinatorial":
        phase2: Phase2Result = solve_phase2(scenario, phase1.assignment,
                                            vectorized=vectorized,
                                            warm_start=warm_start,
                                            guard=guard)
    elif phase2_solver == "continuous":
        phase2 = solve_phase2_continuous(scenario, phase1.assignment,
                                         rng=rng, guard=guard)
    else:
        raise ValueError(f"unknown phase2_solver: {phase2_solver!r}")
    if guard is not None:
        # Final validation checkpoint: the phases already repaired, so
        # this records a clean report unless a phase is buggy.
        guard.check_assignment(scenario, phase2.assignment,
                               source="wolt", require_complete=False)
    complete = not np.any(phase2.assignment == UNASSIGNED)
    report = evaluate(scenario, phase2.assignment, plc_mode=plc_mode,
                      require_complete=complete)
    return WoltResult(assignment=phase2.assignment, phase1=phase1,
                      phase2=phase2, report=report)
