"""One module per paper figure; shared by benchmarks, examples, CLI."""

from . import faults, fig2, fig3, fig4, fig5, fig6, robustness, sweeps

__all__ = ["faults", "fig2", "fig3", "fig4", "fig5", "fig6",
           "robustness", "sweeps"]
