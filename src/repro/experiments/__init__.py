"""One module per paper figure; shared by benchmarks, examples, CLI."""

from . import (chaos, faults, fig2, fig3, fig4, fig5, fig6, robustness,
               sweeps)

__all__ = ["chaos", "faults", "fig2", "fig3", "fig4", "fig5", "fig6",
           "robustness", "sweeps"]
