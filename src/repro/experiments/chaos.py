"""End-to-end chaos harness for the self-healing control loop.

The fault sweep (:mod:`repro.experiments.faults`) stresses one failure
mode at a time.  Chaos composes them: every epoch, extenders crash and
recover (:func:`repro.sim.failures.fail_extenders` Bernoulli dynamics),
scan reports travel a lossy :class:`repro.sim.faults.FaultyTransport`,
rate estimates carry log-normal error
(:func:`repro.net.estimate.noisy_scenario`), and both WiFi and PLC
telemetry are occasionally *poisoned* with NaN readings — the sensor
garbage a real driver emits mid-reset.

Three control loops face the same seeded storm:

* ``wolt`` — the guarded loop: a :class:`repro.core.DecisionGuard`
  validates/repairs every solve, a :class:`repro.core.HealthMonitor`
  quarantines suspect extenders, and a report TTL expires stale
  telemetry.
* ``wolt_unguarded`` — the same controller with every safety net
  removed.  Its first poisoned message raises; the harness records the
  crash and stops driving it (clients keep their last association —
  the operator page has not been answered yet).
* ``rssi`` — physics-only camping on the strongest live extender; no
  control plane, so nothing to crash.

Scoring is always against the *live* ground truth of the final epoch
(after :func:`repro.sim.failures.reassociate_orphans` — clients cannot
stay on a dead BSS, whatever any controller believes).

Acceptance (checked by :func:`acceptance_failures` and the test
suite): the guarded loop never crashes, matches the unguarded loop
bit-for-bit when the storm is off (level 0), and its mean throughput
dominates both the crashed loop and RSSI camping at every chaos level.

This harness torments one scenario's control loop.  Its campus-scale
sibling, :mod:`repro.fleet.chaos`, torments the whole fleet behind
``wolt serve`` — telemetry blackouts, shard worker crashes and
slow-shard hangs against per-shard deadlines and per-building circuit
breakers — with its own CI acceptance gate
(``python -m repro.fleet.chaos``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..core.controller import CentralController, ScanReport
from ..core.guard import DecisionGuard
from ..core.health import HealthMonitor
from ..core.problem import UNASSIGNED, Scenario
from ..net.engine import evaluate
from ..net.estimate import noisy_scenario
from ..net.topology import enterprise_floor
from ..sim.failures import fail_extenders, reassociate_orphans
from ..sim.faults import FaultModel, FaultyTransport
from .common import format_rows

__all__ = ["ChaosResult", "run_chaos_sweep", "quarantine_recovery_check",
           "acceptance_failures", "main", "DEFAULT_CHAOS_LEVELS"]

#: The documented default chaos levels swept by ``wolt chaos``.
DEFAULT_CHAOS_LEVELS = (0.0, 0.15, 0.3, 0.5)

#: The control loops compared by the sweep.
_POLICIES = ("wolt", "wolt_unguarded", "rssi")

#: Guarded-loop resilience counters accumulated per level.
_GUARD_STATS = ("guard_repairs", "sanitized_reports", "stale_reports")


@dataclass(frozen=True)
class ChaosResult:
    """Mean throughput and resilience counters per chaos level.

    Attributes:
        chaos_levels: the storm intensities swept (0 = calm).
        mean_mbps: policy -> per-level mean aggregate throughput,
            scored on the final live ground truth.
        crashes: policy -> per-level total uncaught control-loop
            exceptions across trials (the guarded loop must stay at 0).
        guard_stats: counter name -> per-level totals of the guarded
            controller's :class:`~repro.core.controller.ControllerStats`
            resilience counters (``guard_repairs``,
            ``sanitized_reports``, ``stale_reports``).
        quarantine_events / readmit_events: per-level totals of
            :class:`~repro.core.health.HealthMonitor` transitions in
            the guarded loop.
    """

    chaos_levels: Tuple[float, ...]
    mean_mbps: Dict[str, Tuple[float, ...]]
    crashes: Dict[str, Tuple[int, ...]]
    guard_stats: Dict[str, Tuple[int, ...]]
    quarantine_events: Tuple[int, ...]
    readmit_events: Tuple[int, ...]


def _flip_extenders(down: np.ndarray, rng: np.random.Generator,
                    fail_prob: float,
                    recover_prob: float = 0.5) -> np.ndarray:
    """One epoch of Bernoulli fail/recover; never the whole network."""
    flips_down = rng.random(down.size) < fail_prob
    flips_up = rng.random(down.size) < recover_prob
    down = (down & ~flips_up) | (~down & flips_down)
    if down.all():
        down[int(rng.integers(down.size))] = False
    return down


def _poison(row: np.ndarray, rng: np.random.Generator,
            prob: float) -> np.ndarray:
    """With probability ``prob``, NaN out one random entry of ``row``.

    The draw sequence is consumed identically whether or not the
    poison lands, so a fixed stream reproduces the same storm at every
    level.
    """
    hit = rng.random() < prob
    victim = int(rng.integers(row.size))
    if hit:
        row = row.copy()
        row[victim] = np.nan
    return row


def _camp_on_strongest(live: Scenario) -> np.ndarray:
    """RSSI physics: every user on its strongest live extender."""
    assignment = np.full(live.n_users, UNASSIGNED, dtype=int)
    for user in range(live.n_users):
        reachable = live.reachable(user)
        if reachable.size:
            assignment[user] = int(reachable[np.argmax(
                live.wifi_rates[user, reachable])])
    return assignment


def _run_chaos_episode(truth: Scenario, policy: str, level: float,
                       seq: np.random.SeedSequence, n_epochs: int,
                       plc_mode: str) -> Dict[str, Any]:
    """One (trial, level, policy) episode; returns a JSON-able payload.

    Separate streams drive the crash dynamics, the transport, the
    estimation noise and the poison draws, so the *storm* seen by the
    three policies differs only by their independent seeds — and at
    level 0 every storm is the identity, making the guarded and
    unguarded WOLT loops bit-identical there.
    """
    crash_rng, transport_rng, noise_rng, poison_rng = (
        np.random.default_rng(s) for s in seq.spawn(4))
    n_ext = truth.n_extenders
    down = np.zeros(n_ext, dtype=bool)
    live = truth
    crashes = 0
    if policy == "rssi":
        for _ in range(n_epochs):
            down = _flip_extenders(down, crash_rng, level / 3)
            live = fail_extenders(truth, np.flatnonzero(down))
        assignment = _camp_on_strongest(live)
    else:
        guarded = policy == "wolt"
        guard = DecisionGuard() if guarded else None
        health = (HealthMonitor(n_ext, probation_epochs=2)
                  if guarded else None)
        model = FaultModel(report_drop_prob=level / 2,
                           directive_drop_prob=level / 2,
                           handoff_failure_prob=level / 2,
                           max_retries=1, backoff_base_s=0.0)
        cc = CentralController(
            truth.plc_rates, policy="wolt",
            transport=FaultyTransport(model, transport_rng),
            guard=guard, health=health,
            report_ttl_epochs=2 if guarded else None)
        alive = True
        for _ in range(n_epochs):
            down = _flip_extenders(down, crash_rng, level / 3)
            live = fail_extenders(truth, np.flatnonzero(down))
            est = noisy_scenario(live, noise_rng,
                                 wifi_noise_fraction=level / 2,
                                 plc_noise_fraction=level / 4)
            plc_reading = _poison(est.plc_rates, poison_rng, level / 2)
            if alive:
                try:
                    cc.update_plc_telemetry(plc_reading)
                except ValueError:
                    crashes += 1
                    alive = False
            for user in range(truth.n_users):
                row = _poison(est.wifi_rates[user], poison_rng,
                              level / 2)
                if live.reachable(user).size == 0:
                    continue  # hears nothing; cannot report
                if alive:
                    try:
                        cc.receive_scan_report(ScanReport(user, row))
                    except ValueError:
                        crashes += 1
                        alive = False
            if alive:
                try:
                    cc.reconfigure()
                except ValueError:  # pragma: no cover - guard net
                    crashes += 1
                    alive = False
        known = cc.associations
        assignment = np.empty(truth.n_users, dtype=int)
        for user in range(truth.n_users):
            if user in known:
                assignment[user] = known[user]
            else:
                reachable = live.reachable(user)
                assignment[user] = (
                    UNASSIGNED if reachable.size == 0 else
                    int(reachable[np.argmax(
                        live.wifi_rates[user, reachable])]))
    # Physics: nobody stays associated to a dead extender.
    assignment = reassociate_orphans(live, assignment)
    report = evaluate(live, assignment, require_complete=False,
                      plc_mode=plc_mode)
    payload: Dict[str, Any] = {"aggregate": float(report.aggregate),
                               "crashes": int(crashes)}
    if policy == "wolt":
        payload.update(
            {name: int(getattr(cc.stats, name))
             for name in _GUARD_STATS})
        events = cc.health.events if cc.health is not None else []
        payload["quarantines"] = sum(
            1 for e in events if e.event == "quarantine")
        payload["readmits"] = sum(
            1 for e in events if e.event == "readmit")
    return payload


def run_chaos_sweep(chaos_levels: Sequence[float] = DEFAULT_CHAOS_LEVELS,
                    n_trials: int = 10,
                    n_extenders: int = 10,
                    n_users: int = 24,
                    n_epochs: int = 4,
                    seed: int = 0,
                    plc_mode: str = "fixed") -> ChaosResult:
    """Run the composed-fault chaos sweep.

    Deterministic for a fixed ``seed``: every trial owns a SeedSequence
    child; within a trial every (level, policy) episode owns its own
    grandchild, further split into crash / transport / noise / poison
    streams.

    Args:
        chaos_levels: storm intensities in [0, 1]; a level ``x`` sets
            extender crash probability ``x/3`` per epoch, message loss
            ``x/2``, WiFi estimate noise ``x/2``, PLC estimate noise
            ``x/4`` and telemetry NaN-poison probability ``x/2``.
        n_trials: independent floors per level.
        n_extenders / n_users: floor scale.
        n_epochs: scan/telemetry/reconfigure rounds per episode.
        seed: master random seed.
        plc_mode: PLC sharing law used for scoring.
    """
    levels = tuple(float(x) for x in chaos_levels)
    if any(not 0.0 <= x <= 1.0 for x in levels):
        raise ValueError("chaos levels must be in [0, 1]")
    if n_trials < 1 or n_epochs < 1:
        raise ValueError("n_trials and n_epochs must be positive")
    sums = {policy: np.zeros(len(levels)) for policy in _POLICIES}
    crash_totals = {policy: [0] * len(levels) for policy in _POLICIES}
    stat_totals = {name: [0] * len(levels) for name in _GUARD_STATS}
    quarantines = [0] * len(levels)
    readmits = [0] * len(levels)
    for trial_seq in np.random.SeedSequence(seed).spawn(n_trials):
        streams = trial_seq.spawn(1 + len(levels) * len(_POLICIES))
        truth = enterprise_floor(n_extenders, n_users,
                                 np.random.default_rng(streams[0]))
        stream = 1
        for li, level in enumerate(levels):
            for policy in _POLICIES:
                payload = _run_chaos_episode(truth, policy, level,
                                             streams[stream], n_epochs,
                                             plc_mode)
                stream += 1
                sums[policy][li] += payload["aggregate"]
                crash_totals[policy][li] += payload["crashes"]
                if policy == "wolt":
                    for name in _GUARD_STATS:
                        stat_totals[name][li] += payload[name]
                    quarantines[li] += payload["quarantines"]
                    readmits[li] += payload["readmits"]
    mean = {policy: tuple(values / n_trials)
            for policy, values in sums.items()}
    return ChaosResult(
        chaos_levels=levels, mean_mbps=mean,
        crashes={p: tuple(v) for p, v in crash_totals.items()},
        guard_stats={n: tuple(v) for n, v in stat_totals.items()},
        quarantine_events=tuple(quarantines),
        readmit_events=tuple(readmits))


def acceptance_failures(result: ChaosResult) -> List[str]:
    """The chaos acceptance criteria; empty means the sweep passes.

    * the guarded loop never raises an uncaught exception;
    * guarded WOLT ≥ unguarded WOLT at every level (equality at 0);
    * guarded WOLT ≥ RSSI camping at every level.

    The throughput comparisons are over per-level *means*: at very
    small trial counts a single unlucky floor can tip a high-chaos
    level, so judge the loop at the documented defaults (5+ trials).
    """
    failures = []
    for li, level in enumerate(result.chaos_levels):
        wolt = result.mean_mbps["wolt"][li]
        unguarded = result.mean_mbps["wolt_unguarded"][li]
        rssi = result.mean_mbps["rssi"][li]
        if result.crashes["wolt"][li]:
            failures.append(
                f"level {level:.0%}: guarded loop crashed "
                f"{result.crashes['wolt'][li]} time(s)")
        if wolt < unguarded - 1e-9:
            failures.append(
                f"level {level:.0%}: guarded WOLT {wolt:.2f} < "
                f"unguarded {unguarded:.2f} Mbps")
        if wolt < rssi - 1e-9:
            failures.append(
                f"level {level:.0%}: guarded WOLT {wolt:.2f} < "
                f"RSSI {rssi:.2f} Mbps")
    return failures


def quarantine_recovery_check(seed: int = 0,
                              probation_epochs: int = 2
                              ) -> Dict[str, Any]:
    """Deterministic quarantine/re-admission demonstration.

    Drives a guarded controller through a scripted incident: extender 0
    reports NaN capacity (quarantined), then reports clean for
    ``probation_epochs`` consecutive epochs (re-admitted).  Returns the
    observed epochs so callers can assert the probation contract:
    ``readmit_epoch - last_bad_epoch <= probation_epochs + 1``.
    """
    rng = np.random.default_rng(seed)
    truth = enterprise_floor(5, 12, rng)
    health = HealthMonitor(5, probation_epochs=probation_epochs)
    cc = CentralController(truth.plc_rates, guard=DecisionGuard(),
                           health=health, report_ttl_epochs=4)
    for user in range(truth.n_users):
        cc.receive_scan_report(ScanReport(user, truth.wifi_rates[user]))
    cc.reconfigure()
    bad = truth.plc_rates.copy()
    bad[0] = np.nan
    cc.update_plc_telemetry(bad)  # -> quarantine
    last_bad_epoch = health.epoch - 1
    for _ in range(probation_epochs + 1):
        cc.update_plc_telemetry(truth.plc_rates)  # clean probation
        cc.reconfigure()
    events = {e.event: e.epoch for e in health.events}
    return {
        "quarantine_epoch": events.get("quarantine"),
        "readmit_epoch": events.get("readmit"),
        "last_bad_epoch": last_bad_epoch,
        "readmitted": not health.is_quarantined(0),
        "within_probation": (
            "readmit" in events
            and events["readmit"] - last_bad_epoch
            <= probation_epochs + 1),
    }


def main(seed: int = 0, n_trials: int = 10) -> str:
    """Format the chaos sweep and the acceptance verdict."""
    result = run_chaos_sweep(seed=seed, n_trials=n_trials)
    rows = []
    for li, level in enumerate(result.chaos_levels):
        rows.append((
            f"{level:.0%}",
            result.mean_mbps["wolt"][li],
            result.mean_mbps["wolt_unguarded"][li],
            result.mean_mbps["rssi"][li],
            result.crashes["wolt_unguarded"][li],
            result.quarantine_events[li],
            result.readmit_events[li]))
    out = ["Chaos sweep (mean aggregate Mbps on live ground truth; "
           "crashes/quarantines are totals)"]
    out.append(format_rows(
        ["chaos", "WOLT guarded", "WOLT unguarded", "RSSI",
         "crashes", "quarantines", "readmits"], rows))
    stat_rows = []
    for li, level in enumerate(result.chaos_levels):
        stat_rows.append(
            (f"{level:.0%}",) + tuple(result.guard_stats[name][li]
                                      for name in _GUARD_STATS))
    out.append("\nGuarded-loop resilience counters (totals)")
    out.append(format_rows(
        ["chaos", "guard repairs", "sanitized reports",
         "stale reports"], stat_rows))
    recovery = quarantine_recovery_check(seed=seed)
    out.append(
        "\nQuarantine drill: quarantined at epoch "
        f"{recovery['quarantine_epoch']}, re-admitted at epoch "
        f"{recovery['readmit_epoch']} "
        f"({'within' if recovery['within_probation'] else 'OUTSIDE'} "
        "the probation window)")
    failures = acceptance_failures(result)
    if failures:
        out.append("\nACCEPTANCE: FAIL")
        out.extend(f"  - {line}" for line in failures)
    else:
        out.append("\nACCEPTANCE: PASS (guarded loop crash-free and "
                   "dominant at every level)")
    return "\n".join(out)
