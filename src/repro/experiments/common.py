"""Shared scaffolding for the per-figure experiment modules.

Every evaluation artifact of the paper has a module here (fig2 ... fig6)
exposing a seeded ``run_*`` function that returns a structured result,
plus formatting helpers so benchmarks, examples and the CLI print the
same paper-style rows.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..core.problem import Scenario
from ..testbed.calibration import sample_isolation_capacities
from ..wifi.phy import WifiPhy

__all__ = ["lab_scenario", "format_rows", "PAPER_LAB_SIDE_M",
           "TESTBED_EXTENDERS", "TESTBED_LAPTOPS"]

#: The paper's lab is 2408 m^2; we use a square of the same area.
PAPER_LAB_SIDE_M = float(np.sqrt(2408.0))

#: Testbed scale (§V-A): three extenders, seven laptops.
TESTBED_EXTENDERS = 3
TESTBED_LAPTOPS = 7


def lab_scenario(seed: int,
                 n_extenders: int = TESTBED_EXTENDERS,
                 n_users: int = TESTBED_LAPTOPS,
                 phy: Optional[WifiPhy] = None) -> Scenario:
    """One random testbed topology (§V-D): lab-sized floor, random
    outlets with calibrated PLC capacities, random laptop placements."""
    rng = np.random.default_rng(seed)
    phy = phy or WifiPhy()
    side = PAPER_LAB_SIDE_M
    extender_xy = rng.uniform(0.0, side, (n_extenders, 2))
    user_xy = rng.uniform(0.0, side, (n_users, 2))
    wifi = phy.rate_matrix(user_xy, extender_xy)
    # Laptops in a lab always hear at least one extender; nudge any dead
    # row onto its nearest extender at the lowest MCS.
    lowest = phy.mcs_table[0][1] * phy.spatial_streams
    for i in range(n_users):
        if not np.any(wifi[i] > 0):
            diff = extender_xy - user_xy[i]
            wifi[i, int(np.argmin(np.einsum("ij,ij->i", diff, diff)))] = \
                lowest
    plc = sample_isolation_capacities(n_extenders, rng)
    return Scenario(wifi_rates=wifi, plc_rates=plc)


def format_rows(header: Sequence[str],
                rows: Iterable[Sequence[object]]) -> str:
    """Render simple aligned text rows for experiment printouts."""
    table: List[List[str]] = [[str(h) for h in header]]
    for row in rows:
        table.append([f"{v:.2f}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[c]) for r in table) for c in range(len(header))]
    lines = []
    for idx, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w)
                               for cell, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
