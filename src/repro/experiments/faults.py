"""Control-plane fault-injection sweep (robustness extension study).

The paper's §V-A control plane is assumed lossless; this study asks
where WOLT's reconfiguration advantage survives a lossy one.  For each
fault level ``p``, every policy admits and (for WOLT) reconfigures its
clients through a seeded :class:`repro.sim.faults.FaultyTransport`
whose report-drop, directive-drop and handoff-failure probabilities are
all ``p`` and whose stale-estimate noise is ``p / 2``; the resulting
ground-truth association is scored on the clean scenario.

Degradation is graceful by construction: a client the CC never places
stays on its strongest-RSSI extender, so as ``p -> 1`` every policy
collapses onto the RSSI baseline — WOLT approaches it from above.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..net.engine import evaluate
from ..net.topology import enterprise_floor
from ..sim.checkpoint import TrialStore, fingerprint
from ..sim.faults import FaultModel, run_faulty_control_plane
from .common import format_rows

__all__ = ["FaultSweepResult", "run_fault_sweep", "main",
           "DEFAULT_FAULT_LEVELS"]

#: The documented default fault levels swept by ``wolt faults``.
DEFAULT_FAULT_LEVELS = (0.0, 0.1, 0.2, 0.4)

#: Control-plane counters averaged over trials (WOLT's controller).
_STAT_NAMES = ("dropped_reports", "dropped_directives", "retries",
               "failed_handoffs")

#: The policies compared by the sweep.
_POLICIES = ("wolt", "greedy", "rssi")


@dataclass(frozen=True)
class FaultSweepResult:
    """Mean aggregate throughput per policy per fault level.

    Attributes:
        fault_levels: the message-loss probabilities swept.
        mean_mbps: policy -> per-level mean aggregates (clean scoring).
        wolt_retention: per-level WOLT throughput relative to the
            fault-free level (1.0 = fully robust).
        wolt_control_stats: counter name -> per-level mean of WOLT's
            :class:`~repro.core.controller.ControllerStats` counters
            (``dropped_reports``, ``dropped_directives``, ``retries``,
            ``failed_handoffs``).
    """

    fault_levels: Tuple[float, ...]
    mean_mbps: Dict[str, Tuple[float, ...]]
    wolt_retention: Tuple[float, ...]
    wolt_control_stats: Dict[str, Tuple[float, ...]]


def _run_fault_trial(trial_seq: np.random.SeedSequence,
                     levels: Tuple[float, ...], n_extenders: int,
                     n_users: int, max_retries: int,
                     plc_mode: str) -> Dict[str, Any]:
    """One floor's per-(level, policy) aggregates, as a JSON payload.

    The payload is what gets journaled to the sweep checkpoint, so it
    must round-trip through JSON bit-exactly (plain floats do).
    """
    streams = trial_seq.spawn(1 + len(levels) * len(_POLICIES))
    rng = np.random.default_rng(streams[0])
    truth = enterprise_floor(n_extenders, n_users, rng)
    aggregates = {policy: [0.0] * len(levels) for policy in _POLICIES}
    stats = {name: [0.0] * len(levels) for name in _STAT_NAMES}
    stream = 1
    for li, level in enumerate(levels):
        model = FaultModel(report_drop_prob=level,
                           directive_drop_prob=level,
                           handoff_failure_prob=level,
                           rate_noise_fraction=level / 2,
                           max_retries=max_retries)
        for policy in _POLICIES:
            outcome = run_faulty_control_plane(
                truth, policy, model,
                np.random.default_rng(streams[stream]))
            stream += 1
            report = evaluate(outcome.live, outcome.assignment,
                              require_complete=False,
                              plc_mode=plc_mode)
            aggregates[policy][li] = float(report.aggregate)
            if policy == "wolt":
                for name in _STAT_NAMES:
                    stats[name][li] = float(getattr(outcome.stats,
                                                    name))
    return {"aggregates": aggregates, "stats": stats}


def run_fault_sweep(fault_levels: Sequence[float] = DEFAULT_FAULT_LEVELS,
                    n_trials: int = 10,
                    n_extenders: int = 15,
                    n_users: int = 36,
                    seed: int = 0,
                    max_retries: int = 2,
                    plc_mode: str = "fixed",
                    checkpoint: Optional[Union[str, Path]] = None,
                    resume: bool = False) -> FaultSweepResult:
    """Sweep control-plane fault rates at the paper's simulation scale.

    Deterministic for a fixed ``seed``: every trial owns a SeedSequence
    child, and every (level, policy) emulation within a trial owns its
    own grandchild for the transport's fault draws.

    Args:
        fault_levels: message-loss probabilities to sweep (each level
            sets report-drop, directive-drop and handoff-failure to the
            level and estimate noise to half of it).
        n_trials: independent floors per level.
        n_extenders / n_users: floor scale (paper: 15 / 36).
        seed: master random seed.
        max_retries: directive retransmission budget (§ retry/backoff).
        plc_mode: PLC sharing law used for scoring.
        checkpoint: journal each floor's per-(level, policy) aggregates
            to this crash-consistent JSONL file as it completes.
        resume: merge already-journaled floors instead of recomputing
            them; the resumed sweep is bit-identical to a cold run
            (per-trial contributions are re-summed in trial order).  A
            checkpoint from different sweep parameters is rejected with
            :class:`~repro.sim.checkpoint.FingerprintMismatch`.
    """
    levels = tuple(float(x) for x in fault_levels)
    if any(not 0.0 <= x <= 1.0 for x in levels):
        raise ValueError("fault levels must be in [0, 1]")
    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    store: Optional[TrialStore] = None
    if checkpoint is not None:
        params = {"kind": "fault_sweep", "fault_levels": list(levels),
                  "n_trials": int(n_trials),
                  "n_extenders": int(n_extenders),
                  "n_users": int(n_users), "seed": int(seed),
                  "max_retries": int(max_retries),
                  "plc_mode": plc_mode}
        store = TrialStore(checkpoint, fingerprint(params),
                           params=params, resume=resume)
    trial_seqs = np.random.SeedSequence(seed).spawn(n_trials)
    per_trial: Dict[int, Dict[str, Any]] = {}
    try:
        for index, trial_seq in enumerate(trial_seqs):
            if store is not None and index in store:
                per_trial[index] = store.records[index]
                continue
            payload = _run_fault_trial(trial_seq, levels, n_extenders,
                                       n_users, max_retries, plc_mode)
            per_trial[index] = payload
            if store is not None:
                store.append(index, payload)
        if store is not None:
            store.snapshot()
    finally:
        if store is not None:
            store.close()
    # Sum in trial order — float addition is not associative, so the
    # resume path must replay the exact accumulation sequence.
    sums = {policy: np.zeros(len(levels)) for policy in _POLICIES}
    stat_sums = {name: np.zeros(len(levels)) for name in _STAT_NAMES}
    for index in range(n_trials):
        payload = per_trial[index]
        for policy in _POLICIES:
            sums[policy] += np.asarray(payload["aggregates"][policy])
        for name in _STAT_NAMES:
            stat_sums[name] += np.asarray(payload["stats"][name])
    mean = {policy: tuple(values / n_trials)
            for policy, values in sums.items()}
    baseline = mean["wolt"][levels.index(0.0)] if 0.0 in levels \
        else mean["wolt"][0]
    retention = tuple(value / baseline for value in mean["wolt"])
    stats = {name: tuple(values / n_trials)
             for name, values in stat_sums.items()}
    return FaultSweepResult(fault_levels=levels, mean_mbps=mean,
                            wolt_retention=retention,
                            wolt_control_stats=stats)


def main(seed: int = 0, n_trials: int = 10,
         checkpoint: Optional[Union[str, Path]] = None,
         resume: bool = False) -> str:
    """Format the control-plane fault sweep."""
    result = run_fault_sweep(seed=seed, n_trials=n_trials,
                             checkpoint=checkpoint, resume=resume)
    rows = []
    for li, level in enumerate(result.fault_levels):
        rows.append((f"{level:.0%}",
                     result.mean_mbps["wolt"][li],
                     result.mean_mbps["greedy"][li],
                     result.mean_mbps["rssi"][li],
                     f"{result.wolt_retention[li]:.0%}"))
    out = ["Control-plane fault injection (mean aggregate Mbps, "
           "lossy control plane / clean scoring)"]
    out.append(format_rows(
        ["faults", "WOLT", "Greedy", "RSSI", "WOLT retention"], rows))
    stat_rows = []
    for li, level in enumerate(result.fault_levels):
        stat_rows.append(
            (f"{level:.0%}",) + tuple(
                result.wolt_control_stats[name][li]
                for name in _STAT_NAMES))
    out.append("\nWOLT control-plane counters (mean per trial)")
    out.append(format_rows(
        ["faults", "lost reports", "lost directives", "retries",
         "failed handoffs"], stat_rows))
    return "\n".join(out)
