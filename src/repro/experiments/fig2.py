"""Figure 2 — medium sharing in the PLC and WiFi domains.

* Fig. 2a: WiFi-only throughput-fair sharing and the 802.11 performance
  anomaly (two laptops, one moved to three locations).
* Fig. 2b: four PLC links' isolation throughputs (60-160 Mbps).
* Fig. 2c: PLC time-fair sharing — with ``k`` active extenders each link
  delivers ``~1/k`` of its isolation throughput.

Each experiment runs twice: on the emulated hardware testbed (the
analytic sharing laws plus measurement noise) and at the protocol level
(slot-by-slot 802.11 DCF / IEEE 1901 CSMA simulation) to show the laws
are emergent, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..plc.mac import Ieee1901CsmaSimulator
from ..testbed.calibration import FIG2B_ISOLATION_MBPS
from ..testbed.measurement import (PlcIsolationResult, PlcSharingResult,
                                   WifiSharingResult, plc_isolation_study,
                                   plc_sharing_study, wifi_sharing_study)
from ..wifi.mac import DcfSimulator
from .common import format_rows

__all__ = ["Fig2aResult", "run_fig2a", "run_fig2b", "Fig2cResult",
           "run_fig2c", "main"]


@dataclass(frozen=True)
class Fig2aResult:
    """Fig. 2a reproduction: analytic testbed + MAC-level validation.

    Attributes:
        testbed: emulated-testbed measurements per location.
        mac_user1_mbps / mac_user2_mbps: the same experiment replayed on
            the slot-level DCF simulator.
    """

    testbed: WifiSharingResult
    mac_user1_mbps: Tuple[float, ...]
    mac_user2_mbps: Tuple[float, ...]


def run_fig2a(seed: int = 0,
              distances_m: Tuple[float, ...] = (3.0, 45.0, 75.0),
              mac_sim_time_us: float = 3e6) -> Fig2aResult:
    """Reproduce Fig. 2a (WiFi throughput-fair sharing / anomaly)."""
    rng = np.random.default_rng(seed)
    testbed = wifi_sharing_study(distances_m=distances_m, rng=rng)
    from ..wifi.phy import WifiPhy

    phy = WifiPhy()
    mac1, mac2 = [], []
    for distance in distances_m:
        rates = [phy.rate_at_distance(3.0),
                 phy.rate_at_distance(float(distance))]
        result = DcfSimulator(rates, rng=rng).run(mac_sim_time_us)
        mac1.append(float(result.throughputs_mbps[0]))
        mac2.append(float(result.throughputs_mbps[1]))
    return Fig2aResult(testbed=testbed,
                       mac_user1_mbps=tuple(mac1),
                       mac_user2_mbps=tuple(mac2))


def run_fig2b(seed: int = 0) -> PlcIsolationResult:
    """Reproduce Fig. 2b (PLC isolation throughputs)."""
    return plc_isolation_study(rng=np.random.default_rng(seed))


@dataclass(frozen=True)
class Fig2cResult:
    """Fig. 2c reproduction: analytic testbed + 1901 MAC validation.

    Attributes:
        testbed: emulated-testbed sharing measurements.
        mac_share_ratios: per-k measured airtime fraction of each link
            on the slot-level IEEE 1901 CSMA simulator (expected ~1/k).
    """

    testbed: PlcSharingResult
    mac_share_ratios: Dict[int, Tuple[float, ...]]


def run_fig2c(seed: int = 0,
              mac_sim_time_us: float = 2e7) -> Fig2cResult:
    """Reproduce Fig. 2c (PLC time-fair sharing)."""
    rng = np.random.default_rng(seed)
    testbed = plc_sharing_study(rng=rng)
    mac_ratios: Dict[int, Tuple[float, ...]] = {}
    for k in testbed.shared_mbps:
        rates = list(FIG2B_ISOLATION_MBPS[:k])
        result = Ieee1901CsmaSimulator(rates, rng=rng).run(mac_sim_time_us)
        mac_ratios[k] = tuple(float(t / c) for t, c in
                              zip(result.throughputs_mbps, rates))
    return Fig2cResult(testbed=testbed, mac_share_ratios=mac_ratios)


def main(seed: int = 0) -> str:
    """Run all three Fig. 2 experiments and format the paper-style rows."""
    parts = []
    a = run_fig2a(seed)
    parts.append("Fig 2a - WiFi throughput-fair sharing (Mbps)")
    parts.append(format_rows(
        ["location", "user1 (testbed)", "user2 (testbed)",
         "user1 (DCF sim)", "user2 (DCF sim)"],
        [(loc, u1, u2, m1, m2) for loc, u1, u2, m1, m2 in
         zip(a.testbed.locations, a.testbed.user1_mbps,
             a.testbed.user2_mbps, a.mac_user1_mbps, a.mac_user2_mbps)]))
    b = run_fig2b(seed)
    parts.append("\nFig 2b - PLC isolation throughput (Mbps)")
    parts.append(format_rows(["extender", "isolation"],
                             list(zip(b.extenders, b.isolation_mbps))))
    c = run_fig2c(seed)
    parts.append("\nFig 2c - PLC time-fair sharing (fraction of isolation)")
    rows = []
    for k, shared in sorted(c.testbed.shared_mbps.items()):
        rows.append((k,
                     ", ".join(f"{x:.2f}" for x in c.testbed.share_ratio(k)),
                     ", ".join(f"{x:.2f}" for x in c.mac_share_ratios[k]),
                     f"{1.0 / k:.2f}"))
    parts.append(format_rows(
        ["active k", "testbed ratios", "1901 MAC ratios", "expected"],
        rows))
    return "\n".join(parts)
