"""Figure 3 — the user-association case study.

Two extenders (PLC rates 60 / 20 Mbps), two users (WiFi rates 15 / 40
Mbps to extender 1 and 10 / 20 Mbps to extender 2).  The paper reports:

* RSSI-based association: 22 Mbps aggregate (11 + 11),
* Greedy association: 30 Mbps (15 + 15, thanks to PLC leftover-time
  redistribution),
* Optimal association: 40 Mbps (10 + 30).

Because the engine is calibrated to the testbed's sharing behaviour,
this reproduction matches the paper's numbers *exactly*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.baselines import rssi_assignment, selfish_greedy_assignment
from ..core.optimal import brute_force_optimal
from ..core.problem import Scenario
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from .common import format_rows

__all__ = ["fig3_scenario", "Fig3Result", "run_fig3", "main",
           "PAPER_FIG3_MBPS"]

#: The aggregate throughputs the paper reports for Fig. 3 (Mbps).
PAPER_FIG3_MBPS = {"rssi": 22.0, "greedy": 30.0, "optimal": 40.0}


def fig3_scenario() -> Scenario:
    """The exact Fig. 3a link rates."""
    return Scenario(wifi_rates=np.array([[15.0, 10.0], [40.0, 20.0]]),
                    plc_rates=np.array([60.0, 20.0]))


@dataclass(frozen=True)
class Fig3Result:
    """Reproduced Fig. 3 aggregates and per-user throughputs (Mbps)."""

    rssi_aggregate: float
    rssi_per_user: Tuple[float, float]
    greedy_aggregate: float
    greedy_per_user: Tuple[float, float]
    optimal_aggregate: float
    optimal_per_user: Tuple[float, float]
    wolt_aggregate: float
    wolt_matches_optimal: bool


def run_fig3() -> Fig3Result:
    """Reproduce the full Fig. 3 case study."""
    scenario = fig3_scenario()
    rssi = evaluate(scenario, rssi_assignment(scenario))
    # Fig. 3c is the *self-interested* greedy: user 1 then user 2, each
    # maximizing its own end-to-end throughput.
    greedy = evaluate(scenario, selfish_greedy_assignment(scenario))
    optimal = brute_force_optimal(scenario)
    optimal_report = evaluate(scenario, optimal.assignment)
    wolt = solve_wolt(scenario)
    return Fig3Result(
        rssi_aggregate=rssi.aggregate,
        rssi_per_user=tuple(rssi.user_throughputs),
        greedy_aggregate=greedy.aggregate,
        greedy_per_user=tuple(greedy.user_throughputs),
        optimal_aggregate=optimal.aggregate_throughput,
        optimal_per_user=tuple(optimal_report.user_throughputs),
        wolt_aggregate=wolt.aggregate_throughput,
        wolt_matches_optimal=bool(
            np.isclose(wolt.aggregate_throughput,
                       optimal.aggregate_throughput)))


def main() -> str:
    """Format the Fig. 3 comparison against the paper's numbers."""
    r = run_fig3()
    rows = [
        ("RSSI (Fig 3b)", r.rssi_aggregate, PAPER_FIG3_MBPS["rssi"]),
        ("Greedy (Fig 3c)", r.greedy_aggregate, PAPER_FIG3_MBPS["greedy"]),
        ("Optimal (Fig 3d)", r.optimal_aggregate,
         PAPER_FIG3_MBPS["optimal"]),
        ("WOLT", r.wolt_aggregate, PAPER_FIG3_MBPS["optimal"]),
    ]
    out = ["Fig 3 - case study aggregate throughput (Mbps)"]
    out.append(format_rows(["policy", "reproduced", "paper"], rows))
    out.append(f"WOLT matches optimal: {r.wolt_matches_optimal}")
    return "\n".join(out)
