"""Figure 4 — testbed-scale evaluation (3 extenders, 7 laptops).

* Fig. 4a: average aggregate throughput of WOLT vs Greedy vs RSSI over
  25 random topologies (paper: +26% over Greedy, +70% over RSSI).
* Fig. 4b: per-user win/loss fractions (paper: 35% of users improve
  under WOLT vs Greedy; 55% vs RSSI).
* Fig. 4c: fidelity of the analytic simulator against the (emulated)
  hardware testbed on identical topologies.

Scoring note (see EXPERIMENTS.md): policies decide against the measured
network; aggregates are scored under the paper's Problem-1 sharing model
(``plc_mode="fixed"``), which is what the paper's simulator reports.
The result dataclass also carries the physically-scored aggregates
(``plc_mode="redistribute"``) so the model gap is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.baselines import greedy_assignment, rssi_assignment
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.metrics import compare_per_user
from ..testbed.devices import EmulatedTestbed, Laptop, PlcExtender
from .common import format_rows, lab_scenario

__all__ = ["Fig4aResult", "run_fig4a", "Fig4bResult", "run_fig4b",
           "Fig4cResult", "run_fig4c", "main", "PAPER_FIG4A_IMPROVEMENT"]

#: The paper's Fig. 4a average improvements of WOLT.
PAPER_FIG4A_IMPROVEMENT = {"greedy": 0.26, "rssi": 0.70}


def _run_topology(seed: int, plc_mode: str) -> Dict[str, float]:
    scenario = lab_scenario(seed)
    rng = np.random.default_rng(seed)
    wolt = solve_wolt(scenario, plc_mode=plc_mode)
    greedy = greedy_assignment(scenario,
                               arrival_order=rng.permutation(
                                   scenario.n_users))
    rssi = rssi_assignment(scenario)
    return {
        "wolt": wolt.aggregate_throughput,
        "greedy": evaluate(scenario, greedy,
                           plc_mode=plc_mode).aggregate,
        "rssi": evaluate(scenario, rssi, plc_mode=plc_mode).aggregate,
    }


@dataclass(frozen=True)
class Fig4aResult:
    """Fig. 4a reproduction.

    Attributes:
        mean_mbps: average aggregate per policy under the paper's model.
        improvement_over: WOLT's mean relative improvement per baseline.
        physical_mean_mbps: the same averages under the testbed-measured
            (redistributing) law — the reproduction's model-gap ablation.
        per_topology: raw aggregates per topology under the paper model.
    """

    mean_mbps: Dict[str, float]
    improvement_over: Dict[str, float]
    physical_mean_mbps: Dict[str, float]
    per_topology: List[Dict[str, float]]


def run_fig4a(n_topologies: int = 25, seed: int = 0) -> Fig4aResult:
    """Reproduce Fig. 4a over ``n_topologies`` random lab topologies."""
    paper_model = [_run_topology(seed + t, "fixed")
                   for t in range(n_topologies)]
    physical = [_run_topology(seed + t, "redistribute")
                for t in range(n_topologies)]
    mean = {p: float(np.mean([r[p] for r in paper_model]))
            for p in ("wolt", "greedy", "rssi")}
    phys_mean = {p: float(np.mean([r[p] for r in physical]))
                 for p in ("wolt", "greedy", "rssi")}
    improvement = {
        p: float(np.mean([r["wolt"] / r[p] - 1.0 for r in paper_model]))
        for p in ("greedy", "rssi")}
    return Fig4aResult(mean_mbps=mean, improvement_over=improvement,
                       physical_mean_mbps=phys_mean,
                       per_topology=paper_model)


@dataclass(frozen=True)
class Fig4bResult:
    """Fig. 4b reproduction: per-user effects of WOLT.

    Attributes:
        improved_vs_greedy / degraded_vs_greedy: user fractions.
        improved_vs_rssi / degraded_vs_rssi: user fractions.
    """

    improved_vs_greedy: float
    degraded_vs_greedy: float
    improved_vs_rssi: float
    degraded_vs_rssi: float


def run_fig4b(n_topologies: int = 25, seed: int = 0,
              plc_mode: str = "fixed") -> Fig4bResult:
    """Reproduce Fig. 4b: pooled per-user win/loss fractions."""
    wolt_all: List[float] = []
    greedy_all: List[float] = []
    rssi_all: List[float] = []
    order_seqs = np.random.SeedSequence(seed).spawn(n_topologies)
    for t in range(n_topologies):
        scenario = lab_scenario(seed + t)
        rng = np.random.default_rng(order_seqs[t])
        wolt = solve_wolt(scenario, plc_mode=plc_mode)
        greedy = evaluate(scenario,
                          greedy_assignment(
                              scenario,
                              arrival_order=rng.permutation(
                                  scenario.n_users)),
                          plc_mode=plc_mode)
        rssi = evaluate(scenario, rssi_assignment(scenario),
                        plc_mode=plc_mode)
        wolt_all.extend(wolt.report.user_throughputs)
        greedy_all.extend(greedy.user_throughputs)
        rssi_all.extend(rssi.user_throughputs)
    vs_greedy = compare_per_user(greedy_all, wolt_all)
    vs_rssi = compare_per_user(rssi_all, wolt_all)
    return Fig4bResult(improved_vs_greedy=vs_greedy.improved_fraction,
                       degraded_vs_greedy=vs_greedy.degraded_fraction,
                       improved_vs_rssi=vs_rssi.improved_fraction,
                       degraded_vs_rssi=vs_rssi.degraded_fraction)


@dataclass(frozen=True)
class Fig4cResult:
    """Fig. 4c reproduction: simulator-vs-testbed fidelity.

    Attributes:
        testbed_user_mbps: per-laptop iperf throughputs on the emulated
            hardware bench (with measurement noise).
        simulated_user_mbps: the analytic simulator's prediction on the
            identical topology.
        max_relative_error: worst per-user |sim - testbed| / testbed.
    """

    testbed_user_mbps: Tuple[float, ...]
    simulated_user_mbps: Tuple[float, ...]
    max_relative_error: float


def run_fig4c(seed: int = 7) -> Fig4cResult:
    """Reproduce Fig. 4c on one random topology (3 ext / 7 laptops)."""
    rng = np.random.default_rng(seed)
    scenario = lab_scenario(seed)
    assignment = rssi_assignment(scenario)
    # The analytic simulator's prediction.
    sim = evaluate(scenario, assignment, require_complete=True)
    # The same topology on the emulated hardware bench.
    bench = EmulatedTestbed(rng=rng)
    for j in range(scenario.n_extenders):
        bench.plug_extender(PlcExtender(
            f"ext-{j}", (0.0, 0.0), float(scenario.plc_rates[j])))
    for i in range(scenario.n_users):
        bench.place_laptop(Laptop(f"laptop-{i}", (0.0, 0.0)))
    # Bypass geometry: stub the bench's rate lookup with the scenario's
    # rate matrix so both systems see identical channel qualities.
    bench.wifi_rate = lambda lp, ext: float(
        scenario.wifi_rates[int(lp.split("-")[1]), int(ext.split("-")[1])])
    for i in range(scenario.n_users):
        bench.laptops[f"laptop-{i}"].associated_to = f"ext-{assignment[i]}"
    samples = {s.laptop: s.throughput_mbps for s in bench.run_iperf()}
    testbed = tuple(samples[f"laptop-{i}"]
                    for i in range(scenario.n_users))
    simulated = tuple(float(x) for x in sim.user_throughputs)
    errors = [abs(s - t) / t for s, t in zip(simulated, testbed) if t > 0]
    return Fig4cResult(testbed_user_mbps=testbed,
                       simulated_user_mbps=simulated,
                       max_relative_error=float(max(errors)))


def main(seed: int = 0) -> str:
    """Run Fig. 4a/4b/4c and format the paper-style summary."""
    a = run_fig4a(seed=seed)
    out = ["Fig 4a - testbed comparison (mean aggregate Mbps, "
           "paper model scoring)"]
    out.append(format_rows(
        ["policy", "mean Mbps", "WOLT improvement", "paper improvement"],
        [("wolt", a.mean_mbps["wolt"], "-", "-"),
         ("greedy", a.mean_mbps["greedy"],
          f"+{a.improvement_over['greedy']:.0%}",
          f"+{PAPER_FIG4A_IMPROVEMENT['greedy']:.0%}"),
         ("rssi", a.mean_mbps["rssi"],
          f"+{a.improvement_over['rssi']:.0%}",
          f"+{PAPER_FIG4A_IMPROVEMENT['rssi']:.0%}")]))
    b = run_fig4b(seed=seed)
    out.append("\nFig 4b - per-user effects of WOLT "
               "(paper: 35% better vs Greedy, 55% vs RSSI)")
    out.append(format_rows(
        ["baseline", "improved", "degraded"],
        [("greedy", f"{b.improved_vs_greedy:.0%}",
          f"{b.degraded_vs_greedy:.0%}"),
         ("rssi", f"{b.improved_vs_rssi:.0%}",
          f"{b.degraded_vs_rssi:.0%}")]))
    c = run_fig4c(seed=seed + 7)
    out.append("\nFig 4c - simulator vs testbed fidelity "
               f"(max per-user error {c.max_relative_error:.1%})")
    out.append(format_rows(
        ["laptop", "testbed Mbps", "sim Mbps"],
        [(i, t, s) for i, (t, s) in
         enumerate(zip(c.testbed_user_mbps, c.simulated_user_mbps))]))
    return "\n".join(out)
