"""Figure 5 — WOLT's effect on individual users (fairness drill-down).

On one representative topology, compare the per-user throughputs of
WOLT and Greedy for the three users WOLT serves worst (Fig. 5a) and the
three it serves best (Fig. 5b).  The paper reports that the worst three
lose only ~6 Mbps in total while the best three gain ~38 Mbps — i.e.
WOLT's throughput win costs little fairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.baselines import greedy_assignment
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.metrics import bottom_k_users, top_k_users
from .common import format_rows, lab_scenario

__all__ = ["Fig5Result", "run_fig5", "main"]


@dataclass(frozen=True)
class Fig5Result:
    """Fig. 5 reproduction on one topology.

    Attributes:
        worst_wolt_mbps / worst_greedy_mbps: the three lowest-throughput
            WOLT users, under WOLT and under Greedy (Fig. 5a).
        best_wolt_mbps / best_greedy_mbps: the three highest-throughput
            WOLT users (Fig. 5b).
        worst_total_delta_mbps: total WOLT-minus-Greedy change of the
            worst three (paper: about -6 Mbps).
        best_total_delta_mbps: total change of the best three (paper:
            about +38 Mbps).
    """

    worst_wolt_mbps: Tuple[float, float, float]
    worst_greedy_mbps: Tuple[float, float, float]
    best_wolt_mbps: Tuple[float, float, float]
    best_greedy_mbps: Tuple[float, float, float]
    worst_total_delta_mbps: float
    best_total_delta_mbps: float


def run_fig5(seed: int = 3, k: int = 3,
             plc_mode: str = "fixed") -> Fig5Result:
    """Reproduce Fig. 5a/5b on one random testbed topology."""
    scenario = lab_scenario(seed)
    rng = np.random.default_rng(seed)
    wolt = solve_wolt(scenario, plc_mode=plc_mode)
    greedy = evaluate(scenario,
                      greedy_assignment(scenario,
                                        arrival_order=rng.permutation(
                                            scenario.n_users)),
                      plc_mode=plc_mode)
    wolt_tput = wolt.report.user_throughputs
    greedy_tput = greedy.user_throughputs
    worst = bottom_k_users(wolt_tput, k)
    best = top_k_users(wolt_tput, k)
    return Fig5Result(
        worst_wolt_mbps=tuple(float(wolt_tput[i]) for i in worst),
        worst_greedy_mbps=tuple(float(greedy_tput[i]) for i in worst),
        best_wolt_mbps=tuple(float(wolt_tput[i]) for i in best),
        best_greedy_mbps=tuple(float(greedy_tput[i]) for i in best),
        worst_total_delta_mbps=float(
            (wolt_tput[worst] - greedy_tput[worst]).sum()),
        best_total_delta_mbps=float(
            (wolt_tput[best] - greedy_tput[best]).sum()))


def main(seed: int = 3) -> str:
    """Format the Fig. 5 drill-down."""
    r = run_fig5(seed)
    out = ["Fig 5a - WOLT's worst three users (Mbps)"]
    out.append(format_rows(
        ["user", "WOLT", "Greedy"],
        [(i + 1, w, g) for i, (w, g) in
         enumerate(zip(r.worst_wolt_mbps, r.worst_greedy_mbps))]))
    out.append(f"worst-3 total delta: {r.worst_total_delta_mbps:+.1f} Mbps "
               "(paper: about -6)")
    out.append("\nFig 5b - WOLT's best three users (Mbps)")
    out.append(format_rows(
        ["user", "WOLT", "Greedy"],
        [(i + 1, w, g) for i, (w, g) in
         enumerate(zip(r.best_wolt_mbps, r.best_greedy_mbps))]))
    out.append(f"best-3 total delta: {r.best_total_delta_mbps:+.1f} Mbps "
               "(paper: about +38)")
    return "\n".join(out)
