"""Figure 6 — large-scale simulation results (15 extenders, 100 m floor).

* Fig. 6a: CDF of aggregate throughput across 100 random trials with 36
  users; WOLT averages ~2.5x Greedy under the paper's simulator model.
* Fig. 6b: aggregate throughput per epoch as the population grows
  (Poisson arrivals λ=3, departures μ=1; 36 → ~66 → ~102 users).
* Fig. 6c: number of users re-assigned by WOLT per epoch (paper: at most
  ~2x the epoch's arrivals).
* §V-E fairness: Jain's index ~0.66 (WOLT), 0.52 (Greedy), 0.65 (RSSI).

Scoring follows the paper's simulator (``plc_mode="fixed"``, the
Problem-1 model); see EXPERIMENTS.md for the model-gap discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..net.metrics import jain_fairness
from ..sim.dynamics import EpochStats
from ..sim.runner import run_online_comparison, run_trials
from .common import format_rows

__all__ = ["Fig6aResult", "run_fig6a", "Fig6bcResult", "run_fig6bc",
           "FairnessResult", "run_fairness", "main",
           "PAPER_FIG6A_RATIO", "PAPER_JAIN"]

#: The paper's headline simulation claim.
PAPER_FIG6A_RATIO = 2.5

#: §V-E Jain fairness indices.
PAPER_JAIN = {"wolt": 0.66, "greedy": 0.52, "rssi": 0.65}

#: Paper scale: 15 extenders, 36 users, 100 trials.
SIM_EXTENDERS = 15
SIM_USERS = 36


@dataclass(frozen=True)
class Fig6aResult:
    """Fig. 6a reproduction.

    Attributes:
        wolt_mbps / greedy_mbps: per-trial aggregates (the CDF series).
        mean_ratio: mean per-trial WOLT/Greedy ratio (paper: ~2.5).
        wolt_wins_all_trials: the paper's "outperforms ... in all trials".
    """

    wolt_mbps: np.ndarray
    greedy_mbps: np.ndarray
    mean_ratio: float
    wolt_wins_all_trials: bool

    def cdf(self, policy: str) -> Tuple[np.ndarray, np.ndarray]:
        """The empirical CDF points (x = Mbps, y = P[X <= x])."""
        data = self.wolt_mbps if policy == "wolt" else self.greedy_mbps
        xs = np.sort(data)
        ys = np.arange(1, xs.size + 1) / xs.size
        return xs, ys


def run_fig6a(n_trials: int = 100, seed: int = 0,
              n_extenders: int = SIM_EXTENDERS,
              n_users: int = SIM_USERS,
              plc_mode: str = "fixed",
              workers: int = None) -> Fig6aResult:
    """Reproduce the Fig. 6a Monte-Carlo comparison.

    ``workers`` fans the trials out over that many processes; results are
    bit-identical to the serial run (see
    :func:`repro.sim.runner.run_trials`).
    """
    trials = run_trials(n_trials, n_extenders, n_users,
                        policies=("wolt", "greedy"), seed=seed,
                        plc_mode=plc_mode, workers=workers)
    wolt = np.array([t.aggregate("wolt") for t in trials])
    greedy = np.array([t.aggregate("greedy") for t in trials])
    return Fig6aResult(wolt_mbps=wolt, greedy_mbps=greedy,
                       mean_ratio=float(np.mean(wolt / greedy)),
                       wolt_wins_all_trials=bool(np.all(wolt > greedy)))


@dataclass(frozen=True)
class Fig6bcResult:
    """Fig. 6b/6c reproduction.

    Attributes:
        histories: per-policy epoch statistics.
        reassignment_per_arrival: WOLT's mean re-assignments per arrival
            (paper: "up to twice the number of arriving users").
    """

    histories: Dict[str, List[EpochStats]]
    reassignment_per_arrival: float

    def series(self, policy: str, attr: str) -> List[float]:
        return [getattr(e, attr) for e in self.histories[policy]]


def run_fig6bc(n_epochs: int = 3, seed: int = 0,
               n_extenders: int = SIM_EXTENDERS,
               initial_users: int = 3,
               plc_mode: str = "fixed") -> Fig6bcResult:
    """Reproduce the Fig. 6b/6c online dynamics.

    Starting from a handful of users, the Poisson process grows the
    population by ~33 users per epoch, hitting the paper's 36 / 66 /
    102 trajectory across the three epochs.
    """
    histories = run_online_comparison(
        n_epochs, n_extenders, initial_users,
        policies=("wolt", "greedy"), seed=seed, plc_mode=plc_mode)
    wolt_hist = histories["wolt"]
    arrivals = sum(e.arrivals for e in wolt_hist)
    reassigned = sum(e.reassignments for e in wolt_hist)
    ratio = reassigned / arrivals if arrivals else 0.0
    return Fig6bcResult(histories=histories,
                        reassignment_per_arrival=float(ratio))


@dataclass(frozen=True)
class FairnessResult:
    """§V-E Jain fairness reproduction (mean over trials)."""

    jain: Dict[str, float]


def run_fairness(n_trials: int = 30, seed: int = 0,
                 plc_mode: str = "fixed",
                 workers: int = None) -> FairnessResult:
    """Reproduce the §V-E Jain-index comparison."""
    trials = run_trials(n_trials, SIM_EXTENDERS, SIM_USERS,
                        policies=("wolt", "greedy", "rssi"), seed=seed,
                        plc_mode=plc_mode, workers=workers)
    jain = {}
    for policy in ("wolt", "greedy", "rssi"):
        jain[policy] = float(np.mean(
            [t.outcomes[policy].jain_fairness for t in trials]))
    return FairnessResult(jain=jain)


def main(seed: int = 0, n_trials: int = 100, n_epochs: int = 3,
         workers: int = None) -> str:
    """Run the Fig. 6 suite and format the paper-style summary."""
    a = run_fig6a(n_trials=n_trials, seed=seed, workers=workers)
    out = ["Fig 6a - aggregate throughput over "
           f"{a.wolt_mbps.size} trials (Mbps)"]
    out.append(format_rows(
        ["policy", "mean", "p10", "median", "p90"],
        [("wolt", float(a.wolt_mbps.mean()),
          float(np.percentile(a.wolt_mbps, 10)),
          float(np.median(a.wolt_mbps)),
          float(np.percentile(a.wolt_mbps, 90))),
         ("greedy", float(a.greedy_mbps.mean()),
          float(np.percentile(a.greedy_mbps, 10)),
          float(np.median(a.greedy_mbps)),
          float(np.percentile(a.greedy_mbps, 90)))]))
    out.append(f"mean WOLT/Greedy ratio: {a.mean_ratio:.2f} "
               f"(paper: ~{PAPER_FIG6A_RATIO}); "
               f"WOLT wins all trials: {a.wolt_wins_all_trials}")
    bc = run_fig6bc(n_epochs=n_epochs, seed=seed)
    out.append("\nFig 6b - aggregate throughput per epoch (Mbps)")
    rows = []
    for policy in ("wolt", "greedy"):
        for e in bc.histories[policy]:
            rows.append((policy, e.epoch, e.n_users,
                         e.aggregate_throughput))
    out.append(format_rows(["policy", "epoch", "users", "Mbps"], rows))
    out.append("\nFig 6c - WOLT re-assignments per epoch")
    out.append(format_rows(
        ["epoch", "arrivals", "reassignments"],
        [(e.epoch, e.arrivals, e.reassignments)
         for e in bc.histories["wolt"]]))
    out.append(f"re-assignments per arrival: "
               f"{bc.reassignment_per_arrival:.2f} (paper: <= ~2)")
    f = run_fairness(seed=seed, workers=workers)
    out.append("\nJain fairness (paper: WOLT 0.66, Greedy 0.52, RSSI 0.65)")
    out.append(format_rows(
        ["policy", "Jain index", "paper"],
        [(p, f.jain[p], PAPER_JAIN[p]) for p in ("wolt", "greedy",
                                                 "rssi")]))
    return "\n".join(out)
