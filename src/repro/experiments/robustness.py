"""Robustness of WOLT to channel-estimation noise (extension study).

The paper's implementation estimates WiFi rates from NIC MCS readouts
and PLC capacities from offline iperf runs (§V-A); both are noisy.
This study asks the question any deployment would: *how much of WOLT's
win survives when the controller decides on noisy estimates but the
network delivers ground-truth throughputs?*

For each noise level σ, every policy decides on a
log-normally-perturbed copy of the scenario
(:func:`repro.net.estimate.noisy_scenario`) and is scored on the clean
one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.baselines import greedy_assignment, rssi_assignment
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.estimate import noisy_scenario
from ..net.topology import enterprise_floor
from .common import format_rows

__all__ = ["RobustnessResult", "run_robustness", "main"]


@dataclass(frozen=True)
class RobustnessResult:
    """Mean aggregate throughput per policy per noise level.

    Attributes:
        noise_levels: the relative estimation error levels swept.
        mean_mbps: policy -> per-level mean aggregates (clean scoring).
        wolt_retention: per-level WOLT throughput relative to noiseless
            WOLT (1.0 = fully robust).
    """

    noise_levels: Tuple[float, ...]
    mean_mbps: Dict[str, Tuple[float, ...]]
    wolt_retention: Tuple[float, ...]


def run_robustness(noise_levels: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
                   n_trials: int = 10,
                   n_extenders: int = 15,
                   n_users: int = 36,
                   seed: int = 0,
                   plc_mode: str = "fixed") -> RobustnessResult:
    """Sweep estimation-noise levels at the paper's simulation scale."""
    levels = tuple(float(x) for x in noise_levels)
    if any(x < 0 for x in levels):
        raise ValueError("noise levels must be non-negative")
    sums = {policy: np.zeros(len(levels))
            for policy in ("wolt", "greedy", "rssi")}
    trial_seqs = np.random.SeedSequence(seed).spawn(n_trials)
    for trial in range(n_trials):
        rng = np.random.default_rng(trial_seqs[trial])
        truth = enterprise_floor(n_extenders, n_users, rng)
        order = rng.permutation(n_users)
        for li, level in enumerate(levels):
            estimated = noisy_scenario(truth, rng,
                                       wifi_noise_fraction=level,
                                       plc_noise_fraction=level)
            decided = {
                "wolt": solve_wolt(estimated).assignment,
                "greedy": greedy_assignment(estimated,
                                            arrival_order=order),
                "rssi": rssi_assignment(estimated),
            }
            for policy, assignment in decided.items():
                sums[policy][li] += evaluate(
                    truth, assignment, plc_mode=plc_mode,
                    require_complete=True).aggregate
    mean = {policy: tuple(values / n_trials)
            for policy, values in sums.items()}
    baseline = mean["wolt"][levels.index(0.0)] if 0.0 in levels \
        else mean["wolt"][0]
    retention = tuple(value / baseline for value in mean["wolt"])
    return RobustnessResult(noise_levels=levels, mean_mbps=mean,
                            wolt_retention=retention)


def main(seed: int = 0, n_trials: int = 10) -> str:
    """Format the robustness sweep."""
    result = run_robustness(seed=seed, n_trials=n_trials)
    rows = []
    for li, level in enumerate(result.noise_levels):
        rows.append((f"{level:.0%}",
                     result.mean_mbps["wolt"][li],
                     result.mean_mbps["greedy"][li],
                     result.mean_mbps["rssi"][li],
                     f"{result.wolt_retention[li]:.0%}"))
    out = ["Estimation-noise robustness (mean aggregate Mbps, "
           "decide on noisy estimates / score on truth)"]
    out.append(format_rows(
        ["noise", "WOLT", "Greedy", "RSSI", "WOLT retention"], rows))
    return "\n".join(out)
