"""Parameter sweeps: where WOLT's advantage grows, shrinks, and crosses.

The paper evaluates two operating points (3 ext / 7 users and 15 ext /
36-124 users).  These sweeps chart the space between and around them:

* :func:`sweep_extenders` — WOLT/Greedy ratio vs extender count (the
  advantage grows with |A| under the fixed law: more time slices for
  Greedy to strand).
* :func:`sweep_users` — ratio vs population at fixed |A| (the paper's
  Fig. 6b trajectory, generalized).
* :func:`sweep_plc_quality` — ratio vs the PLC capacity range: when the
  backhaul stops being the bottleneck, association stops mattering and
  the policies converge (the crossover).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.baselines import greedy_assignment, rssi_assignment
from ..core.problem import Scenario
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.topology import enterprise_floor
from ..sim.checkpoint import (FingerprintMismatch, atomic_write_json,
                              fingerprint)
from ..testbed.calibration import sample_isolation_capacities
from ..wifi.phy import WifiPhy
from .common import format_rows

__all__ = ["SweepResult", "sweep_extenders", "sweep_users",
           "sweep_plc_quality", "save_sweep_result",
           "load_sweep_result", "main"]


@dataclass(frozen=True)
class SweepResult:
    """One sweep's series.

    Attributes:
        parameter: the swept parameter's name.
        values: the parameter values.
        ratio_wolt_greedy: mean WOLT/Greedy aggregate ratio per value.
        ratio_wolt_rssi: mean WOLT/RSSI aggregate ratio per value.
    """

    parameter: str
    values: Tuple[float, ...]
    ratio_wolt_greedy: Tuple[float, ...]
    ratio_wolt_rssi: Tuple[float, ...]


def _spawn_streams(seed: int, n_trials: int
                   ) -> "Tuple[List[np.random.SeedSequence], List[np.random.SeedSequence]]":
    """Paired per-trial child streams for scenarios and arrival orders.

    Both sets are spawned from one ``SeedSequence(seed)`` root (spawn
    state advances between the two calls, so the sets are disjoint).
    Each sweep reuses the same children across its swept values, keeping
    the design paired: value ``k`` and value ``k+1`` see the same
    scenario randomness, so their ratio difference is attributable to
    the parameter.
    """
    root = np.random.SeedSequence(seed)
    return root.spawn(n_trials), root.spawn(n_trials)


def _ratios_for(scenarios: "Sequence[Scenario]",
                order_seqs: "Sequence[np.random.SeedSequence]"
                ) -> Tuple[float, float]:
    wg, wr = [], []
    for scenario, order_seq in zip(scenarios, order_seqs):
        rng = np.random.default_rng(order_seq)
        wolt = solve_wolt(scenario, plc_mode="fixed").aggregate_throughput
        greedy = evaluate(scenario,
                          greedy_assignment(
                              scenario,
                              rng.permutation(scenario.n_users)),
                          plc_mode="fixed").aggregate
        rssi = evaluate(scenario, rssi_assignment(scenario),
                        plc_mode="fixed").aggregate
        wg.append(wolt / greedy)
        wr.append(wolt / rssi)
    return float(np.mean(wg)), float(np.mean(wr))


def sweep_extenders(extender_counts: Sequence[int] = (3, 6, 9, 12, 15),
                    n_users: int = 36, n_trials: int = 6,
                    seed: int = 0) -> SweepResult:
    """WOLT's advantage vs extender count."""
    scenario_seqs, order_seqs = _spawn_streams(seed, n_trials)
    wg_series, wr_series = [], []
    for n_ext in extender_counts:
        scenarios = [enterprise_floor(n_ext, n_users,
                                      np.random.default_rng(
                                          scenario_seqs[t]))
                     for t in range(n_trials)]
        wg, wr = _ratios_for(scenarios, order_seqs)
        wg_series.append(wg)
        wr_series.append(wr)
    return SweepResult(parameter="n_extenders",
                       values=tuple(float(x) for x in extender_counts),
                       ratio_wolt_greedy=tuple(wg_series),
                       ratio_wolt_rssi=tuple(wr_series))


def sweep_users(user_counts: Sequence[int] = (15, 36, 60, 90, 124),
                n_extenders: int = 15, n_trials: int = 6,
                seed: int = 0) -> SweepResult:
    """WOLT's advantage vs population size (generalized Fig. 6b)."""
    scenario_seqs, order_seqs = _spawn_streams(seed, n_trials)
    wg_series, wr_series = [], []
    for n_users in user_counts:
        scenarios = [enterprise_floor(n_extenders, n_users,
                                      np.random.default_rng(
                                          scenario_seqs[t]))
                     for t in range(n_trials)]
        wg, wr = _ratios_for(scenarios, order_seqs)
        wg_series.append(wg)
        wr_series.append(wr)
    return SweepResult(parameter="n_users",
                       values=tuple(float(x) for x in user_counts),
                       ratio_wolt_greedy=tuple(wg_series),
                       ratio_wolt_rssi=tuple(wr_series))


def sweep_plc_quality(capacity_scales: Sequence[float] = (0.5, 1.0, 2.0,
                                                          4.0, 8.0),
                      n_extenders: int = 10, n_users: int = 30,
                      n_trials: int = 6, seed: int = 0) -> SweepResult:
    """WOLT's advantage vs backhaul quality — the crossover sweep.

    Capacities are drawn from the calibrated 60-160 Mbps range, then
    scaled; at large scales the PLC stops binding (Ethernet-like
    backhaul) and the association policies converge toward parity.
    """
    phy = WifiPhy()
    scenario_seqs, order_seqs = _spawn_streams(seed, n_trials)
    wg_series, wr_series = [], []
    for scale in capacity_scales:
        scenarios = []
        for t in range(n_trials):
            rng = np.random.default_rng(scenario_seqs[t])
            base = enterprise_floor(n_extenders, n_users, rng, phy=phy)
            caps = sample_isolation_capacities(n_extenders, rng) * scale
            scenarios.append(Scenario(wifi_rates=base.wifi_rates,
                                      plc_rates=caps))
        wg, wr = _ratios_for(scenarios, order_seqs)
        wg_series.append(wg)
        wr_series.append(wr)
    return SweepResult(parameter="plc_capacity_scale",
                       values=tuple(float(x) for x in capacity_scales),
                       ratio_wolt_greedy=tuple(wg_series),
                       ratio_wolt_rssi=tuple(wr_series))


def save_sweep_result(path: Union[str, Path], result: SweepResult,
                      seed: int, n_trials: int) -> None:
    """Atomically persist one sweep's series with its fingerprint.

    The file is written through the atomic helper (temp file +
    ``os.replace``), so a crash mid-write leaves either the previous
    file or the new one — never a torn JSON document.
    """
    digest = fingerprint({"kind": "sweep", "parameter": result.parameter,
                          "seed": int(seed), "n_trials": int(n_trials)})
    atomic_write_json(path, {"version": 1, "kind": "sweep",
                             "fingerprint": digest,
                             "seed": int(seed),
                             "n_trials": int(n_trials),
                             "result": asdict(result)})


def load_sweep_result(path: Union[str, Path], parameter: str,
                      seed: int, n_trials: int) -> SweepResult:
    """Load a persisted sweep, rejecting mismatched parameters loudly."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "sweep" or payload.get("version") != 1:
        raise ValueError(f"{path} is not a version-1 sweep result")
    expected = fingerprint({"kind": "sweep", "parameter": parameter,
                            "seed": int(seed),
                            "n_trials": int(n_trials)})
    if payload.get("fingerprint") != expected:
        raise FingerprintMismatch(
            f"{path} was produced by a sweep with different parameters "
            f"(stored fingerprint {payload.get('fingerprint')!r}, "
            f"expected {expected!r}); refusing to merge it")
    raw = payload["result"]
    return SweepResult(parameter=raw["parameter"],
                       values=tuple(raw["values"]),
                       ratio_wolt_greedy=tuple(raw["ratio_wolt_greedy"]),
                       ratio_wolt_rssi=tuple(raw["ratio_wolt_rssi"]))


def main(seed: int = 0, n_trials: int = 6,
         checkpoint_dir: Optional[Union[str, Path]] = None,
         resume: bool = False) -> str:
    """Run all three sweeps and format the series.

    With ``checkpoint_dir`` set, each finished sweep is persisted
    atomically to ``sweep_<parameter>.json``; with ``resume`` a
    persisted sweep (matching seed and trial count) is loaded instead
    of recomputed, so a killed run only repeats its unfinished sweep.
    """
    out = []
    sweep_fns = [("extender count",
                  lambda: sweep_extenders(seed=seed, n_trials=n_trials)),
                 ("user count",
                  lambda: sweep_users(seed=seed, n_trials=n_trials)),
                 ("PLC capacity scale",
                  lambda: sweep_plc_quality(seed=seed,
                                            n_trials=n_trials))]
    parameters = ("n_extenders", "n_users", "plc_capacity_scale")
    directory = None if checkpoint_dir is None else Path(checkpoint_dir)
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
    for (name, run_sweep), parameter in zip(sweep_fns, parameters):
        path = (None if directory is None
                else directory / f"sweep_{parameter}.json")
        if resume and path is not None and path.exists():
            sweep = load_sweep_result(path, parameter, seed, n_trials)
        else:
            sweep = run_sweep()
            if path is not None:
                save_sweep_result(path, sweep, seed, n_trials)
        out.append(f"Sweep over {name} "
                   "(mean aggregate ratios, paper-model scoring)")
        out.append(format_rows(
            [sweep.parameter, "WOLT/Greedy", "WOLT/RSSI"],
            [(v, wg, wr) for v, wg, wr in
             zip(sweep.values, sweep.ratio_wolt_greedy,
                 sweep.ratio_wolt_rssi)]))
        out.append("")
    return "\n".join(out)
