"""Campus layer: fleets of buildings served by one association service.

The paper's CentralController (§IV) is a per-site controller; this
package scales it to an operator's whole building fleet:

* :mod:`repro.fleet.spec` — declarative YAML fleet specs (explicit
  buildings plus ``generate`` blocks, so a 1000-building campus stays a
  ten-line file);
* :mod:`repro.fleet.sharding` — connected-component splitting of a
  building's extender set into independent PLC segments over the
  wiring/interference graph, with bit-identical scatter/gather;
* :mod:`repro.fleet.service` — :class:`~repro.fleet.service.FleetService`,
  the epoch loop behind ``wolt serve``: per-building telemetry,
  :class:`~repro.core.health.HealthMonitor` quarantine,
  :class:`~repro.core.guard.DecisionGuard` validation, shard solves
  dispatched through :func:`repro.sim.dispatch.run_chunked`, directive
  previews (dry-run) and per-epoch JSONL journaling — plus per-shard
  deadlines, worker retry budgets and per-building circuit breakers
  (degraded, never stalled);
* :mod:`repro.fleet.chaos` — seeded fleet-level fault storms
  (telemetry blackouts, shard crashes, slow-shard hangs) behind
  ``wolt serve --chaos`` and the CI acceptance gate
  (``python -m repro.fleet.chaos``);
* :mod:`repro.fleet.ingest` — the recorded-telemetry boundary:
  versioned checksummed JSONL streams (``wolt record`` / ``wolt serve
  --from``), strict per-record validation with dead-letter quarantine,
  the :class:`~repro.fleet.ingest.TelemetrySource` seam, and the
  corruption fuzz gate (``python -m repro.fleet.ingest``).
"""

from .chaos import FleetFaultModel, ShardFaultPlan, tear_journal_tail
from .ingest import (DeadLetterJournal, IngestError, RecordedTelemetry,
                     StreamHeaderError, StreamIntegrityError,
                     SyntheticTelemetry, TelemetryRecord,
                     TelemetrySource, mutate_stream, read_stream,
                     record_stream, write_stream)
from .service import (BuildingEpoch, Directive, EpochReport, FleetService,
                      format_epoch)
from .sharding import (Segment, coupling_components, scatter_assignment,
                       solve_segments_reference, split_segments)
from .spec import (BuildingSpec, FleetSpec, HealthSettings,
                   TelemetryModel, load_fleet_spec, parse_fleet_spec)

__all__ = [
    "BuildingEpoch",
    "BuildingSpec",
    "DeadLetterJournal",
    "Directive",
    "EpochReport",
    "FleetFaultModel",
    "FleetService",
    "FleetSpec",
    "HealthSettings",
    "IngestError",
    "RecordedTelemetry",
    "Segment",
    "ShardFaultPlan",
    "StreamHeaderError",
    "StreamIntegrityError",
    "SyntheticTelemetry",
    "TelemetryModel",
    "TelemetryRecord",
    "TelemetrySource",
    "coupling_components",
    "format_epoch",
    "load_fleet_spec",
    "mutate_stream",
    "parse_fleet_spec",
    "read_stream",
    "record_stream",
    "scatter_assignment",
    "solve_segments_reference",
    "split_segments",
    "tear_journal_tail",
    "write_stream",
]
