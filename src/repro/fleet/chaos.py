"""Fleet-level chaos engineering for ``wolt serve``.

``wolt chaos`` (:mod:`repro.experiments.chaos`) torments a *single*
scenario's control loop; this module torments the whole campus.  A
:class:`FleetFaultModel` composes three fleet-layer fault families on
top of the spec's ordinary telemetry noise:

* **telemetry blackout** — a building's epoch report is lost in
  transit; the service must keep deciding from the last report it has
  (drawn per ``(building, epoch)`` from seed stream 2, so replay sees
  the same blackouts);
* **shard worker crash** — a shard solve raises
  :class:`~repro.sim.faults.InjectedCrash` for its first
  ``crash_attempts`` attempts (the existing
  :class:`~repro.sim.faults.CrashSchedule` hook), exercising the
  worker-side retry budget;
* **slow-shard hang** — a shard solve sleeps ``hang_s`` (effectively
  forever), exercising the per-shard ``timeout_s`` deadline: the pool
  supervisor reaps it as a :data:`~repro.sim.dispatch.TIMEOUT_ERROR_TYPE`
  :class:`~repro.sim.dispatch.WorkFailure`, and the serial path
  synthesizes the identical failure without sleeping (the plan is drawn
  parent-side), so serial and pooled chaos runs stay bit-identical.

Shard faults for an epoch are drawn parent-side from seed stream 3
(``spawn_key=(epoch, 0, 3)``), independent of topology (stream
``(building, 0)``), telemetry (``(building, epoch, 1)``) and blackouts
(``(building, epoch, 2)``).

Everything is a pure function of ``(spec.seed, model, epoch)`` — a
chaos run is exactly as reproducible as a clean one, and a model with
all rates at zero is *bit-identical* to no model at all (enforced by
the acceptance gate below and by keeping trivial models out of the
journal fingerprint).

``python -m repro.fleet.chaos`` runs the CI acceptance gate:
composed faults, epochs atomic (journal torn-tail + resume
byte-identity), serial == pooled, every faulted building recovered
within the probation window after faults clear, zero-fault identity.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..sim.faults import CrashSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec imports us)
    from .spec import FleetSpec

__all__ = ["FleetFaultModel", "ShardFaultPlan", "acceptance_failures",
           "gate_spec", "main", "tear_journal_tail"]

#: SeedSequence spawn-key stream tags used by the fleet layer.  0 is
#: topology ``(building, 0)``, 1 is telemetry ``(building, epoch, 1)``.
BLACKOUT_STREAM = 2
SHARD_FAULT_STREAM = 3


@dataclass(frozen=True)
class ShardFaultPlan:
    """The faults drawn for one epoch's shard batch (parent-side).

    Attributes:
        crashed: shard indices whose solve raises ``InjectedCrash`` for
            the model's ``crash_attempts`` attempts.
        hung: shard indices whose solve hangs for ``hang_s`` (to be
            reaped by the dispatch deadline, or synthesized as a
            timeout failure on the serial path).
        schedule: the picklable worker-side hook implementing the plan
            (``None`` when the plan is empty).
    """

    crashed: Tuple[int, ...]
    hung: Tuple[int, ...]
    schedule: Optional[CrashSchedule]

    @property
    def empty(self) -> bool:
        return not self.crashed and not self.hung


@dataclass(frozen=True)
class FleetFaultModel:
    """A seeded, spec-declarable composition of fleet-layer faults.

    All rates are per-epoch probabilities; ``until_epoch`` bounds the
    storm (faults are only drawn for epochs ``< until_epoch``), which
    is what lets the acceptance gate assert recovery after the storm
    clears.

    Attributes:
        blackout_prob: per-building chance an epoch's telemetry report
            is lost (the service re-decides from its previous report).
        crash_prob: per-shard chance the solve crashes for
            ``crash_attempts`` attempts before succeeding.
        crash_attempts: attempts consumed by an injected crash — set it
            above the retry budget to force a :class:`WorkFailure`.
        hang_prob: per-shard chance the solve hangs for ``hang_s``.
        hang_s: the hang duration (effectively forever by default).
        until_epoch: first epoch the storm no longer touches
            (``None`` = the storm never clears).
    """

    blackout_prob: float = 0.0
    crash_prob: float = 0.0
    crash_attempts: int = 1
    hang_prob: float = 0.0
    hang_s: float = 3600.0
    until_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("blackout_prob", "crash_prob", "hang_prob"):
            rate = float(getattr(self, name))
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got "
                    f"{rate!r}")
        if self.crash_prob + self.hang_prob > 1.0:
            raise ValueError(
                "crash_prob + hang_prob must not exceed 1 (a shard "
                "draws one uniform and the faults are exclusive)")
        if self.crash_attempts < 1:
            raise ValueError("crash_attempts must be >= 1")
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")
        if self.until_epoch is not None and self.until_epoch < 0:
            raise ValueError("until_epoch must be >= 0")

    @classmethod
    def from_level(cls, level: float,
                   until_epoch: Optional[int] = None
                   ) -> "FleetFaultModel":
        """The ``wolt serve --chaos <level>`` storm, ``level`` in [0, 1].

        ``crash_attempts=2`` deliberately exceeds the default retry
        budget of 1, so crashes at any level exercise the carry-forward
        path, not just the retry path.
        """
        if not 0.0 <= level <= 1.0:
            raise ValueError(
                f"chaos level must be in [0, 1], got {level!r}")
        return cls(blackout_prob=level / 4.0,
                   crash_prob=level / 3.0,
                   crash_attempts=2,
                   hang_prob=level / 6.0,
                   until_epoch=until_epoch)

    @property
    def trivial(self) -> bool:
        """True when the model can never fire (all rates zero)."""
        return (self.blackout_prob == 0.0 and self.crash_prob == 0.0
                and self.hang_prob == 0.0)

    def active(self, epoch: int) -> bool:
        """Whether the storm touches this epoch at all."""
        if self.trivial:
            return False
        return self.until_epoch is None or epoch < self.until_epoch

    def params(self) -> Dict[str, Any]:
        """JSON-serializable echo for checkpoint fingerprinting."""
        return {"blackout_prob": self.blackout_prob,
                "crash_prob": self.crash_prob,
                "crash_attempts": self.crash_attempts,
                "hang_prob": self.hang_prob,
                "hang_s": self.hang_s,
                "until_epoch": self.until_epoch}

    # ------------------------------------------------------------------
    # drawing (pure in (seed, epoch))

    def blackout(self, seed: int, building: int, epoch: int) -> bool:
        """Whether this building's report for this epoch is lost."""
        if not self.active(epoch) or self.blackout_prob <= 0.0:
            return False
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=seed, spawn_key=(building, epoch, BLACKOUT_STREAM)))
        return bool(rng.random() < self.blackout_prob)

    def shard_plan(self, seed: int, epoch: int,
                   n_shards: int) -> ShardFaultPlan:
        """Draw this epoch's shard faults (one uniform per shard).

        The split is exclusive: a shard either crashes, hangs, or runs
        clean — never two faults at once.
        """
        if not self.active(epoch) or n_shards == 0 or (
                self.crash_prob <= 0.0 and self.hang_prob <= 0.0):
            return ShardFaultPlan(crashed=(), hung=(), schedule=None)
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=seed, spawn_key=(epoch, 0, SHARD_FAULT_STREAM)))
        draws = rng.random(n_shards)
        crashed = tuple(int(i) for i in
                        np.flatnonzero(draws < self.crash_prob))
        hung = tuple(int(i) for i in np.flatnonzero(
            (draws >= self.crash_prob)
            & (draws < self.crash_prob + self.hang_prob)))
        if not crashed and not hung:
            return ShardFaultPlan(crashed=(), hung=(), schedule=None)
        schedule = CrashSchedule(
            crashes={i: self.crash_attempts for i in crashed},
            hangs={i: 1 for i in hung},
            hang_s=self.hang_s)
        return ShardFaultPlan(crashed=crashed, hung=hung,
                              schedule=schedule)


def tear_journal_tail(path: Union[str, Path]) -> None:
    """Simulate a crash mid-append: leave a torn partial record.

    Appends an incomplete JSONL line with no trailing newline — the
    exact on-disk shape of a process killed inside ``write()`` —
    which :class:`~repro.sim.checkpoint.TrialStore` recovery must heal
    by truncating back to the last complete record.
    """
    with open(path, "ab") as handle:
        handle.write(b'{"kind": "record", "index": 9999, "payl')


# ---------------------------------------------------------------------------
# The acceptance gate (CI-blocking; ``python -m repro.fleet.chaos``).


def gate_spec(seed: int = 73) -> "FleetSpec":
    """The small fixed fleet the acceptance gate torments.

    Telemetry has jitter but no dropout: extender-health chaos is
    ``wolt chaos``'s job; this gate isolates the *fleet*-layer fault
    machinery (blackouts, shard crashes, hangs, breakers) so the
    recovery check can demand exact convergence with the clean twin.
    """
    from .spec import (BuildingSpec, FleetSpec, HealthSettings,
                       TelemetryModel)
    return FleetSpec(
        name="chaos-gate",
        seed=seed,
        plc_mode="redistribute",
        buildings=(
            BuildingSpec(name="hq", n_extenders=4, n_users=8,
                         circuits=("a", "a", "b", "b")),
            BuildingSpec(name="lab", n_extenders=3, n_users=6),
            BuildingSpec(name="dorm", n_extenders=3, n_users=5),
        ),
        telemetry=TelemetryModel(wifi_jitter=0.02, plc_jitter=0.05,
                                 dropout=0.0),
        # breaker_strikes=1 = hair-trigger breakers: any failed epoch
        # trips one, so the storm exercises the full trip -> skip ->
        # probe -> close cycle instead of needing an unlucky streak.
        health=HealthSettings(probation_epochs=2, retry_budget=1,
                              breaker_strikes=1,
                              breaker_probation_epochs=2))


def _storm_landed(model: FleetFaultModel, spec: "FleetSpec",
                  epochs: int, n_shard_failures: int,
                  n_shard_timeouts: int) -> List[str]:
    """The gate must not pass vacuously: every fault family fired."""
    problems: List[str] = []
    blackouts = sum(
        model.blackout(spec.seed, b, e)
        for b in range(spec.n_buildings) for e in range(epochs))
    if blackouts == 0:
        problems.append("storm drew zero telemetry blackouts "
                        "(vacuous gate; raise level or epochs)")
    if n_shard_failures == 0:
        problems.append("storm produced zero shard failures "
                        "(vacuous gate; raise level or epochs)")
    if n_shard_timeouts == 0:
        problems.append("storm produced zero shard timeouts — the "
                        "deadline-reap path went unexercised "
                        "(vacuous gate; raise level or epochs)")
    return problems


def acceptance_failures(level: float = 0.6, epochs: int = 12,
                        clear_after: int = 5,
                        timeout_s: float = 5.0,
                        workers: int = 2) -> List[str]:
    """Run the fleet chaos gate; empty list = acceptance PASS.

    Checks, in order:

    1. a zero-fault chaos run is bit-identical to a clean run;
    2. under the composed storm every epoch completes within its
       deadline budget (hung shards are reaped, never awaited);
    3. serial and pooled chaos runs are bit-identical;
    4. every faulted building recovers to the clean twin's exact
       state within the probation window after the storm clears;
    5. epochs are atomic: a chaos run journaled, torn mid-record and
       resumed snapshots byte-identical to an uninterrupted one.
    """
    from .service import FleetService, format_epoch
    if epochs <= clear_after:
        raise ValueError("epochs must exceed clear_after (the gate "
                         "needs post-storm epochs to check recovery)")
    failures: List[str] = []
    spec = gate_spec()
    model = FleetFaultModel.from_level(level, until_epoch=clear_after)

    # Clean twin: the reference the chaotic runs must converge to.
    clean = FleetService(spec)
    clean_texts: List[str] = []
    for _ in range(epochs):
        clean_report = clean.run_epoch()
        assert clean_report is not None
        clean_texts.append(format_epoch(clean_report))

    # 1. Zero-fault identity (the chaos plumbing itself must be free).
    zero = FleetService(spec, fault_model=FleetFaultModel())
    for e in range(epochs):
        zero_report = zero.run_epoch()
        assert zero_report is not None
        if format_epoch(zero_report) != clean_texts[e]:
            failures.append(
                f"zero-fault chaos run diverged from the clean run "
                f"at epoch {e}")
            break

    # 2. + 4. Serial chaotic run: storm lands, then full recovery.
    serial = FleetService(spec, fault_model=model)
    serial_texts: List[str] = []
    n_shard_failures = 0
    n_shard_timeouts = 0
    n_breaker_trips = 0
    for e in range(epochs):
        report = serial.run_epoch()
        assert report is not None
        serial_texts.append(format_epoch(report))
        n_shard_failures += report.n_shard_failures
        n_shard_timeouts += report.n_shard_timeouts
        n_breaker_trips += sum(1 for b in report.buildings
                               if b.breaker_open)
    failures.extend(_storm_landed(model, spec, clear_after,
                                  n_shard_failures,
                                  n_shard_timeouts))
    if n_breaker_trips == 0:
        failures.append("storm never tripped a circuit breaker "
                        "(vacuous gate; raise level or epochs)")
    if serial_texts[-1] != clean_texts[-1]:
        failures.append(
            f"faulted fleet did not recover to the clean twin within "
            f"{epochs - clear_after} epochs of the storm clearing")

    # 2. + 3. Pooled chaotic run: real hangs reaped by the deadline,
    # bit-identical to the serial synthesis, epochs time-bounded.
    pooled = FleetService(spec, workers=workers, timeout_s=timeout_s,
                          fault_model=model)
    # Generous per-epoch bound: every shard could hang (each costs one
    # timeout to reap) and CI boxes are slow — but a single un-reaped
    # hang_s sleep (3600 s) still blows it by an order of magnitude.
    budget_s = 120.0 + timeout_s * 8
    for e in range(epochs):
        started = time.monotonic()
        pooled_report = pooled.run_epoch()
        elapsed = time.monotonic() - started
        assert pooled_report is not None
        if elapsed > budget_s:
            failures.append(
                f"epoch {e} took {elapsed:.1f}s, over its "
                f"{budget_s:.1f}s deadline budget (hung shard not "
                f"reaped?)")
        if format_epoch(pooled_report) != serial_texts[e]:
            failures.append(
                f"pooled chaos run diverged from the serial run at "
                f"epoch {e}")
            break

    # 5. Atomicity: journal + torn tail + resume == uninterrupted.
    with tempfile.TemporaryDirectory() as tmp:
        full_path = os.path.join(tmp, "full.jsonl")
        with FleetService(spec, journal=full_path,
                          fault_model=model) as full:
            full.run(epochs)
        torn_path = os.path.join(tmp, "torn.jsonl")
        with FleetService(spec, journal=torn_path,
                          fault_model=model) as first:
            first.run(clear_after)
        tear_journal_tail(torn_path)
        with FleetService(spec, journal=torn_path, resume=True,
                          fault_model=model) as resumed:
            resumed.run(epochs - clear_after)
        full_bytes = Path(full_path).read_bytes()
        torn_bytes = Path(torn_path).read_bytes()
        if full_bytes != torn_bytes:
            failures.append(
                "torn + resumed chaos journal is not byte-identical "
                "to the uninterrupted journal (epochs not atomic)")
    return failures


def main() -> int:
    """CI entry point: print the verdict, exit 1 on acceptance FAIL."""
    failures = acceptance_failures()
    print("fleet chaos gate: composed storm (blackout + crash + hang) "
          "with recovery, identity and atomicity checks")
    for problem in failures:
        print(f"  FAIL: {problem}")
    verdict = "FAIL" if failures else "PASS"
    print(f"ACCEPTANCE: {verdict}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
