"""Recorded telemetry ingestion: the input boundary of ``wolt serve``.

Until this module existed, :class:`~repro.fleet.service.FleetService`
only ever consumed telemetry synthesized inside the process — the one
place a real deployment is *guaranteed* to differ.  Device-reported
scan/link records (Adame et al.'s 802.11k/v steering reports, Ali et
al.'s enterprise PLC measurements) arrive malformed, duplicated,
stale, out of order, and occasionally torn mid-byte.  This module
makes that boundary explicit and hostile-input-proof:

* **Stream format** — a versioned, checksummed JSONL telemetry stream:
  one signed header (format name, schema version, epoch window, and a
  fingerprint binding the stream to the spec's telemetry-relevant
  half), then one :class:`TelemetryRecord` line per ``(building,
  epoch)`` with a CRC-32 over its canonical JSON body.  NaN (a dropped
  PLC probe) is encoded as ``null`` so every line is strict JSON.
* **``wolt record``** — :func:`record_stream` runs a fleet spec's
  telemetry synthesis (:func:`repro.fleet.spec.synthesize_observation`,
  a pure function of ``(seed, building, epoch)``) and emits the
  stream, bit-reproducibly: recording twice yields identical bytes.
* **``wolt serve --from``** — :class:`RecordedTelemetry` replays a
  stream through the :class:`TelemetrySource` seam in
  :class:`~repro.fleet.service.FleetService`.  A clean stream replays
  to a journal *byte-identical* to the synthetic run of the same
  spec/seed (JSON round-trips IEEE-754 doubles exactly).
* **Strict validation + dead-letter quarantine** — :func:`read_stream`
  classifies every dirty record (:data:`REJECT_CLASSES`: malformed
  JSON, checksum mismatch, unknown schema version, bad fields, unknown
  building, duplicates, out-of-order, stale epochs, missing records)
  into an append-only bounded :class:`DeadLetterJournal` with
  per-class counters.  ``strict=True`` fails fast on the first dirty
  record (:class:`StreamIntegrityError`); the default degrades
  gracefully — a dirty record's slot is simply *missing*, and the
  service falls back to the building's last-known-good report exactly
  like a chaos telemetry blackout, with per-epoch
  ``n_rejected_records``/per-class counts surfaced in
  :func:`~repro.fleet.service.format_epoch` and the epoch journal.
  Header damage is never degraded around: a stream whose envelope
  cannot be trusted raises :class:`StreamHeaderError` loudly.
* **Corruption fuzz gate** — :func:`mutate_stream` is a seeded
  corruption corpus (truncation, bit flips, field drops, type
  confusion, non-finite injection, duplication, reordering, staleness,
  interleaved garbage, version skew, header damage), and ``python -m
  repro.fleet.ingest`` is the CI-blocking acceptance gate: no crash on
  any mutated stream, clean-stream replay identity, every corruption
  class actually landing (vacuousness guards, as in
  :mod:`repro.fleet.chaos`), and torn-journal + resume byte-identity.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (IO, Any, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..core.problem import Scenario
from ..sim.checkpoint import (atomic_write_text, canonical_json,
                              fingerprint)
from .spec import (FleetSpec, build_building_scenario,
                   synthesize_observation)

__all__ = ["DeadLetterJournal", "IngestError", "Mutation",
           "MUTATION_KINDS", "RecordedStream", "RecordedTelemetry",
           "REJECT_CLASSES", "StreamHeaderError",
           "StreamIntegrityError", "SyntheticTelemetry",
           "TelemetryRecord", "TelemetrySource", "acceptance_failures",
           "main", "mutate_stream", "read_stream", "record_stream",
           "write_stream"]

#: Stream envelope identity: readers refuse anything else.
STREAM_FORMAT = "wolt-telemetry"
STREAM_VERSION = 1

# -- reject classes ----------------------------------------------------

MALFORMED = "malformed"
CHECKSUM_MISMATCH = "checksum-mismatch"
UNKNOWN_VERSION = "unknown-version"
BAD_FIELD = "bad-field"
UNKNOWN_BUILDING = "unknown-building"
DUPLICATE = "duplicate"
OUT_OF_ORDER = "out-of-order"
STALE_EPOCH = "stale-epoch"
MISSING_RECORD = "missing-record"

#: Every classification a record can land in.  The fuzz gate's
#: vacuousness guard requires each one to actually fire across the
#: corruption corpus.
REJECT_CLASSES = (MALFORMED, CHECKSUM_MISMATCH, UNKNOWN_VERSION,
                  BAD_FIELD, UNKNOWN_BUILDING, DUPLICATE, OUT_OF_ORDER,
                  STALE_EPOCH, MISSING_RECORD)


class IngestError(RuntimeError):
    """Base class for telemetry-ingestion failures."""


class StreamHeaderError(IngestError):
    """The stream envelope cannot be trusted (damaged/foreign header).

    Header damage is never degraded around: without an intact header
    there is no version, no epoch window, and no proof the stream was
    recorded from this spec, so *every* record is suspect.
    """


class StreamIntegrityError(IngestError):
    """Strict-mode fail-fast: the stream contains dirty records."""


class StreamExhausted(IngestError):
    """The service was asked to run past the recorded epoch window."""


# ---------------------------------------------------------------------------
# line signing: CRC-32 over the canonical JSON body.


def _crc32(body: str) -> str:
    return format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")


def _signed_line(entry: Mapping[str, Any]) -> str:
    """Canonical JSON line with a ``crc`` field over the rest."""
    body = dict(entry)
    body.pop("crc", None)
    crc = _crc32(canonical_json(body))
    body["crc"] = crc
    return canonical_json(body)


class _Reject(Exception):
    """Internal: one record's classification (class + human reason)."""

    def __init__(self, cls: str, reason: str,
                 epoch: Optional[int] = None) -> None:
        super().__init__(reason)
        self.cls = cls
        self.reason = reason
        self.epoch = epoch


def _verify_line(raw: str) -> Dict[str, Any]:
    """Parse one line and verify its checksum; raises :class:`_Reject`."""
    try:
        entry = json.loads(raw)
    except ValueError as exc:
        raise _Reject(MALFORMED, f"undecodable JSON: {exc}") from exc
    if not isinstance(entry, dict) or "kind" not in entry:
        raise _Reject(MALFORMED, "not a stream entry (no 'kind')")
    crc = entry.get("crc")
    if not isinstance(crc, str):
        raise _Reject(MALFORMED, "entry carries no 'crc' field")
    body = {k: v for k, v in entry.items() if k != "crc"}
    expected = _crc32(canonical_json(body))
    if crc != expected:
        raise _Reject(
            CHECKSUM_MISMATCH,
            f"crc {crc!r} does not match body ({expected!r})")
    return entry


def _finite_value(value: Any, what: str) -> float:
    # bool is an int subclass: a corrupted `true` must not parse as 1.0.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _Reject(BAD_FIELD,
                      f"{what} must be a number, got {value!r}")
    rate = float(value)
    if not np.isfinite(rate):
        raise _Reject(BAD_FIELD, f"{what} is non-finite ({rate!r})")
    if rate < 0:
        raise _Reject(BAD_FIELD, f"{what} is negative ({rate!r})")
    return rate


# ---------------------------------------------------------------------------
# the record.


_RECORD_KEYS = frozenset({"kind", "v", "crc", "building", "epoch",
                          "wifi", "plc"})


@dataclass(frozen=True)
class TelemetryRecord:
    """One building's telemetry for one epoch, as shipped on the wire.

    ``wifi`` is the drifted per-(user, extender) scan-rate matrix and
    ``plc`` the per-extender backhaul capacity probe vector; a NaN in
    ``plc`` is a dropped probe (encoded as ``null`` on the wire).
    Validation lives in :meth:`decode` — a record that constructs is a
    record the service can safely solve from.
    """

    building: str
    epoch: int
    wifi: np.ndarray
    plc: np.ndarray

    def __post_init__(self) -> None:
        if self.wifi.ndim != 2 or self.plc.ndim != 1:
            raise ValueError("wifi must be 2-D and plc 1-D")
        if self.wifi.shape[1] != self.plc.shape[0]:
            raise ValueError(
                f"wifi covers {self.wifi.shape[1]} extenders, plc "
                f"{self.plc.shape[0]}")
        if not np.all(np.isfinite(self.wifi) & (self.wifi >= 0)):
            raise ValueError("wifi rates must be finite and >= 0")
        finite = np.isfinite(self.plc)
        if not np.all(self.plc[finite] >= 0):
            raise ValueError("plc rates must be >= 0 where reported")

    def encode(self) -> str:
        """One checksummed, canonical JSONL line (see :meth:`decode`)."""
        plc: List[Optional[float]] = [
            None if not np.isfinite(v) else float(v)
            for v in self.plc.tolist()]
        entry: Dict[str, Any] = {
            "kind": "telemetry", "v": STREAM_VERSION,
            "building": self.building, "epoch": int(self.epoch),
            "wifi": [[float(v) for v in row]
                     for row in self.wifi.tolist()],
            "plc": plc}
        return _signed_line(entry)

    @classmethod
    def decode(cls, raw: str,
               shapes: Mapping[str, Tuple[int, int]]
               ) -> "TelemetryRecord":
        """Strictly parse and validate one wire line.

        ``shapes`` maps building name to ``(n_users, n_extenders)``.
        Raises the internal classification exception on *any*
        deviation — unknown keys included; forward compatibility is
        the schema version's job, not silent key tolerance.
        """
        entry = _verify_line(raw)
        kind = entry.get("kind")
        if kind != "telemetry":
            raise _Reject(BAD_FIELD,
                          f"unexpected entry kind {kind!r} mid-stream")
        if entry.get("v") != STREAM_VERSION:
            raise _Reject(UNKNOWN_VERSION,
                          f"unknown schema version {entry.get('v')!r} "
                          f"(this reader speaks v{STREAM_VERSION})")
        unknown = sorted(set(entry) - _RECORD_KEYS)
        if unknown:
            raise _Reject(BAD_FIELD, f"unknown keys {unknown}")
        building = entry.get("building")
        if not isinstance(building, str):
            raise _Reject(BAD_FIELD,
                          f"building must be a string, got "
                          f"{building!r}")
        epoch = entry.get("epoch")
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise _Reject(BAD_FIELD,
                          f"epoch must be an integer, got {epoch!r}")
        if building not in shapes:
            raise _Reject(UNKNOWN_BUILDING,
                          f"building {building!r} is not in the spec",
                          epoch=epoch)
        n_users, n_extenders = shapes[building]
        wifi_raw = entry.get("wifi")
        if (not isinstance(wifi_raw, list)
                or len(wifi_raw) != n_users
                or any(not isinstance(row, list)
                       or len(row) != n_extenders
                       for row in wifi_raw)):
            raise _Reject(BAD_FIELD,
                          f"wifi must be a {n_users}x{n_extenders} "
                          f"matrix for building {building!r}",
                          epoch=epoch)
        wifi = np.empty((n_users, n_extenders), dtype=float)
        for u, row in enumerate(wifi_raw):
            for e, value in enumerate(row):
                wifi[u, e] = _finite_value(
                    value, f"wifi[{u}][{e}]")
        plc_raw = entry.get("plc")
        if not isinstance(plc_raw, list) or len(plc_raw) != n_extenders:
            raise _Reject(BAD_FIELD,
                          f"plc must list {n_extenders} capacities "
                          f"for building {building!r}", epoch=epoch)
        plc = np.empty(n_extenders, dtype=float)
        for e, value in enumerate(plc_raw):
            plc[e] = (np.nan if value is None
                      else _finite_value(value, f"plc[{e}]"))
        return cls(building=building, epoch=epoch, wifi=wifi, plc=plc)


# ---------------------------------------------------------------------------
# dead-letter quarantine.


class DeadLetterJournal:
    """Append-only, bounded quarantine for rejected stream records.

    Every reject appends one fsynced JSONL entry (class, stream line
    number, reason, a truncated echo of the raw line) until
    ``capacity`` entries are on disk; further rejects only bump the
    counters (the journal is forensics, not a second copy of the
    corrupt stream).  :meth:`close` appends a summary entry with the
    per-class counts and how many entries were suppressed by the cap.
    """

    def __init__(self, path: Union[str, Path],
                 capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.path = Path(path)
        self.capacity = capacity
        self.counts: Dict[str, int] = {}
        self.suppressed = 0
        self._written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = open(self.path, "a",
                                               encoding="utf-8")

    def _append(self, entry: Mapping[str, Any]) -> None:
        if self._handle is None:
            raise IngestError(f"{self.path}: journal is closed")
        self._handle.write(canonical_json(entry) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def quarantine(self, cls: str, line: int, reason: str,
                   raw: str) -> None:
        """Journal one rejected record (bounded; counters always)."""
        self.counts[cls] = self.counts.get(cls, 0) + 1
        if self._written >= self.capacity:
            self.suppressed += 1
            return
        self._append({"kind": "dead-letter", "class": cls,
                      "line": line, "reason": reason,
                      "raw": raw[:200]})
        self._written += 1

    def close(self) -> None:
        if self._handle is None:
            return
        if self.counts:
            self._append({"kind": "summary", "counts": self.counts,
                          "suppressed": self.suppressed})
        self._handle.close()
        self._handle = None

    def __enter__(self) -> "DeadLetterJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# reading.


@dataclass(frozen=True)
class RecordedStream:
    """A validated telemetry stream, ready to replay.

    ``records`` is keyed by ``(building_index, epoch)``; ``rejects``
    maps each epoch of the declared window to its per-class reject
    counts (missing slots included), and ``counts`` is the stream-wide
    total.  A clean stream has empty ``rejects`` and ``counts``.
    """

    spec_fingerprint: str
    start_epoch: int
    epochs: int
    records: Dict[Tuple[int, int], TelemetryRecord]
    rejects: Dict[int, Dict[str, int]] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def end_epoch(self) -> int:
        """First epoch beyond the recorded window."""
        return self.start_epoch + self.epochs

    @property
    def clean(self) -> bool:
        return not self.counts


def _read_header(raw: str, spec: FleetSpec) -> Tuple[int, int]:
    """Validate the envelope; returns ``(start_epoch, epochs)``."""
    try:
        entry = _verify_line(raw)
    except _Reject as exc:
        raise StreamHeaderError(
            f"stream header is damaged ({exc.reason}); without a "
            "trusted envelope every record is suspect — re-record "
            "the stream") from exc
    if entry.get("kind") != "header":
        raise StreamHeaderError(
            f"stream does not start with a header "
            f"(got kind {entry.get('kind')!r})")
    if entry.get("format") != STREAM_FORMAT:
        raise StreamHeaderError(
            f"not a {STREAM_FORMAT} stream "
            f"(format {entry.get('format')!r})")
    if entry.get("version") != STREAM_VERSION:
        raise StreamHeaderError(
            f"unsupported stream version {entry.get('version')!r} "
            f"(this reader speaks v{STREAM_VERSION})")
    epochs = entry.get("epochs")
    start = entry.get("start_epoch", 0)
    for name, value in (("epochs", epochs), ("start_epoch", start)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise StreamHeaderError(
                f"header {name} must be an integer, got {value!r}")
    assert isinstance(epochs, int) and isinstance(start, int)
    if epochs < 1 or start < 0:
        raise StreamHeaderError(
            f"header declares an empty/negative window "
            f"(start_epoch={start}, epochs={epochs})")
    expected = fingerprint(spec.stream_params())
    if entry.get("spec") != expected:
        raise StreamHeaderError(
            f"stream was recorded from a different spec (stream "
            f"fingerprint {entry.get('spec')!r}, this spec "
            f"{expected!r}); telemetry would not match the "
            "topologies being served")
    return start, epochs


def read_stream(text: str, spec: FleetSpec, *, strict: bool = False,
                dead_letter: Optional[DeadLetterJournal] = None
                ) -> RecordedStream:
    """Parse, checksum, and classify a recorded telemetry stream.

    Graceful by default: every dirty record is classified into one of
    :data:`REJECT_CLASSES`, counted (per epoch and stream-wide),
    optionally quarantined into ``dead_letter``, and dropped — its
    slot is then a *missing record* the service degrades around.
    ``strict=True`` raises :class:`StreamIntegrityError` on the first
    dirty or missing record instead.  Header damage always raises
    :class:`StreamHeaderError` (see that class's rationale).
    """
    lines = text.split("\n")
    if not lines or not lines[0]:
        raise StreamHeaderError("stream is empty")
    start, epochs = _read_header(lines[0], spec)
    end = start + epochs
    shapes = {b.name: (b.n_users, b.n_extenders)
              for b in spec.buildings}
    index_of = {b.name: i for i, b in enumerate(spec.buildings)}
    records: Dict[Tuple[int, int], TelemetryRecord] = {}
    rejects: Dict[int, Dict[str, int]] = {}
    counts: Dict[str, int] = {}
    cursor = start  # highest accepted epoch so far (order check)

    def reject(cls: str, line_no: int, reason: str, raw: str,
               epoch: Optional[int] = None) -> None:
        if strict:
            raise StreamIntegrityError(
                f"stream line {line_no}: {cls}: {reason}")
        attributed = cursor if epoch is None else epoch
        attributed = min(max(attributed, start), end - 1)
        counts[cls] = counts.get(cls, 0) + 1
        per_epoch = rejects.setdefault(attributed, {})
        per_epoch[cls] = per_epoch.get(cls, 0) + 1
        if dead_letter is not None:
            dead_letter.quarantine(cls, line_no, reason, raw)

    for pos, raw in enumerate(lines[1:], start=2):
        if raw == "":
            if pos == len(lines):
                continue  # the clean trailing newline
            reject(MALFORMED, pos, "blank line mid-stream", raw)
            continue
        try:
            record = TelemetryRecord.decode(raw, shapes)
        except _Reject as exc:
            reject(exc.cls, pos, exc.reason, raw, epoch=exc.epoch)
            continue
        epoch = record.epoch
        if epoch < start:
            reject(STALE_EPOCH, pos,
                   f"epoch {epoch} predates the stream window "
                   f"(starts at {start})", raw, epoch=epoch)
            continue
        if epoch >= end:
            reject(BAD_FIELD, pos,
                   f"epoch {epoch} is beyond the declared window "
                   f"(ends at {end})", raw, epoch=epoch)
            continue
        key = (index_of[record.building], epoch)
        if key in records:
            reject(DUPLICATE, pos,
                   f"duplicate record for building "
                   f"{record.building!r} epoch {epoch}", raw,
                   epoch=epoch)
            continue
        if epoch < cursor:
            reject(OUT_OF_ORDER, pos,
                   f"epoch {epoch} arrived after the stream moved "
                   f"on to epoch {cursor}", raw, epoch=epoch)
            continue
        cursor = epoch
        records[key] = record
    for epoch in range(start, end):
        for name in sorted(index_of):
            if (index_of[name], epoch) not in records:
                reject(MISSING_RECORD, len(lines),
                       f"no record for building {name!r} epoch "
                       f"{epoch}", "", epoch=epoch)
    return RecordedStream(
        spec_fingerprint=fingerprint(spec.stream_params()),
        start_epoch=start, epochs=epochs, records=records,
        rejects=rejects, counts=counts)


# ---------------------------------------------------------------------------
# recording.


def record_stream(spec: FleetSpec, epochs: int,
                  start_epoch: int = 0) -> str:
    """Synthesize and serialize a telemetry stream (bit-reproducible).

    Telemetry is a pure function of ``(spec.seed, building, epoch)``,
    so recording needs no solves and recording twice yields identical
    bytes — the property the acceptance gate pins.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if start_epoch < 0:
        raise ValueError("start_epoch must be >= 0")
    header: Dict[str, Any] = {
        "kind": "header", "format": STREAM_FORMAT,
        "version": STREAM_VERSION, "epochs": epochs,
        "start_epoch": start_epoch,
        "spec": fingerprint(spec.stream_params()),
        "params": spec.stream_params()}
    lines = [_signed_line(header)]
    source = SyntheticTelemetry(spec)
    for epoch in range(start_epoch, start_epoch + epochs):
        for b, building in enumerate(spec.buildings):
            wifi, plc = source.observe(b, epoch)
            lines.append(TelemetryRecord(
                building=building.name, epoch=epoch, wifi=wifi,
                plc=plc).encode())
    return "\n".join(lines) + "\n"


def write_stream(path: Union[str, Path], spec: FleetSpec, epochs: int,
                 start_epoch: int = 0) -> int:
    """``wolt record``: atomically persist a stream; returns #records."""
    text = record_stream(spec, epochs, start_epoch=start_epoch)
    atomic_write_text(path, text)
    return epochs * spec.n_buildings


# ---------------------------------------------------------------------------
# the telemetry-source seam.


class TelemetrySource:
    """Where :class:`~repro.fleet.service.FleetService` gets telemetry.

    ``observe`` returns one epoch's raw report for one building —
    ``(wifi_obs, plc_obs)`` exactly as
    :func:`~repro.fleet.spec.synthesize_observation` shapes them — or
    ``None`` when the report is unavailable (dirty/missing record),
    in which case the service re-decides from the building's
    last-known-good report, like a chaos telemetry blackout.

    ``end_epoch`` is ``None`` for unbounded sources (synthetic) or the
    first epoch beyond the recorded window; ``epoch_rejects`` feeds
    the per-epoch degradation accounting in the epoch report/journal.
    """

    end_epoch: Optional[int] = None

    def observe(self, building: int, epoch: int
                ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        raise NotImplementedError

    def epoch_rejects(self, epoch: int) -> Dict[str, int]:
        return {}


class SyntheticTelemetry(TelemetrySource):
    """The in-process default: draw telemetry from the spec's model."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self._scenarios: Dict[int, Scenario] = {}

    def prime(self, building: int, true: Scenario) -> None:
        """Share an already-built topology (avoids a rebuild)."""
        self._scenarios[building] = true

    def _true(self, building: int) -> Scenario:
        if building not in self._scenarios:
            self._scenarios[building] = build_building_scenario(
                self.spec, building)
        return self._scenarios[building]

    def observe(self, building: int,
                epoch: int) -> Tuple[np.ndarray, np.ndarray]:
        return synthesize_observation(self.spec, self._true(building),
                                      building, epoch)


class RecordedTelemetry(TelemetrySource):
    """Replay a recorded stream (the engine of ``serve --from``)."""

    def __init__(self, stream: RecordedStream,
                 spec: FleetSpec) -> None:
        if stream.spec_fingerprint != fingerprint(
                spec.stream_params()):
            raise StreamHeaderError(
                "stream was validated against a different spec")
        self.stream = stream
        self.spec = spec
        self.end_epoch = stream.end_epoch

    @classmethod
    def load(cls, path: Union[str, Path], spec: FleetSpec, *,
             strict: bool = False,
             dead_letter: Optional[Union[str, Path]] = None,
             capacity: int = 256) -> "RecordedTelemetry":
        """Read + validate a stream file, quarantining dirty records.

        Bit flips can leave invalid UTF-8, so the file is decoded with
        replacement characters — the damaged line then classifies as
        malformed/checksum instead of crashing the reader.
        """
        text = Path(path).read_text(encoding="utf-8",
                                    errors="replace")
        journal = (DeadLetterJournal(dead_letter, capacity=capacity)
                   if dead_letter is not None else None)
        try:
            stream = read_stream(text, spec, strict=strict,
                                 dead_letter=journal)
        finally:
            if journal is not None:
                journal.close()
        return cls(stream, spec)

    @property
    def n_rejected(self) -> int:
        return sum(self.stream.counts.values())

    def observe(self, building: int, epoch: int
                ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        record = self.stream.records.get((building, epoch))
        if record is None:
            return None
        # Copies: the service composes Scenarios around these arrays,
        # and a replayed epoch must see pristine bytes.
        return record.wifi.copy(), record.plc.copy()

    def epoch_rejects(self, epoch: int) -> Dict[str, int]:
        return dict(self.stream.rejects.get(epoch, {}))


# ---------------------------------------------------------------------------
# the corruption corpus.


@dataclass(frozen=True)
class Mutation:
    """One corrupted stream plus what the reader must do with it.

    ``expected`` lists the reject classes of which at least one must
    land (several mutations can legitimately classify two ways: a bit
    flip breaks either the checksum or the JSON).  ``header_damage``
    mutations must raise :class:`StreamHeaderError` instead.
    """

    kind: str
    text: str
    expected: Tuple[str, ...]
    header_damage: bool = False


MUTATION_KINDS = ("truncate", "bitflip", "garbage", "checksum",
                  "drop-field", "type-confusion", "nonfinite",
                  "negative", "unknown-building", "future-epoch",
                  "stale-epoch", "duplicate", "reorder", "version",
                  "header")


def _mutation_rng(kind: str, seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(
        entropy=seed, spawn_key=(MUTATION_KINDS.index(kind), 101)))


def _flip_bit(line: str, rng: np.random.Generator) -> str:
    """Flip one bit of one character, never into a newline."""
    pos = int(rng.integers(len(line)))
    for bit in range(7):
        flipped = chr(ord(line[pos]) ^ (1 << bit))
        if flipped not in ("\n", "\r"):
            return line[:pos] + flipped + line[pos + 1:]
    return line[:pos] + "?" + line[pos + 1:]  # pragma: no cover


def _resign(entry: Dict[str, Any]) -> str:
    return _signed_line(entry)


def mutate_stream(text: str, kind: str, seed: int) -> Mutation:
    """Apply one seeded corruption from the corpus to a clean stream.

    Field-level mutations (drop, type confusion, non-finite, range,
    building, epoch, version) re-sign the damaged record so its
    checksum stays valid — they exercise *validation*, not the CRC;
    ``bitflip``/``checksum``/``garbage``/``truncate`` exercise the
    envelope itself.
    """
    if kind not in MUTATION_KINDS:
        raise ValueError(f"unknown mutation kind {kind!r}; one of "
                         f"{MUTATION_KINDS}")
    rng = _mutation_rng(kind, seed)
    lines = text.rstrip("\n").split("\n")
    header, records = lines[0], lines[1:]
    if not records:
        raise ValueError("stream has no records to mutate")
    pick = int(rng.integers(len(records)))
    picked = json.loads(records[pick])

    def rebuilt(new_records: Sequence[str]) -> str:
        return "\n".join([header, *new_records]) + "\n"

    if kind == "truncate":
        # Cut somewhere in the record region: a torn tail and/or
        # missing records, the on-disk shape of a crashed recorder.
        floor = len(header) + 2
        cut = floor + int(rng.integers(max(len(text) - floor - 1, 1)))
        return Mutation(kind, text[:cut],
                        expected=(MALFORMED, MISSING_RECORD))
    if kind == "bitflip":
        records[pick] = _flip_bit(records[pick], rng)
        return Mutation(kind, rebuilt(records),
                        expected=(CHECKSUM_MISMATCH, MALFORMED))
    if kind == "garbage":
        junk = "telemetry? " + "".join(
            chr(33 + int(c)) for c in rng.integers(0, 90, size=24))
        at = int(rng.integers(len(records) + 1))
        records.insert(at, junk)
        return Mutation(kind, rebuilt(records), expected=(MALFORMED,))
    if kind == "checksum":
        picked["crc"] = "00000000"
        records[pick] = canonical_json(picked)
        return Mutation(kind, rebuilt(records),
                        expected=(CHECKSUM_MISMATCH,))
    if kind == "drop-field":
        del picked["plc"]
        records[pick] = _resign(picked)
        return Mutation(kind, rebuilt(records), expected=(BAD_FIELD,))
    if kind == "type-confusion":
        picked["wifi"] = "fast"
        records[pick] = _resign(picked)
        return Mutation(kind, rebuilt(records), expected=(BAD_FIELD,))
    if kind == "nonfinite":
        picked["plc"][0] = float("inf")
        records[pick] = _resign(picked)
        return Mutation(kind, rebuilt(records), expected=(BAD_FIELD,))
    if kind == "negative":
        picked["wifi"][0][0] = -5.0
        records[pick] = _resign(picked)
        return Mutation(kind, rebuilt(records), expected=(BAD_FIELD,))
    if kind == "unknown-building":
        picked["building"] = "phantom-" + str(picked["building"])
        records[pick] = _resign(picked)
        return Mutation(kind, rebuilt(records),
                        expected=(UNKNOWN_BUILDING,))
    if kind == "future-epoch":
        head = json.loads(header)
        picked["epoch"] = int(head["start_epoch"] + head["epochs"] + 7)
        records[pick] = _resign(picked)
        return Mutation(kind, rebuilt(records), expected=(BAD_FIELD,))
    if kind == "stale-epoch":
        # Shift the declared window forward: the first epoch's records
        # now predate it — the late-arrival shape of a live feed.
        head = json.loads(header)
        head["start_epoch"] = int(head["start_epoch"]) + 1
        return Mutation(kind,
                        "\n".join([_resign(head), *records]) + "\n",
                        expected=(STALE_EPOCH,))
    if kind == "duplicate":
        records.insert(pick + 1, records[pick])
        return Mutation(kind, rebuilt(records), expected=(DUPLICATE,))
    if kind == "reorder":
        epochs_at = [int(json.loads(line)["epoch"])
                     for line in records]
        later = [i for i, e in enumerate(epochs_at)
                 if e > epochs_at[0]]
        if not later:
            raise ValueError("reorder needs records from >= 2 epochs")
        j = later[int(rng.integers(len(later)))]
        i = int(rng.integers(j))
        records[i], records[j] = records[j], records[i]
        return Mutation(kind, rebuilt(records),
                        expected=(OUT_OF_ORDER,))
    if kind == "version":
        picked["v"] = 99
        records[pick] = _resign(picked)
        return Mutation(kind, rebuilt(records),
                        expected=(UNKNOWN_VERSION,))
    assert kind == "header"
    return Mutation(kind,
                    "\n".join([_flip_bit(header, rng), *records])
                    + "\n",
                    expected=(), header_damage=True)


# ---------------------------------------------------------------------------
# the acceptance gate (CI-blocking; ``python -m repro.fleet.ingest``).


def gate_spec(seed: int = 31) -> FleetSpec:
    """The small fleet the fuzz gate records and torments.

    Dropout is deliberately non-zero so the stream carries NaN probes
    (``null`` on the wire) — the encode/decode path for lost probes
    must survive the corpus too.
    """
    from .spec import (BuildingSpec, HealthSettings, TelemetryModel)
    return FleetSpec(
        name="ingest-gate",
        seed=seed,
        plc_mode="redistribute",
        buildings=(
            BuildingSpec(name="hq", n_extenders=4, n_users=8,
                         circuits=("a", "a", "b", "b")),
            BuildingSpec(name="lab", n_extenders=3, n_users=6),
            BuildingSpec(name="dorm", n_extenders=3, n_users=5),
        ),
        telemetry=TelemetryModel(wifi_jitter=0.02, plc_jitter=0.05,
                                 dropout=0.05),
        health=HealthSettings(probation_epochs=2, retry_budget=1))


def _journal_epochs(path: Path) -> List[Dict[str, Any]]:
    payloads: List[Dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        entry = json.loads(line)
        if entry.get("kind") == "record":
            payloads.append(entry["payload"])
    return payloads


def acceptance_failures(epochs: int = 5,
                        seeds: Sequence[int] = (0, 1, 2)
                        ) -> List[str]:
    """Run the ingestion fuzz gate; empty list = acceptance PASS.

    Checks, in order:

    1. recording is bit-reproducible (same spec/epochs, same bytes);
    2. clean-stream replay identity: ``wolt record`` then ``serve
       --from`` journals byte-identical to the synthetic run;
    3. no crash on any mutated stream: graceful reads classify, strict
       reads fail fast, header damage raises :class:`StreamHeaderError`,
       and the full service completes every epoch of every (non-header)
       corrupted stream with the degradation quantified in its journal;
    4. vacuousness guards: every corruption class actually landed;
    5. torn-journal + resume byte-identity for a recorded replay.
    """
    import tempfile

    from .chaos import tear_journal_tail
    from .service import FleetService, format_epoch
    failures: List[str] = []
    spec = gate_spec()
    clean = record_stream(spec, epochs)

    # 1. Bit-reproducible recording.
    if record_stream(spec, epochs) != clean:
        failures.append("recording the same spec twice produced "
                        "different bytes")

    # 2. Clean-stream replay identity (journal bytes + epoch text).
    with tempfile.TemporaryDirectory() as tmp:
        synth_path = os.path.join(tmp, "synthetic.jsonl")
        replay_path = os.path.join(tmp, "replay.jsonl")
        synth_texts: List[str] = []
        with FleetService(spec, journal=synth_path) as synth:
            for report in synth.run(epochs)[0]:
                synth_texts.append(format_epoch(report))
        source = RecordedTelemetry(
            read_stream(clean, spec), spec)
        replay_texts: List[str] = []
        with FleetService(spec, journal=replay_path,
                          source=source) as replay:
            for report in replay.run(epochs)[0]:
                replay_texts.append(format_epoch(report))
        if replay_texts != synth_texts:
            failures.append("clean-stream replay epoch reports "
                            "diverged from the synthetic run")
        if (Path(synth_path).read_bytes()
                != Path(replay_path).read_bytes()):
            failures.append("clean-stream replay journal is not "
                            "byte-identical to the synthetic run")

    # 3. + 4. The corruption corpus.
    landed: Dict[str, int] = {}
    for kind in MUTATION_KINDS:
        for seed in seeds:
            mutation = mutate_stream(clean, kind, seed)
            if mutation.header_damage:
                try:
                    read_stream(mutation.text, spec)
                except StreamHeaderError:
                    landed["header"] = landed.get("header", 0) + 1
                except Exception as exc:  # noqa: BLE001 - the gate's job
                    failures.append(
                        f"{kind}[{seed}]: header damage raised "
                        f"{type(exc).__name__} instead of "
                        f"StreamHeaderError: {exc}")
                else:
                    failures.append(
                        f"{kind}[{seed}]: header damage was not "
                        "detected (vacuous mutation)")
                continue
            try:
                stream = read_stream(mutation.text, spec)
            except Exception as exc:  # noqa: BLE001 - the gate's job
                failures.append(
                    f"{kind}[{seed}]: graceful read crashed with "
                    f"{type(exc).__name__}: {exc}")
                continue
            observed = set(stream.counts)
            if not observed:
                failures.append(
                    f"{kind}[{seed}]: corruption left no trace "
                    "(vacuous mutation)")
                continue
            if not observed & set(mutation.expected):
                failures.append(
                    f"{kind}[{seed}]: expected one of "
                    f"{mutation.expected}, observed "
                    f"{sorted(observed)}")
            for cls, n in stream.counts.items():
                landed[cls] = landed.get(cls, 0) + n
            try:
                read_stream(mutation.text, spec, strict=True)
            except StreamIntegrityError:
                pass
            except Exception as exc:  # noqa: BLE001 - the gate's job
                failures.append(
                    f"{kind}[{seed}]: strict read raised "
                    f"{type(exc).__name__} instead of "
                    f"StreamIntegrityError: {exc}")
            else:
                failures.append(
                    f"{kind}[{seed}]: strict mode accepted a dirty "
                    "stream")
        # Full service sweep, one seed per kind (no crash, every
        # epoch completes, degradation quantified in the journal).
        if kind == "header":
            continue
        mutation = mutate_stream(clean, kind, seeds[0])
        stream = read_stream(mutation.text, spec)
        with tempfile.TemporaryDirectory() as tmp:
            journal = Path(tmp) / "mutated.jsonl"
            try:
                with FleetService(
                        spec, journal=str(journal),
                        source=RecordedTelemetry(stream, spec)
                        ) as service:
                    reports, _ = service.run(stream.end_epoch)
            except Exception as exc:  # noqa: BLE001 - the gate's job
                failures.append(
                    f"{kind}: service crashed on the corrupted "
                    f"stream with {type(exc).__name__}: {exc}")
                continue
            if len(reports) != stream.end_epoch:
                failures.append(
                    f"{kind}: service completed {len(reports)} of "
                    f"{stream.end_epoch} epochs")
                continue
            if not all(np.isfinite(r.aggregate_mbps)
                       for r in reports):
                failures.append(
                    f"{kind}: non-finite aggregate leaked through "
                    "the ingest boundary")
            total = sum(r.n_rejected_records for r in reports)
            if total != sum(stream.counts.values()):
                failures.append(
                    f"{kind}: journaled reject count {total} != "
                    f"stream classification "
                    f"{sum(stream.counts.values())}")
            if total == 0:
                failures.append(
                    f"{kind}: degradation went unquantified "
                    "(0 rejects journaled for a dirty stream)")
            journaled = _journal_epochs(journal)
            if (len(journaled) != stream.end_epoch
                    or sum(p["n_rejected_records"]
                           for p in journaled) != total):
                failures.append(
                    f"{kind}: epoch journal does not carry the "
                    "reject accounting")
    missing_classes = [cls for cls in REJECT_CLASSES
                       if landed.get(cls, 0) == 0]
    if missing_classes:
        failures.append(
            f"corruption classes never landed: {missing_classes} "
            "(vacuous corpus; extend mutate_stream)")

    # 5. Torn journal + resume on a recorded replay.
    with tempfile.TemporaryDirectory() as tmp:
        stream = read_stream(clean, spec)
        full_path = os.path.join(tmp, "full.jsonl")
        with FleetService(spec, journal=full_path,
                          source=RecordedTelemetry(stream, spec)
                          ) as full:
            full.run(epochs)
        torn_path = os.path.join(tmp, "torn.jsonl")
        with FleetService(spec, journal=torn_path,
                          source=RecordedTelemetry(stream, spec)
                          ) as first:
            first.run(epochs - 2)
        tear_journal_tail(torn_path)
        with FleetService(spec, journal=torn_path, resume=True,
                          source=RecordedTelemetry(stream, spec)
                          ) as resumed:
            resumed.run(2)
        if (Path(full_path).read_bytes()
                != Path(torn_path).read_bytes()):
            failures.append(
                "torn + resumed replay journal is not byte-identical "
                "to the uninterrupted one (epochs not atomic)")
    return failures


def main() -> int:
    """CI entry point: print the verdict, exit 1 on acceptance FAIL."""
    failures = acceptance_failures()
    print("telemetry ingest gate: recorded-stream fuzzing "
          f"({len(MUTATION_KINDS)} corruption kinds) with replay "
          "identity, quarantine accounting and resume atomicity")
    for problem in failures:
        print(f"  FAIL: {problem}")
    verdict = "FAIL" if failures else "PASS"
    print(f"ACCEPTANCE: {verdict}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
