"""The fleet association service behind ``wolt serve``.

:class:`FleetService` runs the paper's epoch-driven reconfiguration
loop (Fig. 6b) across a whole campus.  Each epoch:

1. **Telemetry** — every building's scan/capacity stream drifts from
   its ground-truth rates under the spec's
   :class:`~repro.fleet.spec.TelemetryModel` (seeded per
   ``(building, epoch)``, so any epoch is reproducible in isolation);
   the building's :class:`~repro.core.health.HealthMonitor` folds in
   the PLC reports, and quarantined extenders are masked out of the
   solve exactly like dead ones
   (:func:`repro.sim.failures.fail_extenders` semantics).
2. **Sharding** — the effective scenario is split into independent PLC
   segments (:func:`repro.fleet.sharding.split_segments`); all shards
   of all buildings form one work batch.
3. **Dispatch** — shard solves run through the chunked warm-pool
   dispatch layer (:func:`repro.sim.dispatch.dispatch_chunked`, the
   machinery behind ``run_trials``), bit-identical to the serial
   reference for any worker/chunk count.  A shard whose worker died
   repeatedly is quarantined by the supervisor and its users simply
   keep their previous association — one poisoned building cannot take
   the campus down.
4. **Directives** — the per-building diff old → new is emitted as
   :class:`Directive` records with per-move expected aggregate deltas;
   ``dry_run`` previews them without applying anything.
5. **Journal** — applied epochs append one crash-consistent record to
   the :class:`~repro.sim.checkpoint.TrialStore` journal; resume
   replays telemetry deterministically and restores assignments, so a
   resumed service continues bit-identically.

Dry-run semantics: the world keeps turning (telemetry is ingested,
health state advances, the epoch counter increments) but **nothing is
applied** — associations stay as they were and the journal is not
written.  Repeated ``--dry-run`` epochs therefore preview what each
successive epoch *would* do against the frozen association state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.guard import DecisionGuard
from ..core.health import HealthMonitor
from ..core.problem import MIN_USABLE_RATE, UNASSIGNED, Scenario
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..sim.checkpoint import TrialStore, fingerprint
from ..sim.dispatch import (InterruptState, WorkFailure, WorkSpec,
                            dispatch_chunked)
from .sharding import Segment, split_segments
from .spec import FleetSpec, build_building_scenario

__all__ = ["BuildingEpoch", "Directive", "EpochReport", "FleetService",
           "format_epoch"]


@dataclass(frozen=True)
class Directive:
    """One association change the service wants to apply.

    Attributes:
        building: building name.
        user: building-local user index.
        old_extender: current extender
            (:data:`~repro.core.problem.UNASSIGNED` for a new
            placement).
        new_extender: target extender
            (:data:`~repro.core.problem.UNASSIGNED` detaches the
            user).
        delta_mbps: expected building-aggregate change from applying
            this directive, in the epoch's directive order.
    """

    building: str
    user: int
    old_extender: int
    new_extender: int
    delta_mbps: float


@dataclass(frozen=True)
class BuildingEpoch:
    """One building's slice of an epoch.

    ``delta_mbps`` compares the directives' outcome against keeping
    the previous association, both scored under *this* epoch's
    effective scenario (telemetry moved between epochs, so comparing
    against last epoch's aggregate would conflate drift with
    decisions).
    """

    building: str
    n_segments: int
    n_shard_failures: int
    quarantined: Tuple[int, ...]
    aggregate_mbps: float
    delta_mbps: float
    directives: Tuple[Directive, ...]


@dataclass(frozen=True)
class EpochReport:
    """Everything one epoch decided, across the fleet."""

    epoch: int
    buildings: Tuple[BuildingEpoch, ...]
    n_shards: int
    n_shard_failures: int
    aggregate_mbps: float
    delta_mbps: float
    applied: bool

    @property
    def directives(self) -> Tuple[Directive, ...]:
        return tuple(d for b in self.buildings for d in b.directives)


@dataclass(frozen=True)
class _ShardWork:
    """One shard solve: a building index plus its segment."""

    building: int
    segment: Segment


def _solve_shard(plc_mode: str, spec: WorkSpec) -> np.ndarray:
    """Worker-side shard solve (module-level, picklable).

    Returns the segment-local assignment; an empty segment (every
    serving extender quarantined away) short-circuits without a solve.
    """
    segment = spec.item.segment
    if segment.scenario.n_users == 0:
        return np.empty(0, dtype=int)
    return solve_wolt(segment.scenario, plc_mode=plc_mode).assignment


class _BuildingState:
    """Mutable per-building service state (one per spec building)."""

    def __init__(self, spec: FleetSpec, index: int) -> None:
        building = spec.buildings[index]
        self.index = index
        self.name = building.name
        self.circuits = building.circuits
        self.scenario = build_building_scenario(spec, index)
        self.health = HealthMonitor(
            building.n_extenders,
            flap_band=spec.health.flap_band,
            flap_strikes=spec.health.flap_strikes,
            probation_epochs=spec.health.probation_epochs)
        self.guard = DecisionGuard()
        self.assignment = np.full(building.n_users, UNASSIGNED,
                                  dtype=int)


class FleetService:
    """Campus-scale association service (the engine of ``wolt serve``).

    Args:
        spec: the parsed fleet specification.
        workers: worker processes for shard dispatch (``None``/0/1 =
            serial in-process; results are bit-identical either way).
        chunk_size: shards per dispatched chunk (``None`` = auto).
        journal: optional path of a crash-consistent JSONL epoch
            journal (:class:`~repro.sim.checkpoint.TrialStore`).
        resume: recover the journal and replay it so the service
            continues exactly where it stopped (requires ``journal``).
    """

    def __init__(self, spec: FleetSpec,
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 journal: Optional[str] = None,
                 resume: bool = False) -> None:
        if resume and journal is None:
            raise ValueError("resume requires a journal path")
        self.spec = spec
        self.workers = workers
        self.chunk_size = chunk_size
        self.epoch = 0
        self._buildings = [_BuildingState(spec, i)
                           for i in range(spec.n_buildings)]
        self._store: Optional[TrialStore] = None
        if journal is not None:
            params = spec.params()
            self._store = TrialStore(journal, fingerprint(params),
                                     params=params, resume=resume)
            if resume and self._store.records:
                self._replay(self._store.records)

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # telemetry

    def _telemetry_rng(self, building: int,
                       epoch: int) -> np.random.Generator:
        # Three-element spawn_key: topology uses (building, 0) (see
        # spec.build_building_scenario), so telemetry streams can
        # never alias it, and any epoch is addressable directly —
        # which is what makes journal replay bit-identical.
        return np.random.default_rng(np.random.SeedSequence(
            entropy=self.spec.seed, spawn_key=(building, epoch, 1)))

    def _observe(self, state: _BuildingState,
                 epoch: int) -> Tuple[Scenario, Tuple[int, ...]]:
        """Ingest one epoch of telemetry for one building.

        Draws the building's drifted scan/capacity reports, folds the
        PLC reports into the health monitor, and returns the
        *effective* scenario (last-known-good capacities, quarantined
        extenders masked out like dead ones) plus the quarantine set.
        """
        model = self.spec.telemetry
        true = state.scenario
        rng = self._telemetry_rng(state.index, epoch)
        wifi_obs = true.wifi_rates
        if model.wifi_jitter > 0:
            noise = rng.standard_normal(true.wifi_rates.shape)
            wifi_obs = np.clip(
                true.wifi_rates * (1.0 + model.wifi_jitter * noise),
                0.0, None)
        plc_obs = true.plc_rates.astype(float, copy=True)
        if model.plc_jitter > 0:
            noise = rng.standard_normal(true.plc_rates.shape)
            plc_obs = np.clip(
                plc_obs * (1.0 + model.plc_jitter * noise), 0.0, None)
        if model.dropout > 0:
            lost = rng.random(true.n_extenders) < model.dropout
            plc_obs[lost] = np.nan
        carrying = np.zeros(true.n_extenders, dtype=bool)
        attached = state.assignment[state.assignment != UNASSIGNED]
        carrying[attached] = True
        state.health.observe(plc_obs, carrying_traffic=carrying)
        effective_plc = state.health.effective_rates(plc_obs)
        quarantined = state.health.quarantined_extenders()
        if quarantined:
            mask = np.asarray(quarantined, dtype=int)
            wifi_obs = wifi_obs.copy()
            wifi_obs[:, mask] = 0.0
            effective_plc = effective_plc.copy()
            effective_plc[mask] = 0.0
        return (Scenario(wifi_rates=wifi_obs, plc_rates=effective_plc),
                quarantined)

    # ------------------------------------------------------------------
    # the epoch

    def run_epoch(self, dry_run: bool = False,
                  state: Optional[InterruptState] = None
                  ) -> Optional[EpochReport]:
        """Run one epoch; ``None`` when interrupted mid-dispatch.

        An interrupted epoch is discarded whole (nothing applied,
        nothing journaled) — epochs are atomic.
        """
        epoch = self.epoch
        observed: List[Tuple[Scenario, Tuple[int, ...]]] = [
            self._observe(b, epoch) for b in self._buildings]
        segments_of: List[List[Segment]] = [
            split_segments(scenario, circuits=b.circuits)
            for b, (scenario, _) in zip(self._buildings, observed)]
        specs = tuple(
            WorkSpec(index=i, item=work) for i, work in enumerate(
                _ShardWork(building=b, segment=segment)
                for b, segments in enumerate(segments_of)
                for segment in segments))
        shard_results = self._dispatch(specs, state)
        if state is not None and state.interrupted:
            # The epoch is discarded whole, so the counter must not
            # advance: journal resume will re-run this same epoch.
            return None
        cursor = 0
        building_reports: List[BuildingEpoch] = []
        for b, bstate in enumerate(self._buildings):
            segments = segments_of[b]
            results = [shard_results[cursor + s]
                       for s in range(len(segments))]
            cursor += len(segments)
            scenario, quarantined = observed[b]
            building_reports.append(self._settle_building(
                bstate, scenario, quarantined, segments, results,
                apply=not dry_run))
        report = EpochReport(
            epoch=epoch,
            buildings=tuple(building_reports),
            n_shards=len(specs),
            n_shard_failures=sum(b.n_shard_failures
                                 for b in building_reports),
            aggregate_mbps=sum(b.aggregate_mbps
                               for b in building_reports),
            delta_mbps=sum(b.delta_mbps for b in building_reports),
            applied=not dry_run)
        if not dry_run and self._store is not None:
            self._store.append(epoch, self._encode_epoch(report))
        self.epoch += 1
        return report

    def run(self, epochs: int, dry_run: bool = False,
            state: Optional[InterruptState] = None,
            on_epoch: Optional[Callable[[EpochReport], None]] = None
            ) -> Tuple[List[EpochReport], Optional[str]]:
        """Run ``epochs`` epochs, draining gracefully on interruption.

        Returns ``(reports, interrupted_signal_name)``; on interrupt
        the in-flight epoch is discarded, an ``interrupted`` event is
        journaled, and the service can be resumed later.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        reports: List[EpochReport] = []
        interrupted: Optional[str] = None
        for _ in range(epochs):
            if state is not None and state.interrupted:
                interrupted = state.signal_name
                break
            report = self.run_epoch(dry_run=dry_run, state=state)
            if report is None:  # interrupted mid-epoch
                interrupted = None if state is None else state.signal_name
                break
            reports.append(report)
            if on_epoch is not None:
                on_epoch(report)
        if interrupted is not None and self._store is not None:
            self._store.append_event("interrupted", signal=interrupted,
                                     epoch=self.epoch)
        return reports, interrupted

    # ------------------------------------------------------------------
    # internals

    def _dispatch(self, specs: Sequence[WorkSpec],
                  state: Optional[InterruptState]) -> Dict[int, Any]:
        """Solve every shard; per-index results keyed by spec index."""
        results: Dict[int, Any] = {}

        def record(index: int, result: Any) -> None:
            results[index] = result

        workers = self.workers
        if workers is not None and workers > 1:
            dispatch_chunked(specs, self.spec.plc_mode, _solve_shard,
                             workers=workers,
                             chunk_size=self.chunk_size,
                             retry_budget=1, record=record,
                             state=state)
        else:
            for spec in specs:
                if state is not None and state.interrupted:
                    break
                record(spec.index, _solve_shard(self.spec.plc_mode,
                                                spec))
        return results

    def _settle_building(self, bstate: _BuildingState,
                         scenario: Scenario,
                         quarantined: Tuple[int, ...],
                         segments: Sequence[Segment],
                         results: Sequence[Any],
                         apply: bool) -> BuildingEpoch:
        """Scatter shard results, diff directives, optionally apply."""
        old = bstate.assignment
        n_users = old.shape[0]
        new = np.full(n_users, UNASSIGNED, dtype=int)
        shard_failures = 0
        for segment, result in zip(segments, results):
            if isinstance(result, WorkFailure):
                # Shard quarantine: its users keep their previous
                # association (when still reachable) instead of taking
                # the building down with the failed solve.
                shard_failures += 1
                if self._store is not None:
                    self._store.append_event(
                        "shard-failure", epoch=self.epoch,
                        building=bstate.name, segment=segment.index,
                        error_type=result.error_type)
                for user in segment.users:
                    kept = int(old[user])
                    if (kept != UNASSIGNED
                            and scenario.wifi_rates[user, kept]
                            > MIN_USABLE_RATE):
                        new[user] = kept
                continue
            local = np.asarray(result, dtype=int).ravel()
            ext_map = np.asarray(segment.extenders, dtype=int)
            for pos, user in enumerate(segment.users):
                if local[pos] != UNASSIGNED:
                    new[user] = ext_map[local[pos]]
        new, _ = bstate.guard.repair_assignment(
            scenario, new, source="fleet", require_complete=False)
        # Score against the previous association *as servable this
        # epoch* (users whose extender vanished contribute nothing to
        # the baseline).
        reachable_old = old.copy()
        attached = np.flatnonzero(reachable_old != UNASSIGNED)
        if attached.size:
            rates = scenario.wifi_rates[attached,
                                        reachable_old[attached]]
            reachable_old[attached[rates <= MIN_USABLE_RATE]] = \
                UNASSIGNED
        running = evaluate(scenario, reachable_old,
                           plc_mode=self.spec.plc_mode).aggregate
        baseline = running
        working = reachable_old.copy()
        directives: List[Directive] = []
        for user in range(n_users):
            if int(new[user]) == int(old[user]):
                continue
            working[user] = new[user]
            moved = evaluate(scenario, working,
                             plc_mode=self.spec.plc_mode).aggregate
            directives.append(Directive(
                building=bstate.name, user=user,
                old_extender=int(old[user]),
                new_extender=int(new[user]),
                delta_mbps=float(moved - running)))
            running = moved
        if apply:
            bstate.assignment = new
        return BuildingEpoch(building=bstate.name,
                             n_segments=len(segments),
                             n_shard_failures=shard_failures,
                             quarantined=quarantined,
                             aggregate_mbps=float(running),
                             delta_mbps=float(running - baseline),
                             directives=tuple(directives))

    # ------------------------------------------------------------------
    # journaling and resume

    def _encode_epoch(self, report: EpochReport) -> Dict[str, Any]:
        return {
            "aggregate_mbps": report.aggregate_mbps,
            "delta_mbps": report.delta_mbps,
            "n_shards": report.n_shards,
            "n_shard_failures": report.n_shard_failures,
            "buildings": [
                {"name": b.building,
                 "assignment": self._buildings[i].assignment.tolist(),
                 "aggregate_mbps": b.aggregate_mbps,
                 "delta_mbps": b.delta_mbps,
                 "n_segments": b.n_segments,
                 "quarantined": list(b.quarantined),
                 "directives": [[d.user, d.old_extender,
                                 d.new_extender, d.delta_mbps]
                                for d in b.directives]}
                for i, b in enumerate(report.buildings)],
        }

    def _replay(self, records: Dict[int, Any]) -> None:
        """Restore service state from a recovered epoch journal.

        Telemetry is a pure function of ``(seed, building, epoch)``,
        so replaying the recorded epochs through each health monitor
        (with the journaled associations supplying the traffic masks)
        reconstructs the exact pre-crash state; the continuation is
        bit-identical to a run that was never interrupted
        (``tests/test_fleet_service.py``).
        """
        epochs = sorted(records)
        if epochs != list(range(len(epochs))):
            from ..sim.checkpoint import CorruptCheckpoint
            raise CorruptCheckpoint(
                f"fleet journal epochs {epochs} are not contiguous "
                "from 0; refusing to resume")
        for epoch in epochs:
            payload = records[epoch]
            entries = payload.get("buildings", [])
            if len(entries) != len(self._buildings):
                from ..sim.checkpoint import CorruptCheckpoint
                raise CorruptCheckpoint(
                    f"fleet journal epoch {epoch} covers "
                    f"{len(entries)} buildings, spec has "
                    f"{len(self._buildings)}")
            for bstate, entry in zip(self._buildings, entries):
                self._observe(bstate, epoch)
                bstate.assignment = np.asarray(entry["assignment"],
                                               dtype=int)
        self.epoch = len(epochs)


# ---------------------------------------------------------------------------
# rendering (byte-stable: the dry-run preview is golden-file tested)


def _ext_label(extender: int) -> str:
    return "none" if extender == UNASSIGNED else str(extender)


def format_epoch(report: EpochReport, directives: bool = True) -> str:
    """Render one epoch as a stable, diff-friendly text block.

    The format is deliberately deterministic — fixed float precision,
    spec ordering, no timestamps — so ``wolt serve --dry-run`` output
    can be diffed against a golden file in CI.
    """
    mode = "preview" if not report.applied else "applied"
    lines = [
        f"epoch {report.epoch} ({mode}): "
        f"{len(report.buildings)} buildings, {report.n_shards} shards"
        f" ({report.n_shard_failures} failed), "
        f"{len(report.directives)} directives, aggregate "
        f"{report.aggregate_mbps:.6f} Mbps "
        f"({report.delta_mbps:+.6f})"]
    for building in report.buildings:
        quarantine_note = (
            "" if not building.quarantined
            else " quarantined=" + ",".join(
                str(j) for j in building.quarantined))
        lines.append(
            f"  [{building.building}] segments "
            f"{building.n_segments}, aggregate "
            f"{building.aggregate_mbps:.6f} Mbps "
            f"({building.delta_mbps:+.6f}){quarantine_note}")
        if directives:
            for d in building.directives:
                lines.append(
                    f"    user {d.user}: {_ext_label(d.old_extender)}"
                    f" -> {_ext_label(d.new_extender)} "
                    f"({d.delta_mbps:+.6f} Mbps)")
    return "\n".join(lines)
