"""The fleet association service behind ``wolt serve``.

:class:`FleetService` runs the paper's epoch-driven reconfiguration
loop (Fig. 6b) across a whole campus.  Each epoch:

1. **Telemetry** — every building's scan/capacity report comes from
   the service's :class:`~repro.fleet.ingest.TelemetrySource` seam:
   by default :class:`~repro.fleet.ingest.SyntheticTelemetry` drifts
   the ground-truth rates under the spec's
   :class:`~repro.fleet.spec.TelemetryModel` (seeded per
   ``(building, epoch)``, so any epoch is reproducible in isolation);
   ``wolt serve --from`` swaps in
   :class:`~repro.fleet.ingest.RecordedTelemetry`, replaying a
   validated recorded stream — dirty records surface as *missing*
   reports the service degrades around (last-known-good fallback),
   with the per-class reject counts carried into the epoch report
   and journal.  Either way the building's
   :class:`~repro.core.health.HealthMonitor` folds in the PLC
   reports, and quarantined extenders are masked out of the solve
   exactly like dead ones
   (:func:`repro.sim.failures.fail_extenders` semantics).
2. **Sharding** — the effective scenario is split into independent PLC
   segments (:func:`repro.fleet.sharding.split_segments`); all shards
   of all buildings form one work batch.
3. **Dispatch** — shard solves run through the chunked warm-pool
   dispatch layer (:func:`repro.sim.dispatch.dispatch_chunked`, the
   machinery behind ``run_trials``), bit-identical to the serial
   reference for any worker/chunk count.  Every shard runs under the
   service's deadline (``timeout_s``) and worker retry budget: a hung
   solve is *reaped* past its deadline and a crashed one retried up to
   ``retry_budget`` times, after which either becomes an explicit
   :class:`~repro.sim.dispatch.WorkFailure` whose users simply keep
   their previous association — degraded, never stalled.  One
   poisoned building cannot take the campus down.

   A building whose shards keep failing trips its **circuit breaker**
   (``breaker_strikes`` consecutive bad epochs, mirroring
   :class:`~repro.core.health.HealthMonitor` quarantine): while the
   breaker is open the building skips solving entirely and carries its
   association forward cheaply; after ``breaker_probation_epochs`` it
   gets one probe solve — clean closes the breaker, failed re-opens
   it.  Per-building ``staleness`` counts epochs since the last fully
   clean solve, and breaker state is journaled so resume is
   bit-identical.
4. **Directives** — the per-building diff old → new is emitted as
   :class:`Directive` records with per-move expected aggregate deltas;
   ``dry_run`` previews them without applying anything.
5. **Journal** — applied epochs append one crash-consistent record to
   the :class:`~repro.sim.checkpoint.TrialStore` journal; resume
   replays telemetry deterministically and restores assignments, so a
   resumed service continues bit-identically.

Dry-run semantics: the world keeps turning (telemetry is ingested,
health state advances, the epoch counter increments) but **nothing is
applied** — associations stay as they were and the journal is not
written.  Repeated ``--dry-run`` epochs therefore preview what each
successive epoch *would* do against the frozen association state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.guard import DecisionGuard
from ..core.health import HealthMonitor
from ..core.problem import MIN_USABLE_RATE, UNASSIGNED, Scenario
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..sim.checkpoint import TrialStore, fingerprint
from ..sim.dispatch import (TIMEOUT_ERROR_TYPE, InterruptState,
                            WorkFailure, WorkSpec, dispatch_chunked,
                            timeout_failure)
from ..sim.faults import InjectedCrash
from .chaos import FleetFaultModel, ShardFaultPlan
from .ingest import StreamExhausted, SyntheticTelemetry, TelemetrySource
from .sharding import Segment, split_segments
from .spec import FleetSpec, build_building_scenario

__all__ = ["BuildingEpoch", "Directive", "EpochReport", "FleetService",
           "format_epoch"]


@dataclass(frozen=True)
class Directive:
    """One association change the service wants to apply.

    Attributes:
        building: building name.
        user: building-local user index.
        old_extender: current extender
            (:data:`~repro.core.problem.UNASSIGNED` for a new
            placement).
        new_extender: target extender
            (:data:`~repro.core.problem.UNASSIGNED` detaches the
            user).
        delta_mbps: expected building-aggregate change from applying
            this directive, in the epoch's directive order.
    """

    building: str
    user: int
    old_extender: int
    new_extender: int
    delta_mbps: float


@dataclass(frozen=True)
class BuildingEpoch:
    """One building's slice of an epoch.

    ``delta_mbps`` compares the directives' outcome against keeping
    the previous association, both scored under *this* epoch's
    effective scenario (telemetry moved between epochs, so comparing
    against last epoch's aggregate would conflate drift with
    decisions).

    ``staleness`` counts epochs since the building last completed a
    fully clean solve (0 = this epoch was clean): it grows while
    shards fail or time out and while the circuit breaker holds the
    building in carry-forward, and is the measure of how degraded the
    building's association is.  ``n_shard_timeouts`` is the subset of
    ``n_shard_failures`` reaped past the deadline.
    """

    building: str
    n_segments: int
    n_shard_failures: int
    n_shard_timeouts: int
    quarantined: Tuple[int, ...]
    aggregate_mbps: float
    delta_mbps: float
    directives: Tuple[Directive, ...]
    staleness: int = 0
    breaker_open: bool = False


@dataclass(frozen=True)
class EpochReport:
    """Everything one epoch decided, across the fleet.

    ``n_degraded_buildings`` counts buildings whose association is
    stale this epoch (``staleness > 0``: failed/timed-out shards or an
    open circuit breaker kept some carry-forward in place).

    ``n_rejected_records``/``rejected`` quantify the ingest boundary:
    how many telemetry records feeding this epoch were classified
    dirty (and per reject class, sorted by class name).  Always zero
    for synthetic telemetry and clean recorded streams — which is
    what keeps their journals byte-identical.
    """

    epoch: int
    buildings: Tuple[BuildingEpoch, ...]
    n_shards: int
    n_shard_failures: int
    n_shard_timeouts: int
    n_degraded_buildings: int
    aggregate_mbps: float
    delta_mbps: float
    applied: bool
    n_rejected_records: int = 0
    rejected: Tuple[Tuple[str, int], ...] = ()

    @property
    def directives(self) -> Tuple[Directive, ...]:
        return tuple(d for b in self.buildings for d in b.directives)


@dataclass(frozen=True)
class _ShardWork:
    """One shard solve: a building index plus its segment."""

    building: int
    segment: Segment


@dataclass(frozen=True)
class _ShardConfig:
    """Fork-inherited batch config for shard solves (picklable).

    ``fault_hook`` is the epoch's planned chaos
    (:class:`~repro.sim.faults.CrashSchedule`), called as
    ``hook(shard_index, attempt)`` before each solve attempt.
    """

    plc_mode: str
    retry_budget: int = 0
    fault_hook: Optional[Callable[[int, int], None]] = None


def _solve_shard(config: _ShardConfig, spec: WorkSpec) -> Any:
    """Worker-side shard solve (module-level, picklable).

    Returns the segment-local assignment; an empty segment (every
    serving extender quarantined away) short-circuits without a solve.
    An :class:`~repro.sim.faults.InjectedCrash` is retried up to
    ``config.retry_budget`` times, then surfaces as an explicit
    :class:`~repro.sim.dispatch.WorkFailure` (real exceptions still
    propagate — this is fault-injection plumbing, not a bug shield).
    """
    segment = spec.item.segment
    if segment.scenario.n_users == 0:
        return np.empty(0, dtype=int)
    attempts = max(config.retry_budget, 0) + 1
    error = ""
    for attempt in range(attempts):
        try:
            if config.fault_hook is not None:
                config.fault_hook(spec.index, attempt)
            return solve_wolt(segment.scenario,
                              plc_mode=config.plc_mode).assignment
        except InjectedCrash as exc:
            error = str(exc)
    return WorkFailure(index=spec.index, attempts=attempts,
                       error_type="InjectedCrash", error=error)


class _BuildingState:
    """Mutable per-building service state (one per spec building)."""

    def __init__(self, spec: FleetSpec, index: int) -> None:
        building = spec.buildings[index]
        self.index = index
        self.name = building.name
        self.circuits = building.circuits
        self.scenario = build_building_scenario(spec, index)
        self.health = HealthMonitor(
            building.n_extenders,
            flap_band=spec.health.flap_band,
            flap_strikes=spec.health.flap_strikes,
            probation_epochs=spec.health.probation_epochs)
        self.guard = DecisionGuard()
        self.assignment = np.full(building.n_users, UNASSIGNED,
                                  dtype=int)
        # The last telemetry actually received — what the service
        # re-decides from when a chaos blackout eats an epoch's report.
        self.last_observed: Optional[
            Tuple[Scenario, Tuple[int, ...]]] = None
        # Degraded-mode bookkeeping (journaled; see _encode_epoch).
        self.staleness = 0
        self.fail_streak = 0
        self.breaker_open = False
        self.breaker_open_epochs = 0


class FleetService:
    """Campus-scale association service (the engine of ``wolt serve``).

    Args:
        spec: the parsed fleet specification.
        workers: worker processes for shard dispatch (``None``/0/1 =
            serial in-process; results are bit-identical either way).
        chunk_size: shards per dispatched chunk (``None`` = auto).
        journal: optional path of a crash-consistent JSONL epoch
            journal (:class:`~repro.sim.checkpoint.TrialStore`).
        resume: recover the journal and replay it so the service
            continues exactly where it stopped (requires ``journal``).
        timeout_s: per-shard solve deadline (seconds); overrides the
            spec's ``health.shard_timeout_s``.  Requires worker
            processes — a hung in-process solve cannot be reaped
            (planned chaos hangs are still honored serially by
            synthesizing the timeout failure parent-side).
        retry_budget: worker retries per shard before an explicit
            failure; overrides the spec's ``health.retry_budget``.
        fault_model: chaos storm to inject
            (:class:`~repro.fleet.chaos.FleetFaultModel`); overrides
            the spec's ``chaos`` block.  A non-trivial model joins the
            journal fingerprint, so a journal written under chaos
            cannot be silently resumed without it.
        source: where telemetry comes from
            (:class:`~repro.fleet.ingest.TelemetrySource`); ``None``
            synthesizes it in-process
            (:class:`~repro.fleet.ingest.SyntheticTelemetry`).  A
            bounded (recorded) source caps how many epochs can run
            and refuses to combine with a non-trivial chaos model —
            recorded telemetry already is the fault surface, and
            synthetic blackouts would silently shadow real records.
    """

    def __init__(self, spec: FleetSpec,
                 workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 journal: Optional[str] = None,
                 resume: bool = False,
                 timeout_s: Optional[float] = None,
                 retry_budget: Optional[int] = None,
                 fault_model: Optional[FleetFaultModel] = None,
                 source: Optional[TelemetrySource] = None) -> None:
        if resume and journal is None:
            raise ValueError("resume requires a journal path")
        self.spec = spec
        self.workers = workers
        self.chunk_size = chunk_size
        self.timeout_s = (spec.health.shard_timeout_s
                          if timeout_s is None else timeout_s)
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.retry_budget = (spec.health.retry_budget
                             if retry_budget is None else retry_budget)
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        self.fault_model = (spec.chaos if fault_model is None
                            else fault_model)
        if (self.fault_model is not None
                and self.fault_model.hang_prob > 0
                and workers is not None and workers > 1
                and self.timeout_s is None):
            raise ValueError(
                "a chaos model with hang faults needs timeout_s when "
                "dispatching to worker processes (an un-reaped hang "
                "stalls the epoch — which is what the deadline is for)")
        self.source: TelemetrySource = (SyntheticTelemetry(spec)
                                        if source is None else source)
        if (self.source.end_epoch is not None
                and self.fault_model is not None
                and not self.fault_model.trivial):
            raise ValueError(
                "a recorded telemetry stream cannot run under a chaos "
                "model: the recorded stream already is the fault "
                "surface, and synthetic blackouts would silently "
                "shadow real records")
        self.epoch = 0
        self._buildings = [_BuildingState(spec, i)
                           for i in range(spec.n_buildings)]
        if isinstance(self.source, SyntheticTelemetry):
            # Share the already-built topologies: the source would
            # otherwise rebuild each one (identically) on first use.
            for bstate in self._buildings:
                self.source.prime(bstate.index, bstate.scenario)
        self._store: Optional[TrialStore] = None
        if journal is not None:
            params = spec.params()
            if (self.fault_model is not None
                    and not self.fault_model.trivial):
                params["chaos"] = self.fault_model.params()
            elif "chaos" in params:
                del params["chaos"]
            self._store = TrialStore(journal, fingerprint(params),
                                     params=params, resume=resume)
            if resume and self._store.records:
                self._replay(self._store.records)

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # telemetry

    def _observe(self, state: _BuildingState,
                 epoch: int) -> Tuple[Scenario, Tuple[int, ...]]:
        """Ingest one epoch of telemetry for one building.

        Pulls the building's scan/capacity report from the telemetry
        source, folds the PLC reports into the health monitor, and
        returns the *effective* scenario (last-known-good capacities,
        quarantined extenders masked out like dead ones) plus the
        quarantine set.

        A chaos blackout means the epoch's report was lost in transit:
        the service re-decides from the building's previous report
        (health state untouched — the monitor never saw anything).  A
        blackout on the very first epoch has nothing to fall back to
        and degrades to a normal observation.  Blackouts are drawn
        from their own seed stream, so replay sees the same ones.

        A recorded source returning ``None`` (its record for this
        slot was rejected at the ingest boundary, or never arrived)
        degrades the same way: last-known-good when there is one; on
        the very first epoch there is nothing to fall back to, so the
        service decides from the as-built rates — a pristine,
        drift-free report, the least-wrong stand-in that keeps the
        epoch alive.
        """
        true = state.scenario
        if (self.fault_model is not None
                and state.last_observed is not None
                and self.fault_model.blackout(self.spec.seed,
                                              state.index, epoch)):
            return state.last_observed
        report = self.source.observe(state.index, epoch)
        if report is None:
            if state.last_observed is not None:
                return state.last_observed
            wifi_obs = true.wifi_rates
            plc_obs = true.plc_rates.astype(float, copy=True)
        else:
            wifi_obs, plc_obs = report
        carrying = np.zeros(true.n_extenders, dtype=bool)
        attached = state.assignment[state.assignment != UNASSIGNED]
        carrying[attached] = True
        state.health.observe(plc_obs, carrying_traffic=carrying)
        effective_plc = state.health.effective_rates(plc_obs)
        quarantined = state.health.quarantined_extenders()
        if quarantined:
            mask = np.asarray(quarantined, dtype=int)
            wifi_obs = wifi_obs.copy()
            wifi_obs[:, mask] = 0.0
            effective_plc = effective_plc.copy()
            effective_plc[mask] = 0.0
        result = (Scenario(wifi_rates=wifi_obs,
                           plc_rates=effective_plc), quarantined)
        state.last_observed = result
        return result

    # ------------------------------------------------------------------
    # the epoch

    def run_epoch(self, dry_run: bool = False,
                  state: Optional[InterruptState] = None
                  ) -> Optional[EpochReport]:
        """Run one epoch; ``None`` when interrupted mid-dispatch.

        An interrupted epoch is discarded whole (nothing applied,
        nothing journaled) — epochs are atomic.
        """
        epoch = self.epoch
        end_epoch = self.source.end_epoch
        if end_epoch is not None and epoch >= end_epoch:
            raise StreamExhausted(
                f"recorded telemetry stream ends before epoch {epoch} "
                f"(window ends at {end_epoch}); record a longer "
                "stream or run fewer epochs")
        health = self.spec.health
        observed: List[Tuple[Scenario, Tuple[int, ...]]] = [
            self._observe(b, epoch) for b in self._buildings]
        # Circuit-breaker gate: an open breaker skips the solve and
        # carries the association forward cheaply, except on its
        # probation epoch (one probe solve decides re-admission).
        solving = [
            not b.breaker_open
            or b.breaker_open_epochs >= health.breaker_probation_epochs
            for b in self._buildings]
        segments_of: List[List[Segment]] = []
        for solve, bstate, (scenario, _) in zip(
                solving, self._buildings, observed):
            segments_of.append(
                split_segments(scenario, circuits=bstate.circuits)
                if solve else [])
        specs = tuple(
            WorkSpec(index=i, item=work) for i, work in enumerate(
                _ShardWork(building=b, segment=segment)
                for b, segments in enumerate(segments_of)
                for segment in segments))
        shard_results = self._dispatch(specs, state, epoch)
        if state is not None and state.interrupted:
            # The epoch is discarded whole, so the counter must not
            # advance: journal resume will re-run this same epoch.
            return None
        cursor = 0
        building_reports: List[BuildingEpoch] = []
        for b, bstate in enumerate(self._buildings):
            segments = segments_of[b]
            results = [shard_results[cursor + s]
                       for s in range(len(segments))]
            cursor += len(segments)
            scenario, quarantined = observed[b]
            if solving[b]:
                building_report = self._settle_building(
                    bstate, scenario, quarantined, segments, results,
                    apply=not dry_run)
            else:
                building_report = self._carry_building(
                    bstate, scenario, quarantined, apply=not dry_run)
            building_reports.append(self._update_breaker(
                bstate, building_report, solved=solving[b],
                apply=not dry_run))
        epoch_rejects = self.source.epoch_rejects(epoch)
        report = EpochReport(
            epoch=epoch,
            buildings=tuple(building_reports),
            n_shards=len(specs),
            n_shard_failures=sum(b.n_shard_failures
                                 for b in building_reports),
            n_shard_timeouts=sum(b.n_shard_timeouts
                                 for b in building_reports),
            n_degraded_buildings=sum(
                1 for b in building_reports if b.staleness > 0),
            aggregate_mbps=sum(b.aggregate_mbps
                               for b in building_reports),
            delta_mbps=sum(b.delta_mbps for b in building_reports),
            applied=not dry_run,
            n_rejected_records=sum(epoch_rejects.values()),
            rejected=tuple(sorted(epoch_rejects.items())))
        if not dry_run and self._store is not None:
            self._store.append(epoch, self._encode_epoch(report))
        self.epoch += 1
        return report

    def run(self, epochs: int, dry_run: bool = False,
            state: Optional[InterruptState] = None,
            on_epoch: Optional[Callable[[EpochReport], None]] = None
            ) -> Tuple[List[EpochReport], Optional[str]]:
        """Run ``epochs`` epochs, draining gracefully on interruption.

        Returns ``(reports, interrupted_signal_name)``; on interrupt
        the in-flight epoch is discarded, an ``interrupted`` event is
        journaled, and the service can be resumed later.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        reports: List[EpochReport] = []
        interrupted: Optional[str] = None
        for _ in range(epochs):
            if state is not None and state.interrupted:
                interrupted = state.signal_name
                break
            report = self.run_epoch(dry_run=dry_run, state=state)
            if report is None:  # interrupted mid-epoch
                interrupted = None if state is None else state.signal_name
                break
            reports.append(report)
            if on_epoch is not None:
                on_epoch(report)
        if interrupted is not None and self._store is not None:
            self._store.append_event("interrupted", signal=interrupted,
                                     epoch=self.epoch)
        elif self._store is not None and not dry_run and reports:
            # Clean completion: compact to the canonical snapshot
            # (drops transient events, orders records), so any two
            # services that applied the same epochs leave
            # byte-identical journals regardless of crash/resume
            # history — the property the crash/resume checks diff.
            self._store.snapshot()
        return reports, interrupted

    # ------------------------------------------------------------------
    # internals

    def _dispatch(self, specs: Sequence[WorkSpec],
                  state: Optional[InterruptState],
                  epoch: int) -> Dict[int, Any]:
        """Solve every shard; per-index results keyed by spec index.

        The service's deadline (``timeout_s``) and retry budget ride
        into :func:`~repro.sim.dispatch.dispatch_chunked`, so a hung
        shard is reaped as a timeout :class:`WorkFailure` instead of
        stalling the epoch.  Chaos shard faults for the epoch are
        drawn parent-side (:meth:`FleetFaultModel.shard_plan`) and
        shipped to workers as the batch config's fault hook.
        """
        results: Dict[int, Any] = {}

        def record(index: int, result: Any) -> None:
            results[index] = result

        plan: Optional[ShardFaultPlan] = None
        if self.fault_model is not None:
            plan = self.fault_model.shard_plan(self.spec.seed, epoch,
                                               len(specs))
        config = _ShardConfig(
            plc_mode=self.spec.plc_mode,
            retry_budget=self.retry_budget,
            fault_hook=None if plan is None else plan.schedule)
        workers = self.workers
        use_pool = (workers is not None and workers >= 1
                    and (workers > 1 or self.timeout_s is not None))
        if use_pool:
            dispatch_chunked(specs, config, _solve_shard,
                             workers=workers,
                             chunk_size=self.chunk_size,
                             retry_budget=self.retry_budget,
                             timeout_s=self.timeout_s,
                             record=record, state=state)
        else:
            # A planned hang cannot be reaped without a process
            # boundary, so the serial path synthesizes its reaping —
            # same index, same error_type, no sleeping — keeping
            # serial and pooled chaos runs bit-identical.
            hung = (frozenset(plan.hung) if plan is not None
                    else frozenset())
            for spec in specs:
                if state is not None and state.interrupted:
                    break
                if spec.index in hung:
                    record(spec.index, timeout_failure(spec.index,
                                                       self.timeout_s))
                    continue
                record(spec.index, _solve_shard(config, spec))
        return results

    def _settle_building(self, bstate: _BuildingState,
                         scenario: Scenario,
                         quarantined: Tuple[int, ...],
                         segments: Sequence[Segment],
                         results: Sequence[Any],
                         apply: bool) -> BuildingEpoch:
        """Scatter shard results, diff directives, optionally apply."""
        old = bstate.assignment
        n_users = old.shape[0]
        new = np.full(n_users, UNASSIGNED, dtype=int)
        shard_failures = 0
        shard_timeouts = 0
        for segment, result in zip(segments, results):
            if isinstance(result, WorkFailure):
                # Shard quarantine: its users keep their previous
                # association (when still reachable) instead of taking
                # the building down with the failed solve.
                shard_failures += 1
                if result.error_type == TIMEOUT_ERROR_TYPE:
                    shard_timeouts += 1
                if apply and self._store is not None:
                    self._store.append_event(
                        "shard-failure", epoch=self.epoch,
                        building=bstate.name, segment=segment.index,
                        error_type=result.error_type)
                for user in segment.users:
                    kept = int(old[user])
                    if (kept != UNASSIGNED
                            and scenario.wifi_rates[user, kept]
                            > MIN_USABLE_RATE):
                        new[user] = kept
                continue
            local = np.asarray(result, dtype=int).ravel()
            ext_map = np.asarray(segment.extenders, dtype=int)
            for pos, user in enumerate(segment.users):
                if local[pos] != UNASSIGNED:
                    new[user] = ext_map[local[pos]]
        return self._compose_building_epoch(
            bstate, scenario, quarantined, new,
            n_segments=len(segments), shard_failures=shard_failures,
            shard_timeouts=shard_timeouts, apply=apply)

    def _carry_building(self, bstate: _BuildingState,
                        scenario: Scenario,
                        quarantined: Tuple[int, ...],
                        apply: bool) -> BuildingEpoch:
        """An open-breaker epoch: carry the association forward.

        No shards are solved; users whose extender is no longer usable
        under this epoch's effective scenario are detached, and the
        guard still validates what is kept — a breaker protects the
        campus from a sick building's solve cost, not from invariants.
        """
        old = bstate.assignment
        new = old.copy()
        attached = np.flatnonzero(new != UNASSIGNED)
        if attached.size:
            rates = scenario.wifi_rates[attached, new[attached]]
            new[attached[rates <= MIN_USABLE_RATE]] = UNASSIGNED
        return self._compose_building_epoch(
            bstate, scenario, quarantined, new, n_segments=0,
            shard_failures=0, shard_timeouts=0, apply=apply)

    def _compose_building_epoch(self, bstate: _BuildingState,
                                scenario: Scenario,
                                quarantined: Tuple[int, ...],
                                new: np.ndarray, n_segments: int,
                                shard_failures: int,
                                shard_timeouts: int,
                                apply: bool) -> BuildingEpoch:
        """Guard-repair ``new``, diff directives, optionally apply."""
        old = bstate.assignment
        n_users = old.shape[0]
        new, _ = bstate.guard.repair_assignment(
            scenario, new, source="fleet", require_complete=False)
        # Score against the previous association *as servable this
        # epoch* (users whose extender vanished contribute nothing to
        # the baseline).
        reachable_old = old.copy()
        attached = np.flatnonzero(reachable_old != UNASSIGNED)
        if attached.size:
            rates = scenario.wifi_rates[attached,
                                        reachable_old[attached]]
            reachable_old[attached[rates <= MIN_USABLE_RATE]] = \
                UNASSIGNED
        running = evaluate(scenario, reachable_old,
                           plc_mode=self.spec.plc_mode).aggregate
        baseline = running
        working = reachable_old.copy()
        directives: List[Directive] = []
        for user in range(n_users):
            if int(new[user]) == int(old[user]):
                continue
            working[user] = new[user]
            moved = evaluate(scenario, working,
                             plc_mode=self.spec.plc_mode).aggregate
            directives.append(Directive(
                building=bstate.name, user=user,
                old_extender=int(old[user]),
                new_extender=int(new[user]),
                delta_mbps=float(moved - running)))
            running = moved
        if apply:
            bstate.assignment = new
        return BuildingEpoch(building=bstate.name,
                             n_segments=n_segments,
                             n_shard_failures=shard_failures,
                             n_shard_timeouts=shard_timeouts,
                             quarantined=quarantined,
                             aggregate_mbps=float(running),
                             delta_mbps=float(running - baseline),
                             directives=tuple(directives))

    def _update_breaker(self, bstate: _BuildingState,
                        report: BuildingEpoch, solved: bool,
                        apply: bool) -> BuildingEpoch:
        """Advance one building's breaker/staleness state machine.

        Mirrors :class:`~repro.core.health.HealthMonitor`:
        ``breaker_strikes`` consecutive epochs with shard
        failures/timeouts trip the breaker; an open breaker idles
        toward its probation epoch; a clean probe closes it, a failed
        probe re-opens it.  Like health state, the machine advances in
        dry-run too (``apply`` only gates journal events) — previews
        keep previewing what the next epoch would actually do.

        Returns the building report stamped with the post-update
        staleness and breaker state.
        """
        health = self.spec.health
        if not solved:
            bstate.breaker_open_epochs += 1
            bstate.staleness += 1
        elif report.n_shard_failures > 0:
            bstate.staleness += 1
            if bstate.breaker_open:
                # Failed probe: the open window restarts.
                bstate.breaker_open_epochs = 0
                self._breaker_event("breaker-probe-failed", bstate,
                                    apply)
            else:
                bstate.fail_streak += 1
                if bstate.fail_streak >= health.breaker_strikes:
                    bstate.breaker_open = True
                    bstate.breaker_open_epochs = 0
                    self._breaker_event("breaker-open", bstate, apply)
        else:
            bstate.staleness = 0
            bstate.fail_streak = 0
            if bstate.breaker_open:
                bstate.breaker_open = False
                bstate.breaker_open_epochs = 0
                self._breaker_event("breaker-close", bstate, apply)
        return replace(report, staleness=bstate.staleness,
                       breaker_open=bstate.breaker_open)

    def _breaker_event(self, event: str, bstate: _BuildingState,
                       apply: bool) -> None:
        if apply and self._store is not None:
            self._store.append_event(event, epoch=self.epoch,
                                     building=bstate.name)

    # ------------------------------------------------------------------
    # journaling and resume

    def _encode_epoch(self, report: EpochReport) -> Dict[str, Any]:
        return {
            "aggregate_mbps": report.aggregate_mbps,
            "delta_mbps": report.delta_mbps,
            "n_shards": report.n_shards,
            "n_shard_failures": report.n_shard_failures,
            "n_shard_timeouts": report.n_shard_timeouts,
            "n_degraded_buildings": report.n_degraded_buildings,
            "n_rejected_records": report.n_rejected_records,
            "rejected": {cls: n for cls, n in report.rejected},
            "buildings": [
                {"name": b.building,
                 "assignment": self._buildings[i].assignment.tolist(),
                 "aggregate_mbps": b.aggregate_mbps,
                 "delta_mbps": b.delta_mbps,
                 "n_segments": b.n_segments,
                 "n_shard_timeouts": b.n_shard_timeouts,
                 "quarantined": list(b.quarantined),
                 # Breaker/staleness state *after* this epoch, so
                 # resume restores the machine exactly (fail_streak
                 # and the open-epoch counter have no place in the
                 # report dataclass but resume needs them).
                 "staleness": self._buildings[i].staleness,
                 "fail_streak": self._buildings[i].fail_streak,
                 "breaker_open": self._buildings[i].breaker_open,
                 "breaker_open_epochs":
                     self._buildings[i].breaker_open_epochs,
                 "directives": [[d.user, d.old_extender,
                                 d.new_extender, d.delta_mbps]
                                for d in b.directives]}
                for i, b in enumerate(report.buildings)],
        }

    def _replay(self, records: Dict[int, Any]) -> None:
        """Restore service state from a recovered epoch journal.

        Telemetry is a pure function of ``(seed, building, epoch)``,
        so replaying the recorded epochs through each health monitor
        (with the journaled associations supplying the traffic masks)
        reconstructs the exact pre-crash state; the continuation is
        bit-identical to a run that was never interrupted
        (``tests/test_fleet_service.py``).
        """
        epochs = sorted(records)
        if epochs != list(range(len(epochs))):
            from ..sim.checkpoint import CorruptCheckpoint
            raise CorruptCheckpoint(
                f"fleet journal epochs {epochs} are not contiguous "
                "from 0; refusing to resume")
        for epoch in epochs:
            payload = records[epoch]
            entries = payload.get("buildings", [])
            if len(entries) != len(self._buildings):
                from ..sim.checkpoint import CorruptCheckpoint
                raise CorruptCheckpoint(
                    f"fleet journal epoch {epoch} covers "
                    f"{len(entries)} buildings, spec has "
                    f"{len(self._buildings)}")
            for bstate, entry in zip(self._buildings, entries):
                self._observe(bstate, epoch)
                bstate.assignment = np.asarray(entry["assignment"],
                                               dtype=int)
        # Breaker/staleness state was journaled post-update per epoch;
        # the final record IS the pre-crash machine state.
        final = records[epochs[-1]].get("buildings", [])
        for bstate, entry in zip(self._buildings, final):
            bstate.staleness = int(entry.get("staleness", 0))
            bstate.fail_streak = int(entry.get("fail_streak", 0))
            bstate.breaker_open = bool(entry.get("breaker_open",
                                                 False))
            bstate.breaker_open_epochs = int(
                entry.get("breaker_open_epochs", 0))
        self.epoch = len(epochs)


# ---------------------------------------------------------------------------
# rendering (byte-stable: the dry-run preview is golden-file tested)


def _ext_label(extender: int) -> str:
    return "none" if extender == UNASSIGNED else str(extender)


def format_epoch(report: EpochReport, directives: bool = True) -> str:
    """Render one epoch as a stable, diff-friendly text block.

    The format is deliberately deterministic — fixed float precision,
    spec ordering, no timestamps — so ``wolt serve --dry-run`` output
    can be diffed against a golden file in CI.
    """
    mode = "preview" if not report.applied else "applied"
    lines = [
        f"epoch {report.epoch} ({mode}): "
        f"{len(report.buildings)} buildings, {report.n_shards} shards"
        f" ({report.n_shard_failures} failed, "
        f"{report.n_shard_timeouts} timed out), "
        f"{report.n_degraded_buildings} degraded, "
        f"{report.n_rejected_records} rejected, "
        f"{len(report.directives)} directives, aggregate "
        f"{report.aggregate_mbps:.6f} Mbps "
        f"({report.delta_mbps:+.6f})"]
    if report.rejected:
        lines.append("  rejected: " + " ".join(
            f"{cls}={n}" for cls, n in report.rejected))
    for building in report.buildings:
        notes = ""
        if building.staleness:
            notes += f" staleness={building.staleness}"
        if building.breaker_open:
            notes += " breaker=open"
        if building.quarantined:
            notes += " quarantined=" + ",".join(
                str(j) for j in building.quarantined)
        lines.append(
            f"  [{building.building}] segments "
            f"{building.n_segments}, aggregate "
            f"{building.aggregate_mbps:.6f} Mbps "
            f"({building.delta_mbps:+.6f}){notes}")
        if directives:
            for d in building.directives:
                lines.append(
                    f"    user {d.user}: {_ext_label(d.old_extender)}"
                    f" -> {_ext_label(d.new_extender)} "
                    f"({d.delta_mbps:+.6f} Mbps)")
    return "\n".join(lines)
