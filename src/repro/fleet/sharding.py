"""Topology sharding: split a building into independent PLC segments.

``repro.core.partition`` is the *Theorem-1 NP-hardness reduction*
(PARTITION ↔ Problem 1), not a topology splitter — it proves the
problem is hard, it does not decompose instances.  This module is the
actual splitter: it partitions a building's extender set into
**independent PLC segments** via connected components of the
wiring/interference graph, where two extenders are coupled when

* they share a powerline circuit (a *wiring* edge — extenders on one
  circuit contend for the same PLC medium), or
* some user hears both above
  :data:`~repro.core.problem.MIN_USABLE_RATE` (an *interference* edge
  — the association decision for that user couples the two cells).

Why segments must be separate :class:`~repro.core.problem.Scenario`
objects rather than column-slices of one big one: every quantity in a
WOLT solve is coupled through the scenario-wide extender set.  Phase I
utilities are ``min(c_j/|A|, r_ij)`` with the *global* ``|A|``
(Theorem 2), and all three PLC sharing laws in
:mod:`repro.plc.sharing` divide **one** unit of medium time among all
extenders of the scenario.  Merging two electrically separate segments
into one ``Scenario`` therefore models them as sharing a single PLC
medium — a different (and wrong) physical system whose solution
legitimately differs.  The correct whole-fleet solve *is* the
per-segment solve: :func:`solve_segments_reference` runs it serially
in canonical segment order, and the parallel shard dispatch in
:mod:`repro.fleet.service` is property-tested bit-identical to it
(``tests/test_fleet_sharding.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.problem import UNASSIGNED, Scenario
from ..core.wolt import solve_wolt

__all__ = ["Segment", "coupling_components", "scatter_assignment",
           "solve_segments_reference", "split_segments"]


@dataclass(frozen=True)
class Segment:
    """One independent PLC segment of a building.

    Attributes:
        index: canonical position (segments are ordered by their
            smallest extender index).
        extenders: parent-scenario extender indices, ascending.
        users: parent-scenario user indices, ascending — exactly the
            users whose reachable set lies inside ``extenders`` (a user
            hearing two segments would have merged them).
        scenario: the segment as a standalone scenario with its **own**
            PLC medium; rows/columns follow ``users``/``extenders``.
    """

    index: int
    extenders: Tuple[int, ...]
    users: Tuple[int, ...]
    scenario: Scenario


class _UnionFind:
    """Union-find over extender indices (path halving, union by size)."""

    def __init__(self, n: int) -> None:
        self._parent = list(range(n))
        self._size = [1] * n

    def find(self, j: int) -> int:
        parent = self._parent
        while parent[j] != j:
            parent[j] = parent[parent[j]]
            j = parent[j]
        return j

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


def coupling_components(scenario: Scenario,
                        circuits: Optional[Sequence[object]] = None
                        ) -> List[Tuple[int, ...]]:
    """Connected components of the wiring/interference graph.

    Args:
        scenario: the building snapshot.
        circuits: optional per-extender powerline-circuit labels; any
            two extenders with equal labels get a wiring edge.  When
            omitted, every extender shares one circuit (the
            conservative default: one building, one medium), so the
            graph has a single component.

    Returns:
        Extender-index tuples, each sorted ascending, ordered by their
        smallest member.
    """
    n_ext = scenario.n_extenders
    uf = _UnionFind(n_ext)
    if circuits is None:
        for j in range(1, n_ext):
            uf.union(0, j)
    else:
        labels = list(circuits)
        if len(labels) != n_ext:
            raise ValueError(
                f"circuits has {len(labels)} labels for {n_ext} "
                "extenders")
        first_of: Dict[object, int] = {}
        for j, label in enumerate(labels):
            if label in first_of:
                uf.union(first_of[label], j)
            else:
                first_of[label] = j
    for user in range(scenario.n_users):
        reach = scenario.reachable(user)
        for j in reach[1:]:
            uf.union(int(reach[0]), int(j))
    groups: Dict[int, List[int]] = {}
    for j in range(n_ext):
        groups.setdefault(uf.find(j), []).append(j)
    return sorted((tuple(sorted(g)) for g in groups.values()),
                  key=lambda g: g[0])


def split_segments(scenario: Scenario,
                   circuits: Optional[Sequence[object]] = None
                   ) -> List[Segment]:
    """Split a building into its independent PLC segments.

    Every user with at least one reachable extender lands in exactly
    one segment (reaching two would have merged them into one
    component); users hearing nothing belong to no segment and are left
    :data:`~repro.core.problem.UNASSIGNED` by
    :func:`scatter_assignment`.

    Returns:
        Segments in canonical order (by smallest extender index).
    """
    components = coupling_components(scenario, circuits)
    ext_to_comp = {j: c for c, comp in enumerate(components)
                   for j in comp}
    comp_users: List[List[int]] = [[] for _ in components]
    for user in range(scenario.n_users):
        reach = scenario.reachable(user)
        if reach.size:
            comp_users[ext_to_comp[int(reach[0])]].append(user)
    segments: List[Segment] = []
    for c, extenders in enumerate(components):
        users = comp_users[c]
        ext_idx = np.asarray(extenders, dtype=int)
        user_idx = np.asarray(users, dtype=int)
        wifi = scenario.wifi_rates[np.ix_(user_idx, ext_idx)]
        caps = (None if scenario.capacities is None
                else scenario.capacities[ext_idx])
        ids = (None if scenario.user_ids is None
               else scenario.user_ids[user_idx])
        sub = Scenario(wifi_rates=wifi,
                       plc_rates=scenario.plc_rates[ext_idx],
                       capacities=caps, user_ids=ids)
        segments.append(Segment(index=c, extenders=tuple(extenders),
                                users=tuple(users), scenario=sub))
    return segments


def scatter_assignment(n_users: int, segments: Sequence[Segment],
                       assignments: Sequence[Sequence[int]]
                       ) -> np.ndarray:
    """Scatter per-segment assignments back into parent indices.

    Args:
        n_users: user count of the parent scenario.
        segments: the segments, in any order.
        assignments: one per-segment assignment vector (segment-local
            extender indices or :data:`~repro.core.problem.UNASSIGNED`),
            aligned with ``segments``.

    Returns:
        A length-``n_users`` parent assignment; users outside every
        segment stay :data:`~repro.core.problem.UNASSIGNED`.
    """
    if len(segments) != len(assignments):
        raise ValueError(
            f"{len(assignments)} assignment vectors for "
            f"{len(segments)} segments")
    full = np.full(n_users, UNASSIGNED, dtype=int)
    for segment, local in zip(segments, assignments):
        vec = np.asarray(local, dtype=int).ravel()
        if vec.shape[0] != len(segment.users):
            raise ValueError(
                f"segment {segment.index} assignment covers "
                f"{vec.shape[0]} users, expected {len(segment.users)}")
        ext_map = np.asarray(segment.extenders, dtype=int)
        attached = vec != UNASSIGNED
        parent = np.full(vec.shape[0], UNASSIGNED, dtype=int)
        parent[attached] = ext_map[vec[attached]]
        full[np.asarray(segment.users, dtype=int)] = parent
    return full


def solve_segments_reference(scenario: Scenario,
                             circuits: Optional[Sequence[object]] = None,
                             plc_mode: str = "redistribute"
                             ) -> np.ndarray:
    """The unsharded whole-fleet reference solve of one building.

    Splits into segments and solves each **serially** in canonical
    order with :func:`~repro.core.wolt.solve_wolt` (each segment keeps
    its own PLC medium — see the module docstring for why this, not a
    merged-scenario solve, is the correct whole-building model).  The
    parallel shard dispatch must be bit-identical to this for any
    worker/chunk count; on a single-segment building it degenerates to
    plain ``solve_wolt(scenario)``.
    """
    segments = split_segments(scenario, circuits)
    assignments = [solve_wolt(seg.scenario,
                              plc_mode=plc_mode).assignment
                   for seg in segments]
    return scatter_assignment(scenario.n_users, segments, assignments)
