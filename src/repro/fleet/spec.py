"""Declarative fleet specs: the YAML schema behind ``wolt serve``.

A fleet spec names the campus, pins the master seed and PLC sharing
law, and lists buildings — explicitly and/or through ``generate``
blocks that expand into numbered buildings, so a 1000-building campus
spec stays a ten-line file::

    fleet:
      name: campus-east
      seed: 2026
      plc_mode: redistribute
    buildings:
      - name: hq
        extenders: 6
        users: 14
        circuits: [a, a, a, b, b, b]
    generate:
      - prefix: b
        count: 1000
        extenders: 3
        users: 6
    telemetry:
      wifi_jitter: 0.05
      plc_jitter: 0.10
      dropout: 0.01
    health:
      flap_band: 0.5
      flap_strikes: 2
      probation_epochs: 3

Everything downstream is a pure function of the spec: building
topologies come from :func:`~repro.net.topology.enterprise_floor`
seeded by ``SeedSequence(seed, spawn_key=(building, 0))`` and per-epoch
telemetry from ``spawn_key=(building, epoch, 1)``, so any epoch of any
building is reproducible in isolation (which is what makes journal
resume bit-identical — see :mod:`repro.fleet.service`).

The YAML loader (PyYAML) is imported lazily and gated: parsing raises
a clear error when the dependency is absent instead of failing at
import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.problem import Scenario
from ..net.topology import enterprise_floor
from ..plc.sharing import PLC_MODES

__all__ = ["BuildingSpec", "FleetSpec", "HealthSettings",
           "TelemetryModel", "build_building_scenario",
           "load_fleet_spec", "parse_fleet_spec"]


@dataclass(frozen=True)
class BuildingSpec:
    """One building of the fleet.

    Attributes:
        name: unique building name (directive and journal key).
        n_extenders: extender count.
        n_users: user count.
        circuits: optional per-extender powerline-circuit labels (the
            wiring side of the coupling graph in
            :mod:`repro.fleet.sharding`); ``None`` means one circuit.
    """

    name: str
    n_extenders: int
    n_users: int
    circuits: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("building name must be non-empty")
        if self.n_extenders < 1:
            raise ValueError(
                f"building {self.name!r}: extenders must be >= 1")
        if self.n_users < 1:
            raise ValueError(
                f"building {self.name!r}: users must be >= 1")
        if (self.circuits is not None
                and len(self.circuits) != self.n_extenders):
            raise ValueError(
                f"building {self.name!r}: {len(self.circuits)} circuit "
                f"labels for {self.n_extenders} extenders")


@dataclass(frozen=True)
class TelemetryModel:
    """Per-epoch telemetry drift applied to a building's true rates.

    All three knobs are dimensionless: the jitters are relative
    standard deviations of a multiplicative Gaussian factor (clipped at
    zero), ``dropout`` is the per-extender probability that a PLC
    capacity report arrives as NaN (a failed probe).
    """

    wifi_jitter: float = 0.0
    plc_jitter: float = 0.0
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.wifi_jitter < 0 or self.plc_jitter < 0:
            raise ValueError("telemetry jitters must be non-negative")
        if not 0.0 <= self.dropout <= 1.0:
            raise ValueError("dropout must be a probability in [0, 1]")


@dataclass(frozen=True)
class HealthSettings:
    """Constructor arguments for each building's HealthMonitor."""

    flap_band: float = 0.5
    flap_strikes: int = 2
    probation_epochs: int = 3


@dataclass(frozen=True)
class FleetSpec:
    """A parsed, validated fleet specification."""

    name: str
    seed: int
    plc_mode: str = "redistribute"
    buildings: Tuple[BuildingSpec, ...] = ()
    telemetry: TelemetryModel = field(default_factory=TelemetryModel)
    health: HealthSettings = field(default_factory=HealthSettings)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fleet name must be non-empty")
        if self.plc_mode not in PLC_MODES:
            raise ValueError(
                f"plc_mode must be one of {PLC_MODES}, got "
                f"{self.plc_mode!r}")
        if not self.buildings:
            raise ValueError("a fleet needs at least one building")
        names = [b.name for b in self.buildings]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate building names: {dupes}")

    @property
    def n_buildings(self) -> int:
        return len(self.buildings)

    @property
    def n_users(self) -> int:
        return sum(b.n_users for b in self.buildings)

    def params(self) -> Dict[str, Any]:
        """JSON-serializable echo for checkpoint fingerprinting."""
        return {
            "name": self.name,
            "seed": self.seed,
            "plc_mode": self.plc_mode,
            "buildings": [
                {"name": b.name, "extenders": b.n_extenders,
                 "users": b.n_users,
                 "circuits": (None if b.circuits is None
                              else list(b.circuits))}
                for b in self.buildings],
            "telemetry": {"wifi_jitter": self.telemetry.wifi_jitter,
                          "plc_jitter": self.telemetry.plc_jitter,
                          "dropout": self.telemetry.dropout},
            "health": {"flap_band": self.health.flap_band,
                       "flap_strikes": self.health.flap_strikes,
                       "probation_epochs":
                           self.health.probation_epochs},
        }


def build_building_scenario(spec: FleetSpec,
                            building: int) -> Scenario:
    """The ground-truth topology of one building (pure in the spec).

    Seeded by ``SeedSequence(entropy=spec.seed,
    spawn_key=(building, 0))``, so adding, removing, or reordering
    *other* buildings never changes this one's floor.
    """
    b = spec.buildings[building]
    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=spec.seed, spawn_key=(building, 0)))
    return enterprise_floor(b.n_extenders, b.n_users, rng)


# ---------------------------------------------------------------------------
# YAML parsing.


def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise ValueError(f"{where} must be a mapping, got "
                         f"{type(value).__name__}")
    return value


def _take_int(mapping: Mapping[str, Any], key: str, where: str,
              default: Optional[int] = None) -> int:
    if key not in mapping:
        if default is None:
            raise ValueError(f"{where} is missing required key "
                             f"{key!r}")
        return default
    value = mapping[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{where}.{key} must be an integer, got "
                         f"{value!r}")
    return value


def _reject_unknown(mapping: Mapping[str, Any], allowed: Tuple[str, ...],
                    where: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ValueError(f"{where} has unknown keys {unknown}; "
                         f"allowed: {sorted(allowed)}")


def _parse_building(raw: Any, where: str) -> BuildingSpec:
    block = _require_mapping(raw, where)
    _reject_unknown(block, ("name", "extenders", "users", "circuits"),
                    where)
    if "name" not in block:
        raise ValueError(f"{where} is missing required key 'name'")
    circuits: Optional[Tuple[str, ...]] = None
    if block.get("circuits") is not None:
        if not isinstance(block["circuits"], list):
            raise ValueError(f"{where}.circuits must be a list")
        circuits = tuple(str(c) for c in block["circuits"])
    return BuildingSpec(name=str(block["name"]),
                        n_extenders=_take_int(block, "extenders", where),
                        n_users=_take_int(block, "users", where),
                        circuits=circuits)


def _expand_generate(raw: Any, where: str) -> List[BuildingSpec]:
    block = _require_mapping(raw, where)
    _reject_unknown(block, ("prefix", "count", "extenders", "users",
                            "circuits"), where)
    prefix = str(block.get("prefix", "bldg"))
    count = _take_int(block, "count", where)
    if count < 1:
        raise ValueError(f"{where}.count must be >= 1")
    width = len(str(count - 1))
    template = _parse_building(
        {"name": "template",
         "extenders": _take_int(block, "extenders", where),
         "users": _take_int(block, "users", where),
         "circuits": block.get("circuits")}, where)
    return [BuildingSpec(name=f"{prefix}{i:0{width}d}",
                         n_extenders=template.n_extenders,
                         n_users=template.n_users,
                         circuits=template.circuits)
            for i in range(count)]


def parse_fleet_spec(text: str) -> FleetSpec:
    """Parse and validate a YAML fleet spec from a string."""
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - dep always present
        raise RuntimeError(
            "fleet specs are YAML; install pyyaml to use "
            "repro.fleet.spec") from exc
    document = yaml.safe_load(text)
    root = _require_mapping(document, "fleet spec")
    _reject_unknown(root, ("fleet", "buildings", "generate",
                           "telemetry", "health"), "fleet spec")
    head = _require_mapping(root.get("fleet", {}), "fleet")
    _reject_unknown(head, ("name", "seed", "plc_mode"), "fleet")
    buildings: List[BuildingSpec] = []
    raw_buildings = root.get("buildings", [])
    if not isinstance(raw_buildings, list):
        raise ValueError("buildings must be a list")
    for pos, raw in enumerate(raw_buildings):
        buildings.append(_parse_building(raw, f"buildings[{pos}]"))
    raw_generate = root.get("generate", [])
    if not isinstance(raw_generate, list):
        raise ValueError("generate must be a list")
    for pos, raw in enumerate(raw_generate):
        buildings.extend(_expand_generate(raw, f"generate[{pos}]"))
    telemetry_block = _require_mapping(root.get("telemetry", {}),
                                       "telemetry")
    _reject_unknown(telemetry_block,
                    ("wifi_jitter", "plc_jitter", "dropout"),
                    "telemetry")
    health_block = _require_mapping(root.get("health", {}), "health")
    _reject_unknown(health_block,
                    ("flap_band", "flap_strikes", "probation_epochs"),
                    "health")
    return FleetSpec(
        name=str(head.get("name", "fleet")),
        seed=_take_int(head, "seed", "fleet", default=0),
        plc_mode=str(head.get("plc_mode", "redistribute")),
        buildings=tuple(buildings),
        telemetry=TelemetryModel(
            wifi_jitter=float(telemetry_block.get("wifi_jitter", 0.0)),
            plc_jitter=float(telemetry_block.get("plc_jitter", 0.0)),
            dropout=float(telemetry_block.get("dropout", 0.0))),
        health=HealthSettings(
            flap_band=float(health_block.get("flap_band", 0.5)),
            flap_strikes=_take_int(health_block, "flap_strikes",
                                   "health", default=2),
            probation_epochs=_take_int(health_block, "probation_epochs",
                                       "health", default=3)))


def load_fleet_spec(path: Union[str, Path]) -> FleetSpec:
    """Load and validate a YAML fleet spec from disk."""
    return parse_fleet_spec(Path(path).read_text(encoding="utf-8"))
