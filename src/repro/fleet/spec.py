"""Declarative fleet specs: the YAML schema behind ``wolt serve``.

A fleet spec names the campus, pins the master seed and PLC sharing
law, and lists buildings — explicitly and/or through ``generate``
blocks that expand into numbered buildings, so a 1000-building campus
spec stays a ten-line file::

    fleet:
      name: campus-east
      seed: 2026
      plc_mode: redistribute
    buildings:
      - name: hq
        extenders: 6
        users: 14
        circuits: [a, a, a, b, b, b]
    generate:
      - prefix: b
        count: 1000
        extenders: 3
        users: 6
    telemetry:
      wifi_jitter: 0.05
      plc_jitter: 0.10
      dropout: 0.01
    health:
      flap_band: 0.5
      flap_strikes: 2
      probation_epochs: 3
      shard_timeout_s: 30.0
      retry_budget: 1
      breaker_strikes: 3
      breaker_probation_epochs: 2
    chaos:
      level: 0.3

The ``health`` block also carries the service's degraded-mode knobs
(per-shard solve deadline, worker retry budget, and the per-building
circuit breaker — see :mod:`repro.fleet.service`), and an optional
``chaos`` block declares a seeded :class:`repro.fleet.chaos.FleetFaultModel`
storm, either as a single ``level`` shorthand or with explicit rates
(``blackout_prob``/``crash_prob``/``crash_attempts``/``hang_prob``/
``hang_s``/``until_epoch``).

Everything downstream is a pure function of the spec: building
topologies come from :func:`~repro.net.topology.enterprise_floor`
seeded by ``SeedSequence(seed, spawn_key=(building, 0))`` and per-epoch
telemetry from ``spawn_key=(building, epoch, 1)``, so any epoch of any
building is reproducible in isolation (which is what makes journal
resume bit-identical — see :mod:`repro.fleet.service`).

The YAML loader (PyYAML) is imported lazily and gated: parsing raises
a clear error when the dependency is absent instead of failing at
import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.problem import Scenario
from ..net.topology import enterprise_floor
from ..plc.sharing import PLC_MODES
from .chaos import FleetFaultModel

__all__ = ["BuildingSpec", "FleetSpec", "HealthSettings",
           "TelemetryModel", "build_building_scenario",
           "load_fleet_spec", "parse_fleet_spec",
           "synthesize_observation"]

#: Third element of the telemetry SeedSequence spawn key.  Topology
#: uses ``(building, 0)``, telemetry ``(building, epoch, 1)``; the
#: fleet chaos layer owns streams 2 and 3 (see ``repro.fleet.chaos``).
TELEMETRY_STREAM = 1


@dataclass(frozen=True)
class BuildingSpec:
    """One building of the fleet.

    Attributes:
        name: unique building name (directive and journal key).
        n_extenders: extender count.
        n_users: user count.
        circuits: optional per-extender powerline-circuit labels (the
            wiring side of the coupling graph in
            :mod:`repro.fleet.sharding`); ``None`` means one circuit.
    """

    name: str
    n_extenders: int
    n_users: int
    circuits: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("building name must be non-empty")
        if self.n_extenders < 1:
            raise ValueError(
                f"building {self.name!r}: extenders must be >= 1")
        if self.n_users < 1:
            raise ValueError(
                f"building {self.name!r}: users must be >= 1")
        if (self.circuits is not None
                and len(self.circuits) != self.n_extenders):
            raise ValueError(
                f"building {self.name!r}: {len(self.circuits)} circuit "
                f"labels for {self.n_extenders} extenders")


@dataclass(frozen=True)
class TelemetryModel:
    """Per-epoch telemetry drift applied to a building's true rates.

    All three knobs are dimensionless: the jitters are relative
    standard deviations of a multiplicative Gaussian factor (clipped at
    zero), ``dropout`` is the per-extender probability that a PLC
    capacity report arrives as NaN (a failed probe).
    """

    wifi_jitter: float = 0.0
    plc_jitter: float = 0.0
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.wifi_jitter < 0 or self.plc_jitter < 0:
            raise ValueError("telemetry jitters must be non-negative")
        if not 0.0 <= self.dropout <= 1.0:
            raise ValueError("dropout must be a probability in [0, 1]")


@dataclass(frozen=True)
class HealthSettings:
    """Health and degraded-mode settings for the fleet service.

    The first three are constructor arguments for each building's
    :class:`~repro.core.health.HealthMonitor`.  The rest drive the
    service's bounded-latency machinery
    (:mod:`repro.fleet.service`):

    Attributes:
        shard_timeout_s: per-shard solve deadline (seconds); a shard
            past it is reaped as a timeout failure and its users carry
            their previous association forward.  ``None`` = no
            deadline.  Only enforceable with worker processes (a hung
            in-process solve cannot be reaped); CLI ``--timeout-s``
            overrides it.
        retry_budget: worker-side retries of a crashed shard solve
            before it becomes an explicit failure; CLI
            ``--retry-budget`` overrides it.
        breaker_strikes: consecutive epochs with shard
            failures/timeouts that trip a building's circuit breaker
            (the building then skips solving and carries forward
            cheaply).
        breaker_probation_epochs: epochs a tripped breaker stays open
            before the building gets a probe solve; a clean probe
            closes the breaker, a failed one re-opens it.
    """

    flap_band: float = 0.5
    flap_strikes: int = 2
    probation_epochs: int = 3
    shard_timeout_s: Optional[float] = None
    retry_budget: int = 1
    breaker_strikes: int = 3
    breaker_probation_epochs: int = 2

    def __post_init__(self) -> None:
        if (self.shard_timeout_s is not None
                and self.shard_timeout_s <= 0):
            raise ValueError("shard_timeout_s must be positive")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.breaker_strikes < 1:
            raise ValueError("breaker_strikes must be >= 1")
        if self.breaker_probation_epochs < 1:
            raise ValueError("breaker_probation_epochs must be >= 1")


@dataclass(frozen=True)
class FleetSpec:
    """A parsed, validated fleet specification."""

    name: str
    seed: int
    plc_mode: str = "redistribute"
    buildings: Tuple[BuildingSpec, ...] = ()
    telemetry: TelemetryModel = field(default_factory=TelemetryModel)
    health: HealthSettings = field(default_factory=HealthSettings)
    chaos: Optional[FleetFaultModel] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fleet name must be non-empty")
        if self.plc_mode not in PLC_MODES:
            raise ValueError(
                f"plc_mode must be one of {PLC_MODES}, got "
                f"{self.plc_mode!r}")
        if not self.buildings:
            raise ValueError("a fleet needs at least one building")
        names = [b.name for b in self.buildings]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate building names: {dupes}")

    @property
    def n_buildings(self) -> int:
        return len(self.buildings)

    @property
    def n_users(self) -> int:
        return sum(b.n_users for b in self.buildings)

    def params(self) -> Dict[str, Any]:
        """JSON-serializable echo for checkpoint fingerprinting.

        ``shard_timeout_s`` and ``retry_budget`` are deliberately
        *not* fingerprinted: they are operational knobs (like ``wolt
        sim``'s ``--timeout-s``/``--max-retries``) whose effects are
        recorded per-epoch in the journal itself, and an operator must
        be able to resume a journal with a different deadline.  The
        breaker knobs *are* scientific — they change which epochs a
        building solves — as is a non-trivial chaos model (a trivial
        one is excluded so a zero-fault chaos run stays bit-identical
        to a clean run, journal included).
        """
        result: Dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "plc_mode": self.plc_mode,
            "buildings": [
                {"name": b.name, "extenders": b.n_extenders,
                 "users": b.n_users,
                 "circuits": (None if b.circuits is None
                              else list(b.circuits))}
                for b in self.buildings],
            "telemetry": {"wifi_jitter": self.telemetry.wifi_jitter,
                          "plc_jitter": self.telemetry.plc_jitter,
                          "dropout": self.telemetry.dropout},
            "health": {"flap_band": self.health.flap_band,
                       "flap_strikes": self.health.flap_strikes,
                       "probation_epochs":
                           self.health.probation_epochs,
                       "breaker_strikes":
                           self.health.breaker_strikes,
                       "breaker_probation_epochs":
                           self.health.breaker_probation_epochs},
        }
        if self.chaos is not None and not self.chaos.trivial:
            result["chaos"] = self.chaos.params()
        return result

    def stream_params(self) -> Dict[str, Any]:
        """The spec subset a recorded telemetry stream is bound to.

        Telemetry is a pure function of the seed, the telemetry model,
        and each building's shape — *not* of health, breaker, chaos or
        PLC-mode settings, so a stream recorded once can legitimately
        be replayed under different operational knobs.  The stream
        header carries ``fingerprint(stream_params())``; a replay
        against a spec whose telemetry-relevant half differs is
        refused loudly (see :mod:`repro.fleet.ingest`).
        """
        params = self.params()
        return {"name": params["name"], "seed": params["seed"],
                "buildings": params["buildings"],
                "telemetry": params["telemetry"]}


def build_building_scenario(spec: FleetSpec,
                            building: int) -> Scenario:
    """The ground-truth topology of one building (pure in the spec).

    Seeded by ``SeedSequence(entropy=spec.seed,
    spawn_key=(building, 0))``, so adding, removing, or reordering
    *other* buildings never changes this one's floor.
    """
    b = spec.buildings[building]
    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=spec.seed, spawn_key=(building, 0)))
    return enterprise_floor(b.n_extenders, b.n_users, rng)


def synthesize_observation(spec: FleetSpec, true: Scenario,
                           building: int,
                           epoch: int) -> Tuple[np.ndarray, np.ndarray]:
    """One epoch of raw telemetry for one building (pure in the spec).

    Returns ``(wifi_obs, plc_obs)``: the building's drifted scan
    reports and PLC capacity probes under the spec's
    :class:`TelemetryModel`, *before* any health folding — exactly
    what a device fleet would report upstream.  Dropped PLC probes are
    NaN.  Seeded by ``SeedSequence(entropy=spec.seed,
    spawn_key=(building, epoch, 1))`` so any epoch of any building is
    reproducible in isolation; ``wolt record``
    (:mod:`repro.fleet.ingest`) persists these exact arrays, which is
    what makes recorded replay bit-identical to a synthetic run.
    """
    model = spec.telemetry
    rng = np.random.default_rng(np.random.SeedSequence(
        entropy=spec.seed,
        spawn_key=(building, epoch, TELEMETRY_STREAM)))
    wifi_obs = true.wifi_rates
    if model.wifi_jitter > 0:
        noise = rng.standard_normal(true.wifi_rates.shape)
        wifi_obs = np.clip(
            true.wifi_rates * (1.0 + model.wifi_jitter * noise),
            0.0, None)
    plc_obs = true.plc_rates.astype(float, copy=True)
    if model.plc_jitter > 0:
        noise = rng.standard_normal(true.plc_rates.shape)
        plc_obs = np.clip(
            plc_obs * (1.0 + model.plc_jitter * noise), 0.0, None)
    if model.dropout > 0:
        lost = rng.random(true.n_extenders) < model.dropout
        plc_obs[lost] = np.nan
    return wifi_obs, plc_obs


# ---------------------------------------------------------------------------
# YAML parsing.


def _require_mapping(value: Any, where: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise ValueError(f"{where} must be a mapping, got "
                         f"{type(value).__name__}")
    return value


def _take_int(mapping: Mapping[str, Any], key: str, where: str,
              default: Optional[int] = None) -> int:
    if key not in mapping:
        if default is None:
            raise ValueError(f"{where} is missing required key "
                             f"{key!r}")
        return default
    value = mapping[key]
    if isinstance(value, bool) or not isinstance(value, int):
        # bool is a subclass of int in Python, so without the explicit
        # reject a YAML `epochs: true` would silently parse as 1.
        raise ValueError(f"{where}.{key} must be an integer, got "
                         f"{value!r}")
    return value


def _take_float(mapping: Mapping[str, Any], key: str, where: str,
                default: float) -> float:
    if key not in mapping or mapping[key] is None:
        return default
    value = mapping[key]
    # Same trap as _take_int: YAML `wifi_jitter: true` is a Python
    # bool, and float(True) is silently 1.0 — a 100% jitter.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{where}.{key} must be a number, got "
                         f"{value!r}")
    return float(value)


def _reject_unknown(mapping: Mapping[str, Any], allowed: Tuple[str, ...],
                    where: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ValueError(f"{where} has unknown keys {unknown}; "
                         f"allowed: {sorted(allowed)}")


def _parse_building(raw: Any, where: str) -> BuildingSpec:
    block = _require_mapping(raw, where)
    _reject_unknown(block, ("name", "extenders", "users", "circuits"),
                    where)
    if "name" not in block:
        raise ValueError(f"{where} is missing required key 'name'")
    circuits: Optional[Tuple[str, ...]] = None
    if block.get("circuits") is not None:
        if not isinstance(block["circuits"], list):
            raise ValueError(f"{where}.circuits must be a list")
        circuits = tuple(str(c) for c in block["circuits"])
    return BuildingSpec(name=str(block["name"]),
                        n_extenders=_take_int(block, "extenders", where),
                        n_users=_take_int(block, "users", where),
                        circuits=circuits)


def _expand_generate(raw: Any, where: str) -> List[BuildingSpec]:
    block = _require_mapping(raw, where)
    _reject_unknown(block, ("prefix", "count", "extenders", "users",
                            "circuits"), where)
    prefix = str(block.get("prefix", "bldg"))
    count = _take_int(block, "count", where)
    if count < 1:
        raise ValueError(f"{where}.count must be >= 1")
    width = len(str(count - 1))
    template = _parse_building(
        {"name": "template",
         "extenders": _take_int(block, "extenders", where),
         "users": _take_int(block, "users", where),
         "circuits": block.get("circuits")}, where)
    return [BuildingSpec(name=f"{prefix}{i:0{width}d}",
                         n_extenders=template.n_extenders,
                         n_users=template.n_users,
                         circuits=template.circuits)
            for i in range(count)]


def _parse_chaos(raw: Any) -> Optional[FleetFaultModel]:
    if raw is None:
        return None
    block = _require_mapping(raw, "chaos")
    _reject_unknown(block, ("level", "blackout_prob", "crash_prob",
                            "crash_attempts", "hang_prob", "hang_s",
                            "until_epoch"), "chaos")
    until: Optional[int] = None
    if block.get("until_epoch") is not None:
        until = _take_int(block, "until_epoch", "chaos")
    if "level" in block:
        extras = sorted(set(block) - {"level", "until_epoch"})
        if extras:
            raise ValueError(
                f"chaos.level is a shorthand for the explicit rates; "
                f"remove {extras} or drop 'level'")
        return FleetFaultModel.from_level(
            _take_float(block, "level", "chaos", default=0.0),
            until_epoch=until)
    return FleetFaultModel(
        blackout_prob=_take_float(block, "blackout_prob", "chaos",
                                  default=0.0),
        crash_prob=_take_float(block, "crash_prob", "chaos",
                               default=0.0),
        crash_attempts=_take_int(block, "crash_attempts", "chaos",
                                 default=1),
        hang_prob=_take_float(block, "hang_prob", "chaos",
                              default=0.0),
        hang_s=_take_float(block, "hang_s", "chaos", default=3600.0),
        until_epoch=until)


def parse_fleet_spec(text: str) -> FleetSpec:
    """Parse and validate a YAML fleet spec from a string."""
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - dep always present
        raise RuntimeError(
            "fleet specs are YAML; install pyyaml to use "
            "repro.fleet.spec") from exc
    document = yaml.safe_load(text)
    root = _require_mapping(document, "fleet spec")
    _reject_unknown(root, ("fleet", "buildings", "generate",
                           "telemetry", "health", "chaos"),
                    "fleet spec")
    head = _require_mapping(root.get("fleet", {}), "fleet")
    _reject_unknown(head, ("name", "seed", "plc_mode"), "fleet")
    buildings: List[BuildingSpec] = []
    raw_buildings = root.get("buildings", [])
    if not isinstance(raw_buildings, list):
        raise ValueError("buildings must be a list")
    for pos, raw in enumerate(raw_buildings):
        buildings.append(_parse_building(raw, f"buildings[{pos}]"))
    raw_generate = root.get("generate", [])
    if not isinstance(raw_generate, list):
        raise ValueError("generate must be a list")
    for pos, raw in enumerate(raw_generate):
        buildings.extend(_expand_generate(raw, f"generate[{pos}]"))
    telemetry_block = _require_mapping(root.get("telemetry", {}),
                                       "telemetry")
    _reject_unknown(telemetry_block,
                    ("wifi_jitter", "plc_jitter", "dropout"),
                    "telemetry")
    health_block = _require_mapping(root.get("health", {}), "health")
    _reject_unknown(health_block,
                    ("flap_band", "flap_strikes", "probation_epochs",
                     "shard_timeout_s", "retry_budget",
                     "breaker_strikes", "breaker_probation_epochs"),
                    "health")
    shard_timeout_s: Optional[float] = None
    if health_block.get("shard_timeout_s") is not None:
        shard_timeout_s = _take_float(health_block, "shard_timeout_s",
                                      "health", default=0.0)
    return FleetSpec(
        name=str(head.get("name", "fleet")),
        seed=_take_int(head, "seed", "fleet", default=0),
        plc_mode=str(head.get("plc_mode", "redistribute")),
        buildings=tuple(buildings),
        telemetry=TelemetryModel(
            wifi_jitter=_take_float(telemetry_block, "wifi_jitter",
                                    "telemetry", default=0.0),
            plc_jitter=_take_float(telemetry_block, "plc_jitter",
                                   "telemetry", default=0.0),
            dropout=_take_float(telemetry_block, "dropout",
                                "telemetry", default=0.0)),
        health=HealthSettings(
            flap_band=_take_float(health_block, "flap_band", "health",
                                  default=0.5),
            flap_strikes=_take_int(health_block, "flap_strikes",
                                   "health", default=2),
            probation_epochs=_take_int(health_block, "probation_epochs",
                                       "health", default=3),
            shard_timeout_s=shard_timeout_s,
            retry_budget=_take_int(health_block, "retry_budget",
                                   "health", default=1),
            breaker_strikes=_take_int(health_block, "breaker_strikes",
                                      "health", default=3),
            breaker_probation_epochs=_take_int(
                health_block, "breaker_probation_epochs", "health",
                default=2)),
        chaos=_parse_chaos(root.get("chaos")))


def load_fleet_spec(path: Union[str, Path]) -> FleetSpec:
    """Load and validate a YAML fleet spec from disk."""
    return parse_fleet_spec(Path(path).read_text(encoding="utf-8"))
