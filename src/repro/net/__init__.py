"""Network model: topology, end-to-end throughput engine, metrics."""

from .engine import (BatchThroughputReport, ThroughputReport,
                     aggregate_throughput, count_engine_calls, evaluate,
                     evaluate_batch)
from .estimate import (EwmaEstimator, estimate_rate_from_rssi_samples,
                       noisy_scenario)
from .metrics import (PerUserComparison, bottom_k_users, compare_per_user,
                      jain_fairness, top_k_users)
from .topology import (FloorPlan, build_scenario, enterprise_floor,
                       sample_user_positions)
from .visualize import render_floor

__all__ = [
    "evaluate", "evaluate_batch", "aggregate_throughput",
    "ThroughputReport", "BatchThroughputReport", "count_engine_calls",
    "jain_fairness", "compare_per_user", "PerUserComparison",
    "bottom_k_users", "top_k_users",
    "FloorPlan", "build_scenario", "enterprise_floor",
    "sample_user_positions",
    "EwmaEstimator", "estimate_rate_from_rssi_samples", "noisy_scenario",
    "render_floor",
]
