"""End-to-end throughput engine for concatenated PLC-WiFi links.

This is the measurement-calibrated network model every association policy
is evaluated against.  Given a :class:`~repro.core.problem.Scenario` and a
user→extender assignment, the engine computes, per extender:

1. the WiFi-side aggregate throughput ``T_WiFi_j`` (Eq. (1), throughput-fair
   sharing with the 802.11 performance anomaly), which is the *offered
   load* the extender presents to the PLC backhaul;
2. the PLC-side grant, by allocating the shared backhaul medium time either
   max-min fairly with leftover redistribution (the behaviour measured on
   the testbed, Fig. 3c) or with the plain time-fair law of Eq. (2);
3. the end-to-end extender throughput
   ``T_j = min(T_WiFi_j, time_share_j * c_j)``,
   split equally among the extender's users (TCP long-term fairness plus
   the throughput-fair WiFi MAC make per-user shares equal).

The engine is deliberately analytic — Section V-A of the paper validates an
equivalent fluid model against the hardware testbed (Fig. 4c); the
slot-level MAC simulators in :mod:`repro.wifi.mac` and :mod:`repro.plc.mac`
independently validate the two sharing laws.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from ..core.problem import (UNASSIGNED, Scenario, validate_assignment,
                            validate_assignment_batch)
from ..plc.sharing import (BatchPlcAllocation, PLC_MODES, PlcAllocation,
                           allocate_backhaul, allocate_backhaul_batch,
                           backhaul_throughputs)
from ..wifi.sharing import _EPS as _RATE_EPS
from ..wifi.sharing import cell_throughputs, cell_throughputs_batch

__all__ = ["ThroughputReport", "BatchThroughputReport", "DeltaEvaluator",
           "evaluate", "evaluate_batch", "aggregate_throughput",
           "EngineCallStats", "count_engine_calls"]


@dataclass
class EngineCallStats:
    """Live counters of engine invocations (see :func:`count_engine_calls`).

    Attributes:
        scalar_calls: scalar evaluations — :func:`evaluate` invocations
            plus per-candidate scalar scoring inside the Phase-II
            reference loops.
        batch_calls: vectorized evaluations — :func:`evaluate_batch`
            invocations plus Phase-II batched gain sweeps.
        batch_rows: total candidates scored across all batched
            evaluations.
        delta_moves: single-move candidates scored incrementally by a
            :class:`DeltaEvaluator` (only the touched cells were
            recomputed).
    """

    scalar_calls: int = 0
    batch_calls: int = 0
    batch_rows: int = 0
    delta_moves: int = 0

    @property
    def candidates_scored(self) -> int:
        """Total assignments scored: scalar, batched and delta combined."""
        return self.scalar_calls + self.batch_rows + self.delta_moves


#: Stack of active counter frames (the engine increments every frame, so
#: nested ``count_engine_calls`` blocks each see their own totals).
_COUNTER_STACK: "List[EngineCallStats]" = []


@contextmanager
def count_engine_calls() -> Iterator[EngineCallStats]:
    """Count engine invocations within a ``with`` block.

    The counting happens inside :func:`evaluate` / :func:`evaluate_batch`
    themselves, so call sites that bound the functions at import time
    (``from ..net.engine import evaluate``) are counted too.  Used by the
    test-suite to assert that the batched search paths issue fewer scalar
    engine calls than the candidates they score.
    """
    stats = EngineCallStats()
    _COUNTER_STACK.append(stats)
    try:
        yield stats
    finally:
        _COUNTER_STACK.remove(stats)


def _record(scalar: int = 0, batch: int = 0, rows: int = 0,
            delta: int = 0) -> None:
    for stats in _COUNTER_STACK:
        stats.scalar_calls += scalar
        stats.batch_calls += batch
        stats.batch_rows += rows
        stats.delta_moves += delta


@dataclass(frozen=True)
class ThroughputReport:
    """Full throughput breakdown of one network configuration.

    Attributes:
        assignment: the validated per-user extender indices.
        wifi_throughputs: per-extender WiFi aggregate ``T_WiFi_j`` (Mbps).
        plc_throughputs: per-extender granted backhaul throughput (Mbps).
        plc_time_shares: per-extender granted fraction of PLC medium time.
        extender_throughputs: per-extender end-to-end throughput
            ``min(T_WiFi_j, PLC grant)`` (Mbps).
        user_throughputs: per-user end-to-end throughput (Mbps); zero for
            unassigned users.
        bottleneck_is_plc: per-extender flag — True when the backhaul is
            the binding constraint of the concatenated link.
    """

    assignment: np.ndarray
    wifi_throughputs: np.ndarray
    plc_throughputs: np.ndarray
    plc_time_shares: np.ndarray
    extender_throughputs: np.ndarray
    user_throughputs: np.ndarray
    bottleneck_is_plc: np.ndarray

    @property
    def aggregate(self) -> float:
        """Total end-to-end network throughput (the paper's objective)."""
        return float(self.extender_throughputs.sum())

    @property
    def n_active_extenders(self) -> int:
        """Number of extenders with at least one attached user."""
        assign = np.asarray(self.assignment, dtype=int)
        attached = assign[assign != UNASSIGNED]
        if attached.size == 0:
            return 0
        return int(np.count_nonzero(
            np.bincount(attached,
                        minlength=self.extender_throughputs.shape[0])))


def evaluate(scenario: Scenario,
             assignment: Sequence[int],
             plc_mode: str = "redistribute",
             require_complete: bool = False) -> ThroughputReport:
    """Evaluate the end-to-end throughput of an assignment.

    Args:
        scenario: the network snapshot (rates and capacities).
        assignment: per-user extender index, ``-1`` for unassigned.
        plc_mode: PLC medium-sharing law — ``"redistribute"`` (testbed
            behaviour, default), ``"active"`` (Eq. (2) over active
            extenders) or ``"fixed"`` (Problem 1's ``c_j/|A|``, the
            paper's simulator model).  See
            :func:`repro.plc.sharing.allocate_backhaul`.
        require_complete: insist that every user is attached (constraint
            (7)); policies evaluate partial assignments during search, so
            this defaults to False.

    Returns:
        A :class:`ThroughputReport`.
    """
    _record(scalar=1)
    assign = validate_assignment(scenario, assignment,
                                 require_complete=require_complete)
    wifi = cell_throughputs(scenario.wifi_rates, assign,
                            scenario.n_extenders)
    alloc: PlcAllocation = allocate_backhaul(scenario.plc_rates, wifi,
                                             mode=plc_mode)
    extender_tput = np.minimum(wifi, alloc.throughputs)
    counts = np.bincount(assign[assign != UNASSIGNED],
                         minlength=scenario.n_extenders)
    user_tput = np.zeros(scenario.n_users, dtype=float)
    attached = np.flatnonzero(assign != UNASSIGNED)
    if attached.size:
        per_user = np.zeros(scenario.n_extenders, dtype=float)
        busy = counts > 0
        per_user[busy] = extender_tput[busy] / counts[busy]
        user_tput[attached] = per_user[assign[attached]]
    bottleneck = (counts > 0) & (alloc.throughputs + 1e-12 < wifi)
    return ThroughputReport(
        assignment=assign,
        wifi_throughputs=wifi,
        plc_throughputs=alloc.throughputs,
        plc_time_shares=alloc.time_shares,
        extender_throughputs=extender_tput,
        user_throughputs=user_tput,
        bottleneck_is_plc=bottleneck,
    )


def aggregate_throughput(scenario: Scenario,
                         assignment: Sequence[int],
                         plc_mode: str = "redistribute") -> float:
    """Shorthand for the aggregate objective value of an assignment."""
    return evaluate(scenario, assignment, plc_mode=plc_mode).aggregate


@dataclass(frozen=True)
class BatchThroughputReport:
    """Throughput breakdowns for a batch of candidate assignments.

    Every array carries a leading batch axis of size ``B`` (the number of
    candidates); the remaining axes match :class:`ThroughputReport`.

    Attributes:
        assignments: ``(B, n_users)`` validated extender indices.
        wifi_throughputs: ``(B, n_extenders)`` WiFi aggregates (Mbps).
        plc_throughputs: ``(B, n_extenders)`` granted backhaul (Mbps).
        plc_time_shares: ``(B, n_extenders)`` granted medium-time shares.
        extender_throughputs: ``(B, n_extenders)`` end-to-end throughputs.
        user_throughputs: ``(B, n_users)`` per-user throughputs (Mbps).
        bottleneck_is_plc: ``(B, n_extenders)`` backhaul-bound flags.
    """

    assignments: np.ndarray
    wifi_throughputs: np.ndarray
    plc_throughputs: np.ndarray
    plc_time_shares: np.ndarray
    extender_throughputs: np.ndarray
    user_throughputs: np.ndarray
    bottleneck_is_plc: np.ndarray

    def __len__(self) -> int:
        return self.assignments.shape[0]

    @property
    def aggregates(self) -> np.ndarray:
        """Per-candidate total end-to-end throughput, shape ``(B,)``."""
        return self.extender_throughputs.sum(axis=1)

    def best(self) -> int:
        """Index of the candidate with the highest aggregate throughput.

        Ties break toward the lowest index (numpy's first-occurrence
        argmax), matching the strict-improvement scans of the scalar
        search loops.
        """
        if len(self) == 0:
            raise ValueError("empty batch has no best candidate")
        return int(np.argmax(self.aggregates))

    def expand(self, b: int) -> ThroughputReport:
        """The exact single-candidate :class:`ThroughputReport` of row ``b``.

        The returned report is built from the batch's own rows (no
        re-evaluation), so it is numerically identical to the batch entry.
        """
        return ThroughputReport(
            assignment=self.assignments[b].copy(),
            wifi_throughputs=self.wifi_throughputs[b].copy(),
            plc_throughputs=self.plc_throughputs[b].copy(),
            plc_time_shares=self.plc_time_shares[b].copy(),
            extender_throughputs=self.extender_throughputs[b].copy(),
            user_throughputs=self.user_throughputs[b].copy(),
            bottleneck_is_plc=self.bottleneck_is_plc[b].copy(),
        )


def evaluate_batch(scenario: Scenario,
                   assignments: Sequence[Sequence[int]],
                   plc_mode: str = "redistribute",
                   require_complete: bool = False) -> BatchThroughputReport:
    """Evaluate a whole batch of candidate assignments in one pass.

    Semantically equivalent to calling :func:`evaluate` on every row of
    ``assignments``, but the WiFi sharing law, the PLC allocation, and the
    per-user split are all vectorized across the batch, so scoring ``B``
    candidates costs a handful of numpy sweeps instead of ``B`` Python
    round-trips.  This is the hot path of every association-search
    algorithm (greedy insertion, local search, branch-and-bound leaves,
    the online baselines).

    Args:
        scenario: the network snapshot (rates and capacities).
        assignments: ``(B, n_users)`` matrix of per-user extender indices,
            ``-1`` for unassigned; a single 1-D assignment is promoted to
            a batch of one.
        plc_mode: PLC medium-sharing law (see :func:`evaluate`).
        require_complete: insist that every user is attached in every row.

    Returns:
        A :class:`BatchThroughputReport`; ``report.expand(b)`` recovers the
        exact scalar report of candidate ``b``.
    """
    assign = validate_assignment_batch(scenario, assignments,
                                       require_complete=require_complete)
    n_batch = assign.shape[0]
    _record(batch=1, rows=n_batch)
    n_ext = scenario.n_extenders
    n_users = scenario.n_users
    wifi = cell_throughputs_batch(scenario.wifi_rates, assign, n_ext)
    alloc: BatchPlcAllocation = allocate_backhaul_batch(
        scenario.plc_rates, wifi, mode=plc_mode)
    extender_tput = np.minimum(wifi, alloc.throughputs)

    attached = assign != UNASSIGNED
    safe = np.where(attached, assign, 0)
    flat = (np.arange(n_batch)[:, np.newaxis] * n_ext + safe)[attached]
    counts = np.bincount(flat, minlength=n_batch * n_ext)
    counts = counts.reshape(n_batch, n_ext)

    per_user = np.zeros((n_batch, n_ext), dtype=float)
    busy = counts > 0
    per_user[busy] = extender_tput[busy] / counts[busy]
    user_tput = np.zeros((n_batch, n_users), dtype=float)
    if np.any(attached):
        user_tput[attached] = np.take_along_axis(per_user, safe,
                                                 axis=1)[attached]
    bottleneck = busy & (alloc.throughputs + 1e-12 < wifi)
    return BatchThroughputReport(
        assignments=assign,
        wifi_throughputs=wifi,
        plc_throughputs=alloc.throughputs,
        plc_time_shares=alloc.time_shares,
        extender_throughputs=extender_tput,
        user_throughputs=user_tput,
        bottleneck_is_plc=bottleneck,
    )


class DeltaEvaluator:
    """Incremental scorer for single-user reassociation moves.

    A move ``user: i -> j`` only changes the membership of cells ``i``
    and ``j``; every other cell's WiFi aggregate is untouched.  This
    evaluator caches the per-extender WiFi vector and, per candidate
    move, recomputes just the touched cells with the *exact* scalar
    expression :func:`repro.wifi.sharing.cell_throughputs` uses — so
    the resulting aggregate is **bit-identical** to a full
    :func:`evaluate` of the moved assignment (the PLC allocation is
    O(n_extenders) and always recomputed in full; cheap next to the
    O(n_users · n_extenders) WiFi pass it replaces).

    The cache is seeded by one full scalar pass at construction (or
    validated against a batch row via :meth:`from_batch`); the
    :meth:`reconcile` check recomputes everything from scratch and
    fails loudly on cache drift, which the differential test wall
    exercises on random move sequences.

    Not thread-safe; one evaluator per search loop.
    """

    def __init__(self, scenario: Scenario, assignment: Sequence[int],
                 plc_mode: str = "redistribute") -> None:
        if plc_mode not in PLC_MODES:
            raise ValueError(
                f"plc_mode must be one of {PLC_MODES}, got {plc_mode!r}")
        self._scenario = scenario
        self._rates = np.asarray(scenario.wifi_rates, dtype=float)
        self._plc_rates = np.asarray(scenario.plc_rates, dtype=float)
        self._plc_mode = plc_mode
        self._assignment = validate_assignment(scenario, assignment).copy()
        # cell_throughputs rejects members with non-positive rates, so
        # from here on per-move validation narrows to the moved user.
        self._wifi = cell_throughputs(self._rates, self._assignment,
                                      scenario.n_extenders)
        self._aggregate = self._full_aggregate(self._wifi)

    @classmethod
    def from_batch(cls, scenario: Scenario, report: BatchThroughputReport,
                   index: int = 0, plc_mode: str = "redistribute",
                   atol: float = 1e-9) -> "DeltaEvaluator":
        """Seed from row ``index`` of a cached :class:`BatchThroughputReport`.

        The evaluator recomputes the WiFi vector with the scalar law
        (the batch kernel's scatter-add sums in a different order, so
        its bits may differ at ulp level) and *reconciles* it against
        the cached batch row: any deviation beyond ``atol`` raises,
        catching a stale or mismatched report at the hand-off instead
        of corrupting the search.
        """
        ev = cls(scenario, report.assignments[index], plc_mode=plc_mode)
        cached = np.asarray(report.wifi_throughputs[index], dtype=float)
        drift = float(np.max(np.abs(cached - ev._wifi))) \
            if cached.size else 0.0
        if drift > atol:
            raise ValueError(
                f"cached batch report disagrees with scalar recompute "
                f"by {drift:.3e} (> atol={atol:.0e}) — stale report?")
        return ev

    @property
    def assignment(self) -> np.ndarray:
        """Copy of the current per-user extender indices."""
        return self._assignment.copy()

    @property
    def wifi_throughputs(self) -> np.ndarray:
        """Copy of the cached per-extender WiFi aggregates (Mbps)."""
        return self._wifi.copy()

    @property
    def aggregate(self) -> float:
        """Aggregate end-to-end throughput of the current assignment."""
        return self._aggregate

    def _cell_wifi(self, j: int) -> float:
        """Recompute cell ``j`` exactly as :func:`cell_throughputs` does.

        Members are guaranteed to have positive rates: the seed pass
        validated the whole assignment and :meth:`_check_dest` vets
        every move before it lands, so no per-member check is needed on
        this per-move hot path.
        """
        members = np.flatnonzero(self._assignment == j)
        if members.size == 0:
            return 0.0
        return members.size / float(np.sum(1.0 / self._rates[members, j]))

    def _check_dest(self, user: int, dest: int) -> None:
        if dest != UNASSIGNED and self._rates[user, dest] <= _RATE_EPS:
            raise ValueError(
                f"user {user} assigned to extender {dest} "
                f"with non-positive WiFi rate")

    def _full_aggregate(self, wifi: np.ndarray) -> float:
        # backhaul_throughputs is the pre-validated fast path of
        # allocate_backhaul (bit-identical throughputs).
        plc = backhaul_throughputs(self._plc_rates, wifi,
                                   mode=self._plc_mode)
        return float(np.minimum(wifi, plc).sum())

    def score_move(self, user: int, dest: int) -> float:
        """Aggregate throughput if ``user`` moved to ``dest`` (no commit).

        ``dest`` may be :data:`~repro.core.problem.UNASSIGNED` to score
        a detach.  Bit-identical to ``evaluate(scenario, moved).aggregate``.
        """
        src = int(self._assignment[user])
        if dest == src:
            return self._aggregate
        self._check_dest(user, dest)
        _record(delta=1)
        touched = [j for j in (src, dest) if j != UNASSIGNED]
        trial_wifi = self._wifi.copy()
        self._assignment[user] = dest
        try:
            for j in touched:
                trial_wifi[j] = self._cell_wifi(j)
        finally:
            self._assignment[user] = src
        return self._full_aggregate(trial_wifi)

    def commit(self, user: int, dest: int) -> float:
        """Apply the move, update the touched cells, return the aggregate."""
        src = int(self._assignment[user])
        if dest == src:
            return self._aggregate
        self._check_dest(user, dest)
        self._assignment[user] = dest
        for j in (src, dest):
            if j != UNASSIGNED:
                self._wifi[j] = self._cell_wifi(j)
        self._aggregate = self._full_aggregate(self._wifi)
        return self._aggregate

    def reconcile(self, atol: float = 0.0) -> float:
        """Recompute the WiFi cache from scratch and verify it.

        Returns the max absolute drift; raises if it exceeds ``atol``
        (with the scalar per-cell law the drift is exactly zero — any
        nonzero value means a bookkeeping bug).  The cache is refreshed
        either way.
        """
        fresh = cell_throughputs(self._rates, self._assignment,
                                 self._scenario.n_extenders)
        drift = float(np.max(np.abs(fresh - self._wifi))) \
            if fresh.size else 0.0
        self._wifi = fresh
        self._aggregate = self._full_aggregate(self._wifi)
        if drift > atol:
            raise RuntimeError(
                f"DeltaEvaluator cache drifted by {drift:.3e} "
                f"(> atol={atol:.0e}) — incremental bookkeeping bug")
        return drift

    def report(self) -> ThroughputReport:
        """Full :class:`ThroughputReport` of the current assignment.

        Delegates to :func:`evaluate` (one full scalar pass), so the
        result is exactly what any non-incremental caller would see.
        """
        return evaluate(self._scenario, self._assignment,
                        plc_mode=self._plc_mode)
