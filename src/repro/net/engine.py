"""End-to-end throughput engine for concatenated PLC-WiFi links.

This is the measurement-calibrated network model every association policy
is evaluated against.  Given a :class:`~repro.core.problem.Scenario` and a
user→extender assignment, the engine computes, per extender:

1. the WiFi-side aggregate throughput ``T_WiFi_j`` (Eq. (1), throughput-fair
   sharing with the 802.11 performance anomaly), which is the *offered
   load* the extender presents to the PLC backhaul;
2. the PLC-side grant, by allocating the shared backhaul medium time either
   max-min fairly with leftover redistribution (the behaviour measured on
   the testbed, Fig. 3c) or with the plain time-fair law of Eq. (2);
3. the end-to-end extender throughput
   ``T_j = min(T_WiFi_j, time_share_j * c_j)``,
   split equally among the extender's users (TCP long-term fairness plus
   the throughput-fair WiFi MAC make per-user shares equal).

The engine is deliberately analytic — Section V-A of the paper validates an
equivalent fluid model against the hardware testbed (Fig. 4c); the
slot-level MAC simulators in :mod:`repro.wifi.mac` and :mod:`repro.plc.mac`
independently validate the two sharing laws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.problem import UNASSIGNED, Scenario, validate_assignment
from ..plc.sharing import PlcAllocation, allocate_backhaul
from ..wifi.sharing import cell_throughputs

__all__ = ["ThroughputReport", "evaluate", "aggregate_throughput"]


@dataclass(frozen=True)
class ThroughputReport:
    """Full throughput breakdown of one network configuration.

    Attributes:
        assignment: the validated per-user extender indices.
        wifi_throughputs: per-extender WiFi aggregate ``T_WiFi_j`` (Mbps).
        plc_throughputs: per-extender granted backhaul throughput (Mbps).
        plc_time_shares: per-extender granted fraction of PLC medium time.
        extender_throughputs: per-extender end-to-end throughput
            ``min(T_WiFi_j, PLC grant)`` (Mbps).
        user_throughputs: per-user end-to-end throughput (Mbps); zero for
            unassigned users.
        bottleneck_is_plc: per-extender flag — True when the backhaul is
            the binding constraint of the concatenated link.
    """

    assignment: np.ndarray
    wifi_throughputs: np.ndarray
    plc_throughputs: np.ndarray
    plc_time_shares: np.ndarray
    extender_throughputs: np.ndarray
    user_throughputs: np.ndarray
    bottleneck_is_plc: np.ndarray

    @property
    def aggregate(self) -> float:
        """Total end-to-end network throughput (the paper's objective)."""
        return float(self.extender_throughputs.sum())

    @property
    def n_active_extenders(self) -> int:
        """Number of extenders with at least one attached user."""
        return int(np.count_nonzero(
            np.bincount(self.assignment[self.assignment != UNASSIGNED],
                        minlength=self.extender_throughputs.shape[0])))


def evaluate(scenario: Scenario,
             assignment: Sequence[int],
             plc_mode: str = "redistribute",
             require_complete: bool = False) -> ThroughputReport:
    """Evaluate the end-to-end throughput of an assignment.

    Args:
        scenario: the network snapshot (rates and capacities).
        assignment: per-user extender index, ``-1`` for unassigned.
        plc_mode: PLC medium-sharing law — ``"redistribute"`` (testbed
            behaviour, default), ``"active"`` (Eq. (2) over active
            extenders) or ``"fixed"`` (Problem 1's ``c_j/|A|``, the
            paper's simulator model).  See
            :func:`repro.plc.sharing.allocate_backhaul`.
        require_complete: insist that every user is attached (constraint
            (7)); policies evaluate partial assignments during search, so
            this defaults to False.

    Returns:
        A :class:`ThroughputReport`.
    """
    assign = validate_assignment(scenario, assignment,
                                 require_complete=require_complete)
    wifi = cell_throughputs(scenario.wifi_rates, assign,
                            scenario.n_extenders)
    alloc: PlcAllocation = allocate_backhaul(scenario.plc_rates, wifi,
                                             mode=plc_mode)
    extender_tput = np.minimum(wifi, alloc.throughputs)
    counts = np.bincount(assign[assign != UNASSIGNED],
                         minlength=scenario.n_extenders)
    user_tput = np.zeros(scenario.n_users, dtype=float)
    attached = np.flatnonzero(assign != UNASSIGNED)
    if attached.size:
        per_user = np.zeros(scenario.n_extenders, dtype=float)
        busy = counts > 0
        per_user[busy] = extender_tput[busy] / counts[busy]
        user_tput[attached] = per_user[assign[attached]]
    bottleneck = (counts > 0) & (alloc.throughputs + 1e-12 < wifi)
    return ThroughputReport(
        assignment=assign,
        wifi_throughputs=wifi,
        plc_throughputs=alloc.throughputs,
        plc_time_shares=alloc.time_shares,
        extender_throughputs=extender_tput,
        user_throughputs=user_tput,
        bottleneck_is_plc=bottleneck,
    )


def aggregate_throughput(scenario: Scenario,
                         assignment: Sequence[int],
                         plc_mode: str = "redistribute") -> float:
    """Shorthand for the aggregate objective value of an assignment."""
    return evaluate(scenario, assignment, plc_mode=plc_mode).aggregate
