"""Channel-quality estimation from noisy measurements.

§V-A of the paper: clients estimate per-extender WiFi rates from the
NIC driver's MCS readout, and the CC measures PLC capacities offline
with iperf.  Both observations are noisy in practice.  This module
provides the estimators a deployment would use — RSSI smoothing, MCS
quantization, capacity averaging — and the noise models the robustness
experiment (``repro.experiments.robustness``) perturbs inputs with.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.problem import Scenario
from ..wifi.phy import WifiPhy

__all__ = ["EwmaEstimator", "estimate_rate_from_rssi_samples",
           "noisy_scenario"]


class EwmaEstimator:
    """Exponentially-weighted moving average of a scalar measurement.

    The standard smoother drivers apply to RSSI readings before rate
    adaptation decisions.

    Args:
        alpha: weight of the newest sample, in ``(0, 1]``.
    """

    def __init__(self, alpha: float = 0.2) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._value: Optional[float] = None

    @property
    def value(self) -> float:
        """Current estimate (raises before the first update)."""
        if self._value is None:
            raise ValueError("no samples observed yet")
        return self._value

    def update(self, sample: float) -> float:
        """Fold in one sample and return the new estimate."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = (self.alpha * float(sample)
                           + (1.0 - self.alpha) * self._value)
        return self._value

    def reset(self) -> None:
        """Forget all history."""
        self._value = None


def estimate_rate_from_rssi_samples(rssi_samples_dbm: Sequence[float],
                                    phy: Optional[WifiPhy] = None,
                                    alpha: float = 0.2) -> float:
    """PHY-rate estimate from a burst of RSSI samples.

    Smooths the samples with an EWMA, converts to SNR against the PHY's
    noise floor, and quantizes through the MCS ladder — what the paper's
    user-space utility reads from the NIC driver.

    Args:
        rssi_samples_dbm: measured RSSI values (dBm), oldest first.
        phy: PHY model supplying noise floor and MCS table.
        alpha: EWMA weight.

    Returns:
        Estimated PHY rate (Mbps), 0 when below the lowest MCS.
    """
    samples = list(rssi_samples_dbm)
    if not samples:
        raise ValueError("at least one RSSI sample is required")
    phy = phy or WifiPhy()
    ewma = EwmaEstimator(alpha=alpha)
    for sample in samples:
        ewma.update(float(sample))
    return phy.rate_for_snr(ewma.value - phy.noise_floor_dbm)


def noisy_scenario(scenario: Scenario,
                   rng: np.random.Generator,
                   wifi_noise_fraction: float = 0.0,
                   plc_noise_fraction: float = 0.0) -> Scenario:
    """A scenario as *estimated* by an imperfect controller.

    Multiplies every WiFi rate and PLC capacity by independent
    log-normal factors with the given relative standard deviations —
    the inputs an association policy actually sees.  Reachability is
    preserved (zero rates stay zero).

    Args:
        scenario: the ground-truth snapshot.
        rng: random generator.
        wifi_noise_fraction: relative std-dev of WiFi rate estimates.
        plc_noise_fraction: relative std-dev of PLC capacity estimates.

    Returns:
        A new :class:`Scenario` with perturbed rates.
    """
    if wifi_noise_fraction < 0 or plc_noise_fraction < 0:
        raise ValueError("noise fractions must be non-negative")
    wifi = scenario.wifi_rates.copy()
    if wifi_noise_fraction > 0:
        sigma = np.sqrt(np.log1p(wifi_noise_fraction ** 2))
        factors = rng.lognormal(-sigma ** 2 / 2, sigma, wifi.shape)
        wifi = np.where(wifi > 0, wifi * factors, 0.0)
    plc = scenario.plc_rates.copy()
    if plc_noise_fraction > 0:
        sigma = np.sqrt(np.log1p(plc_noise_fraction ** 2))
        plc = plc * rng.lognormal(-sigma ** 2 / 2, sigma, plc.shape)
    return Scenario(wifi_rates=wifi, plc_rates=plc,
                    capacities=scenario.capacities,
                    user_ids=scenario.user_ids)
