"""Channel-quality estimation from noisy measurements.

§V-A of the paper: clients estimate per-extender WiFi rates from the
NIC driver's MCS readout, and the CC measures PLC capacities offline
with iperf.  Both observations are noisy in practice.  This module
provides the estimators a deployment would use — RSSI smoothing, MCS
quantization, capacity averaging — and the noise models the robustness
experiment (``repro.experiments.robustness``) perturbs inputs with.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.problem import Scenario
from ..wifi.phy import WifiPhy

__all__ = ["EwmaEstimator", "estimate_rate_from_rssi_samples",
           "noisy_scenario"]


class EwmaEstimator:
    """Exponentially-weighted moving average of a scalar measurement.

    The standard smoother drivers apply to RSSI readings before rate
    adaptation decisions.

    A NaN or infinite sample would poison the average forever (every
    later estimate inherits it), so non-finite samples are rejected
    with ``ValueError`` by default.  A driver that emits occasional
    garbage mid-reset can instead pass ``drop_nonfinite=True``: bad
    samples are skipped, counted in :attr:`dropped`, and leave the
    estimate unchanged.

    Args:
        alpha: weight of the newest sample, in ``(0, 1]``.
        drop_nonfinite: skip (and count) non-finite samples instead of
            raising.
    """

    def __init__(self, alpha: float = 0.2,
                 drop_nonfinite: bool = False) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.drop_nonfinite = drop_nonfinite
        #: Non-finite samples skipped so far (drop_nonfinite mode).
        self.dropped = 0
        self._value: Optional[float] = None

    @property
    def value(self) -> float:
        """Current estimate (raises before the first *finite* update)."""
        if self._value is None:
            raise ValueError("no samples observed yet")
        return self._value

    def update(self, sample: float) -> float:
        """Fold in one sample and return the new estimate.

        Raises:
            ValueError: on a non-finite sample (unless the estimator
                was built with ``drop_nonfinite=True``, in which case
                the sample is counted and skipped; skipping before any
                finite sample returns NaN as there is no estimate yet).
        """
        sample = float(sample)
        if not np.isfinite(sample):
            if not self.drop_nonfinite:
                raise ValueError(
                    f"non-finite sample {sample!r} would poison the "
                    "EWMA; pass drop_nonfinite=True to skip it")
            self.dropped += 1
            return self._value if self._value is not None \
                else float("nan")
        if self._value is None:
            self._value = sample
        else:
            self._value = (self.alpha * sample
                           + (1.0 - self.alpha) * self._value)
        return self._value

    def reset(self) -> None:
        """Forget all history (the drop counter included)."""
        self._value = None
        self.dropped = 0


def estimate_rate_from_rssi_samples(rssi_samples_dbm: Sequence[float],
                                    phy: Optional[WifiPhy] = None,
                                    alpha: float = 0.2,
                                    drop_nonfinite: bool = False
                                    ) -> float:
    """PHY-rate estimate from a burst of RSSI samples.

    Smooths the samples with an EWMA, converts to SNR against the PHY's
    noise floor, and quantizes through the MCS ladder — what the paper's
    user-space utility reads from the NIC driver.

    Args:
        rssi_samples_dbm: measured RSSI values (dBm), oldest first.
        phy: PHY model supplying noise floor and MCS table.
        alpha: EWMA weight.
        drop_nonfinite: skip non-finite samples (driver garbage)
            instead of raising; with it set, a burst where *every*
            sample was dropped still raises — there is no estimate to
            give.

    Returns:
        Estimated PHY rate (Mbps), 0 when below the lowest MCS.

    Raises:
        ValueError: on an empty burst, on a non-finite sample (default
            mode), or when ``drop_nonfinite`` discarded all samples.
    """
    samples = list(rssi_samples_dbm)
    if not samples:
        raise ValueError("at least one RSSI sample is required")
    phy = phy or WifiPhy()
    ewma = EwmaEstimator(alpha=alpha, drop_nonfinite=drop_nonfinite)
    for index, sample in enumerate(samples):
        try:
            ewma.update(float(sample))
        except ValueError as exc:
            raise ValueError(
                f"RSSI sample {index} is non-finite "
                f"({float(sample)!r}); pass drop_nonfinite=True to "
                "skip driver garbage") from exc
    if ewma.dropped == len(samples):
        raise ValueError(
            f"all {len(samples)} RSSI samples were non-finite")
    return phy.rate_for_snr(ewma.value - phy.noise_floor_dbm)


def noisy_scenario(scenario: Scenario,
                   rng: np.random.Generator,
                   wifi_noise_fraction: float = 0.0,
                   plc_noise_fraction: float = 0.0) -> Scenario:
    """A scenario as *estimated* by an imperfect controller.

    Multiplies every WiFi rate and PLC capacity by independent
    log-normal factors with the given relative standard deviations —
    the inputs an association policy actually sees.  Reachability is
    preserved (zero rates stay zero).

    Args:
        scenario: the ground-truth snapshot.
        rng: random generator.
        wifi_noise_fraction: relative std-dev of WiFi rate estimates.
        plc_noise_fraction: relative std-dev of PLC capacity estimates.

    Returns:
        A new :class:`Scenario` with perturbed rates.
    """
    if wifi_noise_fraction < 0 or plc_noise_fraction < 0:
        raise ValueError("noise fractions must be non-negative")
    wifi = scenario.wifi_rates.copy()
    if wifi_noise_fraction > 0:
        sigma = np.sqrt(np.log1p(wifi_noise_fraction ** 2))
        factors = rng.lognormal(-sigma ** 2 / 2, sigma, wifi.shape)
        wifi = np.where(wifi > 0, wifi * factors, 0.0)
    plc = scenario.plc_rates.copy()
    if plc_noise_fraction > 0:
        sigma = np.sqrt(np.log1p(plc_noise_fraction ** 2))
        plc = plc * rng.lognormal(-sigma ** 2 / 2, sigma, plc.shape)
    return Scenario(wifi_rates=wifi, plc_rates=plc,
                    capacities=scenario.capacities,
                    user_ids=scenario.user_ids)
