"""Network-level performance metrics used in the paper's evaluation.

Aggregate throughput is the paper's objective; Jain's fairness index
(§V-E) and per-user win/loss fractions (Fig. 4b) quantify the side
effects of throughput-maximizing association.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["jain_fairness", "PerUserComparison", "compare_per_user",
           "bottom_k_users", "top_k_users"]


def jain_fairness(throughputs: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    Ranges over ``(0, 1]``; 1 means perfectly equal allocation.  An empty
    or all-zero allocation returns 0 by convention.
    """
    x = np.asarray(list(throughputs), dtype=float)
    if x.size == 0:
        return 0.0
    if np.any(x < 0):
        raise ValueError("throughputs must be non-negative")
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 0.0
    return float(np.sum(x)) ** 2 / denom


@dataclass(frozen=True)
class PerUserComparison:
    """Per-user effect of switching policy A → policy B (Fig. 4b).

    Attributes:
        improved_fraction: fraction of users strictly better off under B.
        degraded_fraction: fraction strictly worse off under B.
        unchanged_fraction: fraction within the tie tolerance.
        deltas: per-user throughput change (B - A), Mbps.
    """

    improved_fraction: float
    degraded_fraction: float
    unchanged_fraction: float
    deltas: np.ndarray


def compare_per_user(baseline: Sequence[float],
                     candidate: Sequence[float],
                     tolerance: float = 1e-6) -> PerUserComparison:
    """Classify each user as improved / degraded / unchanged.

    Args:
        baseline: per-user throughputs under the baseline policy.
        candidate: per-user throughputs under the candidate policy
            (same user order).
        tolerance: absolute Mbps band treated as a tie.
    """
    a = np.asarray(list(baseline), dtype=float)
    b = np.asarray(list(candidate), dtype=float)
    if a.shape != b.shape:
        raise ValueError("both policies must cover the same users")
    if a.size == 0:
        raise ValueError("at least one user is required")
    deltas = b - a
    improved = float(np.mean(deltas > tolerance))
    degraded = float(np.mean(deltas < -tolerance))
    return PerUserComparison(improved_fraction=improved,
                             degraded_fraction=degraded,
                             unchanged_fraction=1.0 - improved - degraded,
                             deltas=deltas)


def bottom_k_users(throughputs: Sequence[float], k: int) -> np.ndarray:
    """Indices of the ``k`` users with the lowest throughput (Fig. 5a)."""
    x = np.asarray(list(throughputs), dtype=float)
    if not 0 < k <= x.size:
        raise ValueError("k must be in [1, n_users]")
    return np.argsort(x, kind="stable")[:k]


def top_k_users(throughputs: Sequence[float], k: int) -> np.ndarray:
    """Indices of the ``k`` users with the highest throughput (Fig. 5b)."""
    x = np.asarray(list(throughputs), dtype=float)
    if not 0 < k <= x.size:
        raise ValueError("k must be in [1, n_users]")
    return np.argsort(-x, kind="stable")[:k]
