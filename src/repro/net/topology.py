"""Enterprise floor-plan topology: extenders at outlets, users on a plane.

Reproduces the paper's simulation setting (§V-A): a 100 m x 100 m 2-D
plane, extenders plugged into power outlets, users geographically
uniformly distributed, WiFi channel quality a function of user-extender
distance, and PLC link capacities calibrated from building outlets.

:class:`FloorPlan` carries the geometry; :func:`build_scenario` turns a
floor plan into the rate matrices of a
:class:`~repro.core.problem.Scenario`; :func:`enterprise_floor` samples
the paper's large-scale setting end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.problem import Scenario
from ..plc.channel import PowerlineNetwork, random_building
from ..wifi.phy import WifiPhy

__all__ = ["FloorPlan", "build_scenario", "enterprise_floor",
           "sample_user_positions"]


@dataclass(frozen=True)
class FloorPlan:
    """Geometry of one enterprise floor.

    Attributes:
        width_m: plane width (paper: 100 m).
        height_m: plane height (paper: 100 m).
        extender_xy: ``(n_extenders, 2)`` outlet/extender coordinates.
        user_xy: ``(n_users, 2)`` user coordinates.
        plc_rates: per-extender PLC rates (Mbps).
    """

    width_m: float
    height_m: float
    extender_xy: np.ndarray
    user_xy: np.ndarray
    plc_rates: np.ndarray

    def __post_init__(self) -> None:
        ext = np.atleast_2d(np.asarray(self.extender_xy, dtype=float))
        usr = (np.asarray(self.user_xy, dtype=float).reshape(-1, 2)
               if np.asarray(self.user_xy).size else
               np.empty((0, 2)))
        plc = np.asarray(self.plc_rates, dtype=float).ravel()
        object.__setattr__(self, "extender_xy", ext)
        object.__setattr__(self, "user_xy", usr)
        object.__setattr__(self, "plc_rates", plc)
        if self.width_m <= 0 or self.height_m <= 0:
            raise ValueError("floor dimensions must be positive")
        if ext.shape[0] != plc.shape[0]:
            raise ValueError("one PLC rate per extender is required")

    @property
    def n_extenders(self) -> int:
        return self.extender_xy.shape[0]

    @property
    def n_users(self) -> int:
        return self.user_xy.shape[0]

    def with_users(self, user_xy: np.ndarray) -> "FloorPlan":
        """The same floor with a different user population."""
        return FloorPlan(width_m=self.width_m, height_m=self.height_m,
                         extender_xy=self.extender_xy, user_xy=user_xy,
                         plc_rates=self.plc_rates)


def sample_user_positions(n_users: int, width_m: float, height_m: float,
                          rng: np.random.Generator) -> np.ndarray:
    """Uniform user positions on the plane (the paper's distribution)."""
    if n_users < 0:
        raise ValueError("n_users must be non-negative")
    return np.column_stack([rng.uniform(0, width_m, n_users),
                            rng.uniform(0, height_m, n_users)])


def build_scenario(plan: FloorPlan,
                   phy: Optional[WifiPhy] = None,
                   rng: Optional[np.random.Generator] = None,
                   ensure_reachable: bool = True) -> Scenario:
    """Convert a floor plan into a rate-matrix :class:`Scenario`.

    Args:
        plan: the floor geometry.
        phy: WiFi PHY/propagation model (defaults to :class:`WifiPhy`).
        rng: generator for shadowing draws (only used when the PHY has
            shadowing enabled).
        ensure_reachable: when a user is out of range of every extender,
            attach it to the nearest one at the lowest MCS instead of
            producing an unattachable user (a real client would still
            hear beacons at the cell edge).

    Returns:
        A :class:`Scenario` whose WiFi rates follow the distance model
        and whose PLC rates come from the floor plan.
    """
    phy = phy or WifiPhy()
    wifi = phy.rate_matrix(plan.user_xy, plan.extender_xy, rng)
    if ensure_reachable and plan.n_users:
        lowest = phy.mcs_table[0][1] * phy.spatial_streams
        for i in range(plan.n_users):
            if not np.any(wifi[i] > 0):
                diff = plan.extender_xy - plan.user_xy[i]
                nearest = int(np.argmin(np.einsum("ij,ij->i", diff, diff)))
                wifi[i, nearest] = float(lowest)
    return Scenario(wifi_rates=wifi, plc_rates=plan.plc_rates.copy(),
                    user_ids=np.arange(plan.n_users))


def enterprise_floor(n_extenders: int,
                     n_users: int,
                     rng: np.random.Generator,
                     width_m: float = 100.0,
                     height_m: float = 100.0,
                     building: Optional[PowerlineNetwork] = None,
                     phy: Optional[WifiPhy] = None) -> Scenario:
    """Sample the paper's large-scale simulation setting.

    Extenders land on uniformly random outlet positions of a synthesized
    wiring plant; users are uniform on the plane.

    Args:
        n_extenders: extenders plugged in (paper: up to 15).
        n_users: users present (paper: up to ~124).
        rng: random generator controlling everything.
        width_m: plane width (paper: 100 m).
        height_m: plane height (paper: 100 m).
        building: optional pre-built wiring plant with at least
            ``n_extenders`` outlets.
        phy: optional WiFi PHY override.

    Returns:
        A ready-to-solve :class:`Scenario`.
    """
    if n_extenders < 1:
        raise ValueError("n_extenders must be positive")
    if building is None:
        building = random_building(n_extenders, rng)
    outlets = building.outlets
    if len(outlets) < n_extenders:
        raise ValueError(f"building has {len(outlets)} outlets, "
                         f"need {n_extenders}")
    chosen = [outlets[k] for k in
              rng.choice(len(outlets), size=n_extenders, replace=False)]
    plan = FloorPlan(
        width_m=width_m, height_m=height_m,
        extender_xy=np.column_stack([rng.uniform(0, width_m, n_extenders),
                                     rng.uniform(0, height_m, n_extenders)]),
        user_xy=sample_user_positions(n_users, width_m, height_m, rng),
        plc_rates=building.rates(chosen))
    return build_scenario(plan, phy=phy, rng=rng)
