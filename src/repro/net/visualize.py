"""ASCII rendering of enterprise floors and associations.

No plotting dependency is available offline, so examples and debugging
sessions render the floor as a character grid: extenders as letters,
users as digits of the extender letter they attach to, making coverage
and association structure visible at a glance in a terminal.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .topology import FloorPlan

__all__ = ["render_floor"]

#: Glyphs used for extenders (uppercase) and their users (lowercase).
_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_floor(plan: FloorPlan,
                 assignment: Optional[Sequence[int]] = None,
                 width_chars: int = 60,
                 height_chars: int = 24) -> str:
    """Render a floor plan to ASCII art.

    Extenders appear as uppercase letters (``A`` = extender 0, ...);
    users appear as the lowercase letter of their extender (or ``.``
    when no assignment is given / the user is unassigned).  When a user
    and an extender share a cell, the extender wins.

    Args:
        plan: the floor geometry (with users).
        assignment: optional per-user extender indices.
        width_chars / height_chars: output raster size.

    Returns:
        A multi-line string.
    """
    if width_chars < 2 or height_chars < 2:
        raise ValueError("raster must be at least 2x2")
    if plan.n_extenders > len(_GLYPHS):
        raise ValueError(f"can render at most {len(_GLYPHS)} extenders")
    if assignment is not None:
        assignment = np.asarray(assignment, dtype=int)
        if assignment.shape[0] != plan.n_users:
            raise ValueError("one assignment entry per user is required")

    grid = [[" "] * width_chars for _ in range(height_chars)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        col = int(x / plan.width_m * (width_chars - 1))
        row = int(y / plan.height_m * (height_chars - 1))
        return (min(max(row, 0), height_chars - 1),
                min(max(col, 0), width_chars - 1))

    for i in range(plan.n_users):
        row, col = to_cell(*plan.user_xy[i])
        if assignment is None or assignment[i] < 0:
            glyph = "."
        else:
            glyph = _GLYPHS[assignment[i]].lower()
        grid[row][col] = glyph
    for j in range(plan.n_extenders):
        row, col = to_cell(*plan.extender_xy[j])
        grid[row][col] = _GLYPHS[j]

    border = "+" + "-" * width_chars + "+"
    body = "\n".join("|" + "".join(line) + "|" for line in grid)
    legend = (f"{plan.n_extenders} extenders (A..), "
              f"{plan.n_users} users "
              + ("(lowercase = serving extender)" if assignment is not None
                 else "(.)"))
    return "\n".join([border, body, border, legend])
