"""PLC substrate: IEEE 1901 MAC, HomePlug AV2 PHY, wiring topology."""

from .channel import PowerlineNetwork, random_building
from .homeplug import DEFAULT_AV2, Av2Phy
from .noise import NoiseProcess, TimeVaryingPlc
from .qos import (QosClass, class_weighted_schedule,
                  optimal_tdma_weights)
from .mac import (Ieee1901CsmaSimulator, Ieee1901Parameters,
                  Ieee1901Result, TdmaScheduler)
from .sharing import (PLC_MODES, BatchPlcAllocation, PlcAllocation,
                      allocate_backhaul, allocate_backhaul_batch,
                      max_min_time_shares, max_min_time_shares_batch,
                      time_fair_throughputs)

__all__ = [
    "PowerlineNetwork", "random_building", "Av2Phy", "DEFAULT_AV2",
    "Ieee1901CsmaSimulator", "Ieee1901Parameters", "Ieee1901Result",
    "TdmaScheduler", "PLC_MODES", "PlcAllocation", "BatchPlcAllocation",
    "allocate_backhaul", "allocate_backhaul_batch",
    "max_min_time_shares", "max_min_time_shares_batch",
    "time_fair_throughputs",
    "NoiseProcess", "TimeVaryingPlc",
    "optimal_tdma_weights", "QosClass", "class_weighted_schedule",
]
