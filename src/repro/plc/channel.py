"""Power-line wiring topology and per-outlet PLC link quality.

The paper calibrates its simulator "with PLC link capacities measured
from different outlets in a university building" (§V-A).  Lacking that
building, we model the electrical plant explicitly: outlets hang off
branch circuits that join at junction boxes and meet at the distribution
panel where the PLC central unit sits.  Signal attenuation accumulates
along the wiring path (per-metre cable loss plus a penalty per junction
crossed), and the HomePlug AV2 tone-map model in
:mod:`repro.plc.homeplug` converts path attenuation into the link's MAC
throughput — the paper's PLC "rate" ``c_j``.

:class:`PowerlineNetwork` builds the wiring graph with :mod:`networkx`
and exposes ``rate_of(outlet)``; :func:`random_building` synthesizes a
building whose outlet-rate distribution spans the 60-160 Mbps range of
Fig. 2b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from .homeplug import Av2Phy, DEFAULT_AV2

__all__ = ["PowerlineNetwork", "random_building"]

#: Node name of the distribution panel (PLC central unit location).
PANEL = "panel"


@dataclass
class PowerlineNetwork:
    """An electrical wiring graph with PLC propagation semantics.

    Attributes:
        graph: undirected wiring graph.  Every edge carries a
            ``length_m`` attribute; nodes are the panel, junction boxes
            (``kind="junction"``) and outlets (``kind="outlet"``).
        cable_loss_db_per_m: attenuation per metre of cable.
        junction_loss_db: attenuation per junction box traversed.
        outlet_loss_db: coupling loss at the two end outlets.
        phy: HomePlug AV2 PHY used to map attenuation to rate.
    """

    graph: nx.Graph
    cable_loss_db_per_m: float = 0.7
    junction_loss_db: float = 5.0
    outlet_loss_db: float = 3.0
    phy: Av2Phy = field(default_factory=lambda: DEFAULT_AV2)

    def __post_init__(self) -> None:
        if PANEL not in self.graph:
            raise ValueError(f"wiring graph must contain a {PANEL!r} node")
        for u, v, data in self.graph.edges(data=True):
            if data.get("length_m", -1.0) < 0:
                raise ValueError(f"edge ({u}, {v}) needs a non-negative "
                                 "length_m attribute")

    @property
    def outlets(self) -> List[str]:
        """All outlet node names, sorted for determinism."""
        return sorted(n for n, d in self.graph.nodes(data=True)
                      if d.get("kind") == "outlet")

    def path_attenuation_db(self, outlet: str) -> float:
        """Attenuation of the wiring path from the panel to an outlet."""
        if outlet not in self.graph:
            raise KeyError(f"unknown outlet {outlet!r}")
        path = nx.shortest_path(self.graph, PANEL, outlet,
                                weight="length_m")
        length = sum(self.graph[u][v]["length_m"]
                     for u, v in zip(path[:-1], path[1:]))
        junctions = sum(
            1 for node in path[1:-1]
            if self.graph.nodes[node].get("kind") == "junction")
        return (length * self.cable_loss_db_per_m
                + junctions * self.junction_loss_db
                + 2 * self.outlet_loss_db)

    def rate_of(self, outlet: str) -> float:
        """MAC-layer PLC rate (Mbps) of the link panel -> ``outlet``."""
        return self.phy.rate_for_attenuation(self.path_attenuation_db(outlet))

    def rates(self, outlets: Optional[Sequence[str]] = None) -> np.ndarray:
        """Vector of PLC rates for the given (or all) outlets."""
        names = list(outlets) if outlets is not None else self.outlets
        return np.array([self.rate_of(name) for name in names])


def random_building(n_outlets: int,
                    rng: np.random.Generator,
                    n_circuits: Optional[int] = None,
                    mean_branch_length_m: float = 25.0,
                    mean_drop_length_m: float = 12.0,
                    phy: Optional[Av2Phy] = None) -> PowerlineNetwork:
    """Synthesize a building's wiring plant.

    The panel feeds ``n_circuits`` branch circuits; each circuit runs a
    random trunk to a junction box from which outlet drops hang.  Outlet
    names are ``"outlet-<k>"``.

    Args:
        n_outlets: number of outlets to create.
        rng: random generator (controls both structure and lengths).
        n_circuits: branch-circuit count (default ``ceil(n_outlets / 4)``).
        mean_branch_length_m: mean panel-to-junction trunk length.
        mean_drop_length_m: mean junction-to-outlet drop length.
        phy: AV2 PHY override.

    Returns:
        A :class:`PowerlineNetwork` with ``n_outlets`` outlets.
    """
    if n_outlets < 1:
        raise ValueError("n_outlets must be positive")
    if n_circuits is None:
        n_circuits = max(1, int(np.ceil(n_outlets / 4)))
    graph = nx.Graph()
    graph.add_node(PANEL, kind="panel")
    for c in range(n_circuits):
        junction = f"junction-{c}"
        graph.add_node(junction, kind="junction")
        trunk = float(rng.gamma(4.0, mean_branch_length_m / 4.0))
        graph.add_edge(PANEL, junction, length_m=trunk)
    for k in range(n_outlets):
        junction = f"junction-{rng.integers(n_circuits)}"
        outlet = f"outlet-{k}"
        graph.add_node(outlet, kind="outlet")
        drop = float(rng.gamma(3.0, mean_drop_length_m / 3.0))
        graph.add_edge(junction, outlet, length_m=drop)
    kwargs = {} if phy is None else {"phy": phy}
    return PowerlineNetwork(graph=graph, **kwargs)
