"""HomePlug AV2 PHY abstractions: OFDM carriers, bit loading, rate caps.

The paper's extenders (TP-Link TL-WPA8630) are HomePlug AV2 devices.  AV2
modulates up to 4096-QAM on OFDM carriers spread over 1.8-86.13 MHz and
adapts a per-carrier *tone map* to the channel's frequency-selective SNR.
The advertised "1200 Mbps" class is the sum of per-carrier bit loads at
the maximum constellation; real links deliver far less (Fig. 2b of the
paper measures 60-160 Mbps of iperf throughput).

This module implements a compact tone-map model:

* a frequency grid of carriers,
* per-carrier SNR = transmit PSD - attenuation(f, link) - noise(f),
* per-carrier bit loading ``min(12, floor(log2(1 + SNR)))`` against a
  coding gap,
* PHY rate = carried bits x symbol rate x FEC efficiency,
* a UDP/TCP efficiency factor that converts PHY rate to the achievable
  MAC-layer throughput ("rate" in the paper's terminology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Av2Phy", "DEFAULT_AV2"]


@dataclass(frozen=True)
class Av2Phy:
    """HomePlug AV2 PHY model.

    Attributes:
        n_carriers: OFDM carriers in the tone map (AV2 uses up to ~3455
            over the full 86 MHz band; 917 for AV-compatible 30 MHz
            operation, the default here).
        band_start_mhz: first carrier frequency.
        band_end_mhz: last carrier frequency.
        symbol_rate_khz: OFDM symbol rate (AV symbol period 40.96 us
            + guard interval -> ~24.4 k symbols/s).
        max_bits_per_carrier: constellation cap (12 = 4096-QAM).
        snr_gap_db: implementation/coding gap subtracted from channel SNR
            before bit loading.
        fec_efficiency: FEC + framing efficiency applied to the raw sum.
        mac_efficiency: PHY-to-MAC throughput factor (CSMA overheads,
            inter-frame spaces, ACKs); calibrated so the model's MAC
            throughput range matches the paper's 60-160 Mbps measurements.
    """

    n_carriers: int = 917
    band_start_mhz: float = 1.8
    band_end_mhz: float = 30.0
    symbol_rate_khz: float = 24.4
    max_bits_per_carrier: int = 12
    snr_gap_db: float = 6.0
    fec_efficiency: float = 0.82
    mac_efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.n_carriers < 1:
            raise ValueError("n_carriers must be positive")
        if self.band_end_mhz <= self.band_start_mhz:
            raise ValueError("band_end_mhz must exceed band_start_mhz")
        if not 0 < self.fec_efficiency <= 1:
            raise ValueError("fec_efficiency must be in (0, 1]")
        if not 0 < self.mac_efficiency <= 1:
            raise ValueError("mac_efficiency must be in (0, 1]")

    @property
    def carrier_frequencies_mhz(self) -> np.ndarray:
        """The carrier frequency grid (MHz)."""
        return np.linspace(self.band_start_mhz, self.band_end_mhz,
                           self.n_carriers)

    def bit_loading(self, snr_db: Sequence[float]) -> np.ndarray:
        """Per-carrier bit load for a per-carrier SNR profile (dB).

        Bits are ``floor(log2(1 + snr/gap))`` clipped to
        ``[0, max_bits_per_carrier]`` — the standard gap-approximation
        water-filling integer bit loading.
        """
        snr = np.asarray(snr_db, dtype=float)
        if snr.shape[0] != self.n_carriers:
            raise ValueError(
                f"snr profile must have {self.n_carriers} entries")
        effective = 10.0 ** ((snr - self.snr_gap_db) / 10.0)
        bits = np.floor(np.log2(1.0 + effective))
        return np.clip(bits, 0, self.max_bits_per_carrier).astype(int)

    def phy_rate_mbps(self, snr_db: Sequence[float]) -> float:
        """Raw PHY rate (Mbps) for a per-carrier SNR profile."""
        bits = self.bit_loading(snr_db)
        return float(bits.sum() * self.symbol_rate_khz * 1e3
                     * self.fec_efficiency / 1e6)

    def mac_rate_mbps(self, snr_db: Sequence[float]) -> float:
        """Achievable MAC throughput (Mbps) — the paper's PLC "rate"."""
        return self.phy_rate_mbps(snr_db) * self.mac_efficiency

    def snr_profile(self, attenuation_db: float,
                    tx_psd_dbm_per_carrier: float = -22.0,
                    noise_dbm_per_carrier: float = -105.0,
                    selectivity_db: float = 12.0) -> np.ndarray:
        """Synthesize a frequency-selective SNR profile for a link.

        Power-line attenuation grows with frequency (cable loss) — the
        ``selectivity_db`` term tilts the profile linearly from the first
        to the last carrier on top of the flat ``attenuation_db``.

        Args:
            attenuation_db: flat (wiring-path) attenuation of the link.
            tx_psd_dbm_per_carrier: transmit power per carrier.
            noise_dbm_per_carrier: powerline noise floor per carrier.
            selectivity_db: extra attenuation at the top of the band.

        Returns:
            Per-carrier SNR in dB.
        """
        if attenuation_db < 0:
            raise ValueError("attenuation must be non-negative")
        tilt = np.linspace(0.0, selectivity_db, self.n_carriers)
        rx = tx_psd_dbm_per_carrier - attenuation_db - tilt
        return rx - noise_dbm_per_carrier

    def rate_for_attenuation(self, attenuation_db: float) -> float:
        """MAC throughput (Mbps) of a link with a given flat attenuation."""
        return self.mac_rate_mbps(self.snr_profile(attenuation_db))


#: A shared default AV2 PHY instance.
DEFAULT_AV2 = Av2Phy()
