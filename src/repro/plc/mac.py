"""Slot-level IEEE 1901 MAC simulator: CSMA/CA with deferral, and TDMA.

Section II of the paper notes that IEEE 1901 PLC access control runs in
either CSMA/CA mode (similar to 802.11 but with a *deferral counter*) or
TDMA mode, and the measurement study (Fig. 2c) finds the backhaul is
shared *time-fairly*: with ``k`` saturated extenders each link delivers
``c_j / k``.

Time-fairness emerges from the protocol because a 1901 transmission
opportunity is bounded by a maximum frame duration (extenders aggregate
PHY blocks up to ~2.5 ms regardless of PHY rate), so equal win rates
translate into equal *airtime*, not equal bits.  This module simulates:

* :class:`Ieee1901CsmaSimulator` — slotted CSMA/CA with the 1901 backoff
  stages (CW 8/16/32/64) and deferral counters (DC 0/1/3/15).  The
  deferral counter makes stations back off more aggressively under
  contention, reducing collisions relative to 802.11.
* :class:`TdmaScheduler` — the QoS alternative: a weighted round-robin
  time-slot schedule.

Both reproduce the ``c_j / k`` law of Eq. (2) and are cross-validated
against :mod:`repro.plc.sharing` in the tests and the Fig. 2c benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["Ieee1901Parameters", "Ieee1901Result", "Ieee1901CsmaSimulator",
           "TdmaScheduler"]

#: 1901 backoff stages: (contention window, deferral counter) per stage.
BACKOFF_STAGES = ((8, 0), (16, 1), (32, 3), (64, 15))


@dataclass(frozen=True)
class Ieee1901Parameters:
    """IEEE 1901 CSMA timing constants.

    Attributes:
        slot_time_us: contention (PRS/CIFS) slot duration.
        frame_duration_us: maximum transmission-opportunity duration; a
            winner occupies the medium for this long regardless of its
            PHY rate (the root of time-fair sharing).
        ifs_us: inter-frame space after each transmission.
    """

    slot_time_us: float = 35.84
    frame_duration_us: float = 2500.0
    ifs_us: float = 100.0


@dataclass(frozen=True)
class Ieee1901Result:
    """Outcome of a 1901 CSMA simulation.

    Attributes:
        throughputs_mbps: per-extender delivered backhaul throughput.
        airtime_shares: per-extender fraction of busy medium time.
        collisions: number of collision events.
        simulated_time_us: channel time simulated.
    """

    throughputs_mbps: np.ndarray
    airtime_shares: np.ndarray
    collisions: int
    simulated_time_us: float

    @property
    def aggregate_mbps(self) -> float:
        return float(self.throughputs_mbps.sum())


class Ieee1901CsmaSimulator:
    """Saturated CSMA/CA contention among PLC extenders.

    Args:
        phy_rates_mbps: per-extender PLC PHY rate ``c_j``; an extender
            delivers ``c_j * airtime`` bits when it wins the medium.
        params: timing constants.
        rng: random generator.
    """

    def __init__(self, phy_rates_mbps: Sequence[float],
                 params: Optional[Ieee1901Parameters] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.rates = [float(r) for r in phy_rates_mbps]
        if not self.rates:
            raise ValueError("at least one extender is required")
        if any(r < 0 for r in self.rates):
            raise ValueError("PHY rates must be non-negative")
        self.params = params or Ieee1901Parameters()
        # Fixed default seed: backhaul MAC runs must be reproducible
        # (woltlint W001); pass an explicit generator for fresh streams.
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def run(self, sim_time_us: float = 5e6) -> Ieee1901Result:
        """Simulate the backhaul for ``sim_time_us`` of channel time."""
        if sim_time_us <= 0:
            raise ValueError("simulation time must be positive")
        p = self.params
        n = len(self.rates)
        stage = np.zeros(n, dtype=int)
        backoff = np.empty(n, dtype=int)
        deferral = np.empty(n, dtype=int)
        for i in range(n):
            self._enter_stage(i, stage, backoff, deferral)
        airtime = np.zeros(n)
        delivered_bits = np.zeros(n)
        collisions = 0
        clock = 0.0
        while clock < sim_time_us:
            step = int(backoff.min())
            clock += step * p.slot_time_us
            backoff -= step
            ready = np.flatnonzero(backoff == 0)
            busy_time = p.frame_duration_us + p.ifs_us
            if ready.size == 1:
                winner = int(ready[0])
                airtime[winner] += p.frame_duration_us
                delivered_bits[winner] += (self.rates[winner]
                                           * p.frame_duration_us)
                clock += busy_time
                stage[winner] = 0
                self._enter_stage(winner, stage, backoff, deferral)
            else:
                collisions += 1
                clock += busy_time
                for i in ready:
                    stage[i] = min(stage[i] + 1, len(BACKOFF_STAGES) - 1)
                    self._enter_stage(int(i), stage, backoff, deferral)
            # Deferral-counter discipline: every station that *sensed* the
            # busy medium decrements its DC; a station whose DC is
            # exhausted escalates its backoff stage as if it had collided.
            others = np.setdiff1d(np.arange(n), ready)
            for i in others:
                if deferral[i] == 0:
                    stage[i] = min(stage[i] + 1, len(BACKOFF_STAGES) - 1)
                    self._enter_stage(int(i), stage, backoff, deferral)
                else:
                    deferral[i] -= 1
        throughputs = delivered_bits / clock  # bits/us == Mbps
        total_airtime = airtime.sum()
        shares = (airtime / total_airtime if total_airtime > 0
                  else np.zeros(n))
        return Ieee1901Result(throughputs_mbps=throughputs,
                              airtime_shares=shares,
                              collisions=collisions,
                              simulated_time_us=clock)

    def _enter_stage(self, i: int, stage: np.ndarray, backoff: np.ndarray,
                     deferral: np.ndarray) -> None:
        cw, dc = BACKOFF_STAGES[stage[i]]
        backoff[i] = int(self.rng.integers(0, cw))
        deferral[i] = dc


class TdmaScheduler:
    """Weighted round-robin TDMA allocation of the PLC medium.

    The 1901 QoS mode divides the beacon period into reserved slots.
    With equal weights this is exactly the time-fair law of Eq. (2);
    unequal weights model operator-configured QoS classes.
    """

    def __init__(self, phy_rates_mbps: Sequence[float],
                 weights: Optional[Sequence[float]] = None) -> None:
        self.rates = np.asarray(phy_rates_mbps, dtype=float)
        if self.rates.size == 0:
            raise ValueError("at least one extender is required")
        if np.any(self.rates < 0):
            raise ValueError("PHY rates must be non-negative")
        if weights is None:
            self.weights = np.ones_like(self.rates)
        else:
            self.weights = np.asarray(weights, dtype=float)
            if self.weights.shape != self.rates.shape:
                raise ValueError("one weight per extender is required")
            if np.any(self.weights < 0) or self.weights.sum() == 0:
                raise ValueError("weights must be non-negative, not all 0")

    def throughputs(self,
                    active: Optional[Sequence[bool]] = None) -> np.ndarray:
        """Per-extender throughput under the TDMA schedule.

        Args:
            active: mask of extenders with queued traffic; idle extenders
                give up their reserved slots (1901 allows slot reuse).
        """
        if active is None:
            mask = np.ones(self.rates.shape, dtype=bool)
        else:
            mask = np.asarray(active, dtype=bool)
            if mask.shape != self.rates.shape:
                raise ValueError("active mask shape mismatch")
        out = np.zeros_like(self.rates)
        total = self.weights[mask].sum()
        if total > 0:
            out[mask] = self.rates[mask] * self.weights[mask] / total
        return out
