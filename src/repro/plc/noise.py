"""Time-varying power-line noise and capacity dynamics.

Power-line channels are notoriously non-stationary: appliance
switching, dimmers and motors inject impulsive and cyclo-stationary
noise synchronized to the AC mains cycle (the paper cites Katar et
al.'s cyclo-stationary noise adaptation work [12]).  As a result the
PLC "rate" ``c_j`` a deployment measured offline drifts over time —
one more reason a one-shot association goes stale and WOLT's periodic
re-optimization pays off.

:class:`NoiseProcess` models a link's excess noise as an
Ornstein-Uhlenbeck (mean-reverting) process in dB plus optional
impulsive appliance events; :class:`TimeVaryingPlc` turns the processes
of a whole building into a per-epoch capacity vector for the
association experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .homeplug import Av2Phy, DEFAULT_AV2

__all__ = ["NoiseProcess", "TimeVaryingPlc"]


@dataclass
class NoiseProcess:
    """Mean-reverting excess-noise process of one PLC link (dB).

    The excess noise ``x(t)`` follows a discretized Ornstein-Uhlenbeck
    process ``x' = x + theta*(mu - x) + sigma*W`` with occasional
    impulsive bursts (an appliance turning on) that decay at the same
    mean-reversion rate.

    Attributes:
        mean_db: long-run excess noise level.
        reversion: mean-reversion strength per step, in ``(0, 1]``.
        sigma_db: per-step Gaussian innovation.
        impulse_prob: probability of an appliance burst per step.
        impulse_db: burst magnitude (added to the state).
    """

    mean_db: float = 0.0
    reversion: float = 0.3
    sigma_db: float = 1.5
    impulse_prob: float = 0.05
    impulse_db: float = 10.0
    _state: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.reversion <= 1:
            raise ValueError("reversion must be in (0, 1]")
        if self.sigma_db < 0 or self.impulse_db < 0:
            raise ValueError("noise magnitudes must be non-negative")
        if not 0 <= self.impulse_prob <= 1:
            raise ValueError("impulse_prob must be a probability")
        self._state = self.mean_db

    @property
    def excess_noise_db(self) -> float:
        """Current excess noise above the quiescent floor (>= 0 dB)."""
        return max(self._state, 0.0)

    def step(self, rng: np.random.Generator) -> float:
        """Advance one step and return the new excess noise (dB)."""
        self._state += (self.reversion * (self.mean_db - self._state)
                        + float(rng.normal(0.0, self.sigma_db)))
        if rng.random() < self.impulse_prob:
            self._state += self.impulse_db
        return self.excess_noise_db


class TimeVaryingPlc:
    """Per-epoch PLC capacities of a building under noise dynamics.

    Each link has a static wiring attenuation (fixing its *best-case*
    capacity) plus an independent :class:`NoiseProcess`; stepping the
    model re-derives every link's capacity through the AV2 tone-map
    model with the current noise added to the attenuation budget.

    Args:
        attenuations_db: per-link static wiring attenuation.
        rng: random generator driving every noise process.
        phy: AV2 PHY (defaults to :data:`repro.plc.homeplug.DEFAULT_AV2`).
        noise: optional per-link noise processes (defaults to i.i.d.
            :class:`NoiseProcess` instances).
    """

    def __init__(self, attenuations_db: Sequence[float],
                 rng: np.random.Generator,
                 phy: Optional[Av2Phy] = None,
                 noise: Optional[Sequence[NoiseProcess]] = None) -> None:
        self.attenuations = np.asarray(attenuations_db, dtype=float)
        if self.attenuations.ndim != 1 or self.attenuations.size == 0:
            raise ValueError("need at least one link attenuation")
        if np.any(self.attenuations < 0):
            raise ValueError("attenuations must be non-negative")
        self.rng = rng
        self.phy = phy or DEFAULT_AV2
        if noise is None:
            self.noise: List[NoiseProcess] = [
                NoiseProcess() for _ in range(self.attenuations.size)]
        else:
            self.noise = list(noise)
            if len(self.noise) != self.attenuations.size:
                raise ValueError("one noise process per link is required")

    @property
    def n_links(self) -> int:
        return self.attenuations.size

    def capacities(self) -> np.ndarray:
        """Current per-link capacities (Mbps) under the present noise."""
        return np.array([
            self.phy.rate_for_attenuation(
                float(att + proc.excess_noise_db))
            for att, proc in zip(self.attenuations, self.noise)])

    def best_case_capacities(self) -> np.ndarray:
        """Capacities with zero excess noise (the offline calibration)."""
        return np.array([self.phy.rate_for_attenuation(float(att))
                         for att in self.attenuations])

    def step(self) -> np.ndarray:
        """Advance every link's noise one epoch; return new capacities."""
        for proc in self.noise:
            proc.step(self.rng)
        return self.capacities()

    def run(self, n_steps: int) -> np.ndarray:
        """Capacity trajectory: ``(n_steps, n_links)`` array."""
        if n_steps < 1:
            raise ValueError("n_steps must be positive")
        return np.vstack([self.step() for _ in range(n_steps)])
