"""TDMA QoS provisioning for the PLC backhaul (extension).

IEEE 1901's TDMA mode lets an operator reserve medium time per extender
(§II of the paper).  Given an association, this module computes the
reservation weights that make a *static* TDMA schedule reproduce the
best CSMA-with-redistribution allocation — i.e. the weights WOLT's
throughput model implies — plus a priority-class layer where extenders
serving higher QoS classes receive proportionally larger reservations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.problem import Scenario
from ..wifi.sharing import cell_throughputs
from .sharing import allocate_backhaul

__all__ = ["optimal_tdma_weights", "QosClass", "class_weighted_schedule"]


def optimal_tdma_weights(scenario: Scenario,
                         assignment: Sequence[int]) -> np.ndarray:
    """TDMA reservation weights replicating the max-min allocation.

    Computes each extender's WiFi-side offered load under the given
    association, derives the max-min fair (leftover-redistributing) time
    shares, and returns them as weights for
    :class:`repro.plc.mac.TdmaScheduler`.  A TDMA schedule with these
    weights delivers the same per-extender throughputs the CSMA
    backhaul was measured to provide — but with the determinism and
    jitter guarantees TDMA is used for.

    Extenders with no attached users receive zero weight (their slots
    are released).

    Returns:
        Array of non-negative weights summing to at most 1.
    """
    assign = np.asarray(assignment, dtype=int)
    wifi = cell_throughputs(scenario.wifi_rates, assign,
                            scenario.n_extenders)
    allocation = allocate_backhaul(scenario.plc_rates, wifi,
                                   mode="redistribute")
    return allocation.time_shares.copy()


@dataclass(frozen=True)
class QosClass:
    """A traffic class with a TDMA priority multiplier.

    Attributes:
        name: class label ("voice", "video", "best-effort", ...).
        weight_multiplier: relative over-provisioning factor applied to
            the time share of extenders serving this class (>= 0).
    """

    name: str
    weight_multiplier: float

    def __post_init__(self) -> None:
        if self.weight_multiplier < 0:
            raise ValueError("weight multiplier must be non-negative")


def class_weighted_schedule(scenario: Scenario,
                            assignment: Sequence[int],
                            user_classes: Sequence[QosClass],
                            ) -> np.ndarray:
    """TDMA weights boosted by the attached users' QoS classes.

    Each extender's base weight is its :func:`optimal_tdma_weights`
    share, multiplied by the *maximum* multiplier among its attached
    users' classes (an extender serving any voice user gets the voice
    guarantee), then renormalized to sum to 1 across reserving
    extenders.

    Args:
        scenario: the network snapshot.
        assignment: per-user extender indices.
        user_classes: per-user :class:`QosClass`.

    Returns:
        Normalized per-extender weights (sum to 1 over non-zero
        entries; all-zero when nobody is attached).
    """
    assign = np.asarray(assignment, dtype=int)
    if len(user_classes) != scenario.n_users:
        raise ValueError("one QoS class per user is required")
    base = optimal_tdma_weights(scenario, assign)
    boosted = base.copy()
    for j in range(scenario.n_extenders):
        members = np.flatnonzero(assign == j)
        if members.size == 0:
            continue
        multiplier = max(user_classes[int(i)].weight_multiplier
                         for i in members)
        boosted[j] = base[j] * multiplier
    total = boosted.sum()
    if total > 0:
        boosted = boosted / total
    return boosted
