"""Analytic medium-sharing laws for the PLC backhaul.

The measurement study in Section III of the WOLT paper establishes that the
IEEE 1901 PLC backhaul, as shipped by commodity HomePlug AV2 extenders, is
shared in a *time-fair* manner: with ``k`` extenders actively receiving
saturated traffic, each extender is granted roughly ``1/k`` of the medium
time, so its throughput is ``c_j / k`` where ``c_j`` is its PHY rate
(isolation throughput).

Crucially, the paper's greedy case study (Fig. 3c) also shows that an
extender whose WiFi-side demand is *below* its time-fair PLC share does not
waste the medium: the leftover time is re-allocated among the extenders that
still have unserved demand.  That behaviour is exactly a *max-min fair*
allocation of the unit medium time, where each active extender has a demand
cap equal to the time fraction it needs to fully serve its WiFi throughput.

This module implements both the plain time-fair law (Eq. (2) of the paper)
and the max-min redistribution used by the end-to-end throughput engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "time_fair_throughputs",
    "max_min_time_shares",
    "PlcAllocation",
    "allocate_backhaul",
    "PLC_MODES",
]

#: Tolerance used when comparing time fractions for saturation.
_EPS = 1e-12


def time_fair_throughputs(plc_rates: Sequence[float],
                          active: Sequence[bool] | None = None) -> np.ndarray:
    """Plain time-fair PLC throughputs, Eq. (2) of the paper.

    Each *active* extender receives an equal ``1/A`` share of the medium
    time, where ``A`` is the number of active extenders, and therefore a
    throughput of ``c_j / A``.  Inactive extenders receive zero.

    Args:
        plc_rates: per-extender PLC PHY rates ``c_j`` (Mbps).
        active: optional boolean mask of active extenders.  When omitted,
            every extender is considered active.

    Returns:
        Array of per-extender PLC throughputs (Mbps).
    """
    rates = np.asarray(plc_rates, dtype=float)
    if np.any(rates < 0):
        raise ValueError("PLC rates must be non-negative")
    if active is None:
        mask = np.ones(rates.shape, dtype=bool)
    else:
        mask = np.asarray(active, dtype=bool)
        if mask.shape != rates.shape:
            raise ValueError("active mask must match plc_rates shape")
    n_active = int(mask.sum())
    out = np.zeros_like(rates)
    if n_active == 0:
        return out
    out[mask] = rates[mask] / n_active
    return out


def max_min_time_shares(demand_fractions: Sequence[float]) -> np.ndarray:
    """Max-min fair allocation of the unit medium time.

    Each entry of ``demand_fractions`` is the fraction of medium time an
    extender needs to fully serve its demand (``d_j / c_j``).  The total
    available time is 1.  The allocation is the classic progressive-filling
    water level: every unsatisfied extender receives an equal share of the
    remaining time; extenders whose demand lies below the water level are
    capped at their demand and the surplus is re-distributed.

    Extenders with zero demand are inactive and receive zero time.

    Args:
        demand_fractions: per-extender required time fraction (``>= 0``;
            ``np.inf`` means "unbounded demand").

    Returns:
        Array of granted time fractions, summing to at most 1 (exactly 1
        when total demand is at least 1).
    """
    demands = np.asarray(demand_fractions, dtype=float)
    if np.any(demands < 0) or np.any(np.isnan(demands)):
        raise ValueError("demand fractions must be non-negative numbers")
    granted = np.zeros_like(demands)
    unsatisfied = np.flatnonzero(demands > _EPS)
    remaining = 1.0
    while unsatisfied.size > 0 and remaining > _EPS:
        level = remaining / unsatisfied.size
        below = unsatisfied[demands[unsatisfied] <= level + _EPS]
        if below.size == 0:
            # Nobody's demand fits under the water level: split equally.
            granted[unsatisfied] = level
            remaining = 0.0
            break
        granted[below] = demands[below]
        remaining -= float(demands[below].sum())
        keep = demands[unsatisfied] > level + _EPS
        unsatisfied = unsatisfied[keep]
    return granted


@dataclass(frozen=True)
class PlcAllocation:
    """Result of allocating the PLC backhaul among extenders.

    Attributes:
        time_shares: fraction of the medium time granted to each extender.
        throughputs: resulting backhaul throughput of each extender (Mbps),
            i.e. ``time_share * c_j`` capped at the extender's demand.
        saturated: whether the extender's demand exceeded its grant (its
            backhaul is the bottleneck of the concatenated link).
    """

    time_shares: np.ndarray
    throughputs: np.ndarray
    saturated: np.ndarray

    @property
    def busy_fraction(self) -> float:
        """Total fraction of the medium time in use."""
        return float(self.time_shares.sum())


#: Valid PLC medium-sharing modes (see :func:`allocate_backhaul`).
PLC_MODES = ("redistribute", "active", "fixed")


def allocate_backhaul(plc_rates: Sequence[float],
                      demands: Sequence[float],
                      mode: str = "redistribute") -> PlcAllocation:
    """Allocate PLC medium time to extenders with given WiFi-side demands.

    Three sharing laws are supported, reflecting the three models that
    appear in the paper:

    * ``"redistribute"`` — time-fair with max-min re-allocation of
      leftover time from under-loaded extenders.  This is the behaviour
      *measured on the testbed* (Fig. 3c) and the default.
    * ``"active"`` — plain time-fair among the extenders that currently
      carry traffic, Eq. (2) with ``A`` = active count (the Fig. 2c
      reading); surplus time of an under-loaded active extender is
      wasted.
    * ``"fixed"`` — time-fair over *all* extenders, loaded or idle:
      ``T_PLC_j = c_j / |A|`` exactly as written in constraint (4) of
      Problem 1.  This is the model the paper's large-scale simulator
      optimizes and reports, and the reason Phase I insists on putting a
      user on every extender.

    Args:
        plc_rates: per-extender PLC PHY rates ``c_j`` (Mbps).
        demands: per-extender offered load from the WiFi side (Mbps);
            zero marks an inactive extender.
        mode: one of :data:`PLC_MODES`.

    Returns:
        A :class:`PlcAllocation` with per-extender time shares and
        achieved backhaul throughputs.
    """
    if mode not in PLC_MODES:
        raise ValueError(f"mode must be one of {PLC_MODES}, got {mode!r}")
    rates = np.asarray(plc_rates, dtype=float)
    load = np.asarray(demands, dtype=float)
    if rates.shape != load.shape:
        raise ValueError("plc_rates and demands must have the same shape")
    if np.any(rates < 0) or np.any(load < 0):
        raise ValueError("rates and demands must be non-negative")

    active = load > _EPS
    with np.errstate(divide="ignore", invalid="ignore"):
        needed = np.where(active & (rates > 0), load / np.maximum(rates, _EPS),
                          0.0)
    # An active extender with a dead PLC link (rate 0) needs infinite time
    # but can never carry traffic; give it an unbounded demand so it still
    # takes part in contention (it occupies the medium without progress).
    needed = np.where(active & (rates <= _EPS), np.inf, needed)

    if mode == "redistribute":
        shares = max_min_time_shares(needed)
    elif mode == "active":
        shares = np.zeros_like(rates)
        n_active = int(active.sum())
        if n_active > 0:
            shares[active] = 1.0 / n_active
    else:  # fixed
        shares = np.zeros_like(rates)
        if rates.size > 0:
            shares[active] = 1.0 / rates.size
    throughputs = np.minimum(shares * rates, load)
    saturated = active & (throughputs + _EPS < load)
    return PlcAllocation(time_shares=shares, throughputs=throughputs,
                         saturated=saturated)
