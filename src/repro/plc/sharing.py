"""Analytic medium-sharing laws for the PLC backhaul.

The measurement study in Section III of the WOLT paper establishes that the
IEEE 1901 PLC backhaul, as shipped by commodity HomePlug AV2 extenders, is
shared in a *time-fair* manner: with ``k`` extenders actively receiving
saturated traffic, each extender is granted roughly ``1/k`` of the medium
time, so its throughput is ``c_j / k`` where ``c_j`` is its PHY rate
(isolation throughput).

Crucially, the paper's greedy case study (Fig. 3c) also shows that an
extender whose WiFi-side demand is *below* its time-fair PLC share does not
waste the medium: the leftover time is re-allocated among the extenders that
still have unserved demand.  That behaviour is exactly a *max-min fair*
allocation of the unit medium time, where each active extender has a demand
cap equal to the time fraction it needs to fully serve its WiFi throughput.

This module implements both the plain time-fair law (Eq. (2) of the paper)
and the max-min redistribution used by the end-to-end throughput engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "time_fair_throughputs",
    "max_min_time_shares",
    "max_min_time_shares_batch",
    "PlcAllocation",
    "BatchPlcAllocation",
    "allocate_backhaul",
    "allocate_backhaul_batch",
    "backhaul_throughputs",
    "PLC_MODES",
]

#: Tolerance used when comparing time fractions for saturation.
_EPS = 1e-12


def time_fair_throughputs(plc_rates: Sequence[float],
                          active: Sequence[bool] | None = None) -> np.ndarray:
    """Plain time-fair PLC throughputs, Eq. (2) of the paper.

    Each *active* extender receives an equal ``1/A`` share of the medium
    time, where ``A`` is the number of active extenders, and therefore a
    throughput of ``c_j / A``.  Inactive extenders receive zero.

    Args:
        plc_rates: per-extender PLC PHY rates ``c_j`` (Mbps).
        active: optional boolean mask of active extenders.  When omitted,
            every extender is considered active.

    Returns:
        Array of per-extender PLC throughputs (Mbps).
    """
    rates = np.asarray(plc_rates, dtype=float)
    if np.any(rates < 0):
        raise ValueError("PLC rates must be non-negative")
    if active is None:
        mask = np.ones(rates.shape, dtype=bool)
    else:
        mask = np.asarray(active, dtype=bool)
        if mask.shape != rates.shape:
            raise ValueError("active mask must match plc_rates shape")
    n_active = int(mask.sum())
    out = np.zeros_like(rates)
    if n_active == 0:
        return out
    out[mask] = rates[mask] / n_active
    return out


def max_min_time_shares(demand_fractions: Sequence[float]) -> np.ndarray:
    """Max-min fair allocation of the unit medium time.

    Each entry of ``demand_fractions`` is the fraction of medium time an
    extender needs to fully serve its demand (``d_j / c_j``).  The total
    available time is 1.  The allocation is the classic progressive-filling
    water level: every unsatisfied extender receives an equal share of the
    remaining time; extenders whose demand lies below the water level are
    capped at their demand and the surplus is re-distributed.

    Extenders with zero demand are inactive and receive zero time.

    Args:
        demand_fractions: per-extender required time fraction (``>= 0``;
            ``np.inf`` means "unbounded demand").

    Returns:
        Array of granted time fractions, summing to at most 1 (exactly 1
        when total demand is at least 1).
    """
    demands = np.asarray(demand_fractions, dtype=float)
    if np.any(demands < 0) or np.any(np.isnan(demands)):
        raise ValueError("demand fractions must be non-negative numbers")
    return _progressive_fill(demands)


def _progressive_fill(demands: np.ndarray) -> np.ndarray:
    """Water-filling core of :func:`max_min_time_shares` (pre-validated)."""
    granted = np.zeros_like(demands)
    unsatisfied = np.flatnonzero(demands > _EPS)
    remaining = 1.0
    while unsatisfied.size > 0 and remaining > _EPS:
        level = remaining / unsatisfied.size
        below = unsatisfied[demands[unsatisfied] <= level + _EPS]
        if below.size == 0:
            # Nobody's demand fits under the water level: split equally.
            granted[unsatisfied] = level
            remaining = 0.0
            break
        granted[below] = demands[below]
        remaining -= float(demands[below].sum())
        keep = demands[unsatisfied] > level + _EPS
        unsatisfied = unsatisfied[keep]
    return granted


def max_min_time_shares_batch(demand_fractions: np.ndarray) -> np.ndarray:
    """Row-wise max-min fair time allocation for a batch of demand vectors.

    Vectorized counterpart of :func:`max_min_time_shares`: every row of
    ``demand_fractions`` is an independent progressive-filling problem, and
    all rows advance through the water-filling iterations simultaneously.
    Each iteration either saturates at least one extender per still-active
    row or finishes the row, so the loop runs at most ``n_extenders + 1``
    times regardless of the batch size.

    Args:
        demand_fractions: ``(B, n_extenders)`` matrix of required time
            fractions (``>= 0``; ``np.inf`` means unbounded demand).

    Returns:
        ``(B, n_extenders)`` array of granted time fractions; each row sums
        to at most 1.
    """
    demands = np.atleast_2d(np.asarray(demand_fractions, dtype=float))
    if np.any(demands < 0) or np.any(np.isnan(demands)):
        raise ValueError("demand fractions must be non-negative numbers")
    n_batch = demands.shape[0]
    granted = np.zeros_like(demands)
    remaining = np.ones(n_batch)
    unsat = demands > _EPS
    active_rows = unsat.any(axis=1) & (remaining > _EPS)
    while np.any(active_rows):
        n_unsat = unsat.sum(axis=1)
        level = np.zeros(n_batch)
        level[active_rows] = (remaining[active_rows]
                              / n_unsat[active_rows])
        below = unsat & (demands <= level[:, np.newaxis] + _EPS)
        below &= active_rows[:, np.newaxis]
        has_below = below.any(axis=1)
        # Rows where nobody's demand fits under the water level: split the
        # remaining time equally and finish the row.
        split = active_rows & ~has_below
        if np.any(split):
            sel = split[:, np.newaxis] & unsat
            granted = np.where(sel, level[:, np.newaxis], granted)
            remaining[split] = 0.0
        # Rows with saturated extenders: grant their demands exactly and
        # redistribute the surplus in the next iteration.
        if np.any(has_below):
            granted = np.where(below, demands, granted)
            remaining = remaining - np.where(below, demands, 0.0).sum(axis=1)
            unsat &= ~below
        active_rows = unsat.any(axis=1) & (remaining > _EPS)
    return granted


@dataclass(frozen=True)
class PlcAllocation:
    """Result of allocating the PLC backhaul among extenders.

    Attributes:
        time_shares: fraction of the medium time granted to each extender.
        throughputs: resulting backhaul throughput of each extender (Mbps),
            i.e. ``time_share * c_j`` capped at the extender's demand.
        saturated: whether the extender's demand exceeded its grant (its
            backhaul is the bottleneck of the concatenated link).
    """

    time_shares: np.ndarray
    throughputs: np.ndarray
    saturated: np.ndarray

    @property
    def busy_fraction(self) -> float:
        """Total fraction of the medium time in use."""
        return float(self.time_shares.sum())


#: Valid PLC medium-sharing modes (see :func:`allocate_backhaul`).
PLC_MODES = ("redistribute", "active", "fixed")


def allocate_backhaul(plc_rates: Sequence[float],
                      demands: Sequence[float],
                      mode: str = "redistribute") -> PlcAllocation:
    """Allocate PLC medium time to extenders with given WiFi-side demands.

    Three sharing laws are supported, reflecting the three models that
    appear in the paper:

    * ``"redistribute"`` — time-fair with max-min re-allocation of
      leftover time from under-loaded extenders.  This is the behaviour
      *measured on the testbed* (Fig. 3c) and the default.
    * ``"active"`` — plain time-fair among the extenders that currently
      carry traffic, Eq. (2) with ``A`` = active count (the Fig. 2c
      reading); surplus time of an under-loaded active extender is
      wasted.
    * ``"fixed"`` — time-fair over *all* extenders, loaded or idle:
      ``T_PLC_j = c_j / |A|`` exactly as written in constraint (4) of
      Problem 1.  This is the model the paper's large-scale simulator
      optimizes and reports, and the reason Phase I insists on putting a
      user on every extender.

    Args:
        plc_rates: per-extender PLC PHY rates ``c_j`` (Mbps).
        demands: per-extender offered load from the WiFi side (Mbps);
            zero marks an inactive extender.
        mode: one of :data:`PLC_MODES`.

    Returns:
        A :class:`PlcAllocation` with per-extender time shares and
        achieved backhaul throughputs.
    """
    if mode not in PLC_MODES:
        raise ValueError(f"mode must be one of {PLC_MODES}, got {mode!r}")
    rates = np.asarray(plc_rates, dtype=float)
    load = np.asarray(demands, dtype=float)
    if rates.shape != load.shape:
        raise ValueError("plc_rates and demands must have the same shape")
    if np.any(rates < 0) or np.any(load < 0):
        raise ValueError("rates and demands must be non-negative")

    shares = _time_shares(rates, load, mode)
    throughputs = np.minimum(shares * rates, load)
    saturated = (load > _EPS) & (throughputs + _EPS < load)
    return PlcAllocation(time_shares=shares, throughputs=throughputs,
                         saturated=saturated)


def _time_shares(rates: np.ndarray, load: np.ndarray,
                 mode: str) -> np.ndarray:
    """Per-extender time shares for pre-validated float arrays."""
    active = load > _EPS
    with np.errstate(divide="ignore", invalid="ignore"):
        needed = np.where(active & (rates > 0), load / np.maximum(rates, _EPS),
                          0.0)
    # An active extender with a dead PLC link (rate 0) needs infinite time
    # but can never carry traffic; give it an unbounded demand so it still
    # takes part in contention (it occupies the medium without progress).
    needed = np.where(active & (rates <= _EPS), np.inf, needed)

    if mode == "redistribute":
        return _progressive_fill(needed)
    if mode == "active":
        shares = np.zeros_like(rates)
        n_active = int(active.sum())
        if n_active > 0:
            shares[active] = 1.0 / n_active
        return shares
    # fixed
    shares = np.zeros_like(rates)
    if rates.size > 0:
        shares[active] = 1.0 / rates.size
    return shares


def backhaul_throughputs(plc_rates: np.ndarray, demands: np.ndarray,
                         mode: str = "redistribute") -> np.ndarray:
    """Fast path: per-extender backhaul throughputs only, no validation.

    Bit-identical to ``allocate_backhaul(plc_rates, demands, mode)
    .throughputs`` — it runs the exact same share computation
    (:func:`_time_shares`) and cap — but skips input validation, the
    saturation mask, and the :class:`PlcAllocation` construction.  The
    caller must guarantee what :func:`allocate_backhaul` would have
    checked: both arguments are float ndarrays of the same shape with
    non-negative entries, and ``mode`` is one of :data:`PLC_MODES`.
    This is the per-move hot path of
    :class:`repro.net.engine.DeltaEvaluator`, where those invariants
    are established once at construction instead of on every move.
    """
    shares = _time_shares(plc_rates, demands, mode)
    return np.minimum(shares * plc_rates, demands)


@dataclass(frozen=True)
class BatchPlcAllocation:
    """PLC backhaul allocations for a batch of demand vectors.

    Same semantics as :class:`PlcAllocation` with a leading batch axis:
    every array is ``(B, n_extenders)``.
    """

    time_shares: np.ndarray
    throughputs: np.ndarray
    saturated: np.ndarray

    @property
    def busy_fractions(self) -> np.ndarray:
        """Per-candidate total fraction of the medium time in use."""
        return self.time_shares.sum(axis=1)


def allocate_backhaul_batch(plc_rates: Sequence[float],
                            demands: np.ndarray,
                            mode: str = "redistribute"
                            ) -> BatchPlcAllocation:
    """Allocate the PLC backhaul for a batch of WiFi-side demand vectors.

    Vectorized counterpart of :func:`allocate_backhaul`: ``demands`` is a
    ``(B, n_extenders)`` matrix and every row is allocated independently
    under the same sharing law, without a Python loop over candidates.

    Args:
        plc_rates: per-extender PLC PHY rates ``c_j`` (Mbps).
        demands: ``(B, n_extenders)`` matrix of WiFi-side offered loads.
        mode: one of :data:`PLC_MODES`.

    Returns:
        A :class:`BatchPlcAllocation`.
    """
    if mode not in PLC_MODES:
        raise ValueError(f"mode must be one of {PLC_MODES}, got {mode!r}")
    rates = np.asarray(plc_rates, dtype=float)
    load = np.atleast_2d(np.asarray(demands, dtype=float))
    if load.ndim != 2 or load.shape[1] != rates.shape[0]:
        raise ValueError(
            "demands must be a (B, n_extenders) matrix matching plc_rates")
    if np.any(rates < 0) or np.any(load < 0):
        raise ValueError("rates and demands must be non-negative")

    active = load > _EPS
    rates_row = rates[np.newaxis, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        needed = np.where(active & (rates_row > 0),
                          load / np.maximum(rates_row, _EPS), 0.0)
    needed = np.where(active & (rates_row <= _EPS), np.inf, needed)

    if mode == "redistribute":
        shares = max_min_time_shares_batch(needed)
    elif mode == "active":
        shares = np.zeros_like(load)
        n_active = active.sum(axis=1)
        rows = n_active > 0
        shares[rows] = active[rows] / n_active[rows, np.newaxis]
    else:  # fixed
        shares = np.zeros_like(load)
        if rates.size > 0:
            shares[active] = 1.0 / rates.size
    throughputs = np.minimum(shares * rates_row, load)
    saturated = active & (throughputs + _EPS < load)
    return BatchPlcAllocation(time_shares=shares, throughputs=throughputs,
                              saturated=saturated)
