"""Simulation layer: DES kernel, user dynamics, runners, traffic."""

from .checkpoint import (CheckpointError, CheckpointExists,
                         CorruptCheckpoint, FingerprintMismatch,
                         TrialStore, atomic_write_json,
                         atomic_write_text)
from .dynamics import EpochStats, OnlineSimulation
from .events import EventHandle, EventQueue
from .failures import (FailureEpoch, FailureSimulation, fail_extenders,
                       reassociate_orphans)
from .faults import (ControlPlaneOutcome, CrashSchedule, FaultModel,
                     FaultyTransport, InjectedCrash,
                     run_faulty_control_plane)
from .mobility import MobilityEpoch, MobilitySimulation, RandomWaypoint
from .runner import (PolicyOutcome, TrialFailure, TrialResult,
                     TrialRunResult, run_online_comparison, run_policy,
                     run_trials, sample_floor_plan)
from .workload import DiurnalProfile, hotspot_positions
from .trace import (load_history, load_scenario, save_history,
                    save_scenario)
from .traffic import DemandReport, delivered_bytes, evaluate_with_demands

__all__ = [
    "EventQueue", "EventHandle", "OnlineSimulation", "EpochStats",
    "run_trials", "run_policy", "run_online_comparison",
    "sample_floor_plan", "PolicyOutcome", "TrialResult",
    "delivered_bytes", "evaluate_with_demands", "DemandReport",
    "MobilitySimulation", "MobilityEpoch", "RandomWaypoint",
    "save_history", "load_history", "save_scenario", "load_scenario",
    "FailureSimulation", "FailureEpoch", "fail_extenders",
    "reassociate_orphans", "hotspot_positions", "DiurnalProfile",
    "FaultModel", "FaultyTransport", "ControlPlaneOutcome",
    "run_faulty_control_plane", "InjectedCrash", "CrashSchedule",
    "TrialFailure", "TrialRunResult", "TrialStore", "CheckpointError",
    "CheckpointExists", "CorruptCheckpoint", "FingerprintMismatch",
    "atomic_write_text", "atomic_write_json",
]
