"""Crash-consistent checkpointing for long-running sweeps.

The paper's headline numbers come from Monte-Carlo sweeps that run for
hours at production scale; a sweep that loses every completed trial to
one SIGKILL, OOM-kill, or reboot cannot support them.  This module is
the durability layer the trial runner and the experiment entry points
share:

* :func:`atomic_write_text` / :func:`atomic_write_json` — the repo's
  atomic-persistence helpers (write to a temp file in the destination
  directory, ``fsync``, then ``os.replace``); the woltlint rule W008
  flags result persistence that bypasses them;
* :func:`fingerprint` — a canonical SHA-256 over a run's scientific
  parameters, stamped into every checkpoint so a resume against the
  wrong configuration is rejected loudly instead of silently merging
  incompatible results;
* :class:`TrialStore` — an append-only JSONL journal of per-index
  records.  Appends are flushed and fsynced record-by-record, recovery
  tolerates a truncated tail record (a crash at any byte boundary
  yields a valid store), and :meth:`TrialStore.snapshot` compacts the
  journal into a canonical, byte-reproducible form via ``os.replace``.

The journal stores plain JSON payloads keyed by a non-negative integer
index; the runner layers :class:`~repro.sim.runner.TrialResult`
encoding on top (see ``repro.sim.runner``), and the experiment modules
journal their own per-trial partial sums through the same store.
JSON round-trips Python floats exactly (``repr`` emits the shortest
digits that reparse to the same IEEE-754 double), which is what makes
a resumed run bit-identical to a cold one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import (IO, Any, Dict, FrozenSet, List, Mapping, Optional,
                    Union)

__all__ = ["CheckpointError", "CheckpointExists", "CorruptCheckpoint",
           "FingerprintMismatch", "TrialStore", "atomic_write_json",
           "atomic_write_text", "canonical_json", "fingerprint"]

#: Format version stamped into every checkpoint header.
STORE_VERSION = 1


class CheckpointError(RuntimeError):
    """Base class for checkpoint-layer failures."""


class CheckpointExists(CheckpointError):
    """A non-empty checkpoint already exists and ``resume`` is False."""


class FingerprintMismatch(CheckpointError):
    """The checkpoint was written by a run with different parameters."""


class CorruptCheckpoint(CheckpointError):
    """The checkpoint is damaged beyond the recoverable truncated tail."""


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` deterministically (sorted keys, no spaces).

    Canonical bytes are what make snapshots byte-reproducible and
    fingerprints stable across Python processes.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint(params: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a run's scientific parameters.

    ``params`` must be JSON-serializable; the digest is taken over the
    canonical JSON encoding, so key order and whitespace never matter.
    """
    return hashlib.sha256(
        canonical_json(dict(params)).encode("utf-8")).hexdigest()


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems) and is fsynced before the rename, so a
    crash at any point leaves either the old contents or the new —
    never a torn file.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent) or ".",
        prefix=f".{target.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: Union[str, Path], payload: Any,
                      indent: Optional[int] = 2) -> None:
    """Atomically write ``payload`` as JSON (see :func:`atomic_write_text`)."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


class TrialStore:
    """An append-only, crash-consistent journal of per-index records.

    File layout (JSON Lines)::

        {"kind": "header", "version": 1, "fingerprint": "...", "params": {...}}
        {"kind": "record", "index": 0, "payload": {...}}
        {"kind": "event", "event": "interrupted", ...}
        ...

    Durability contract:

    * :meth:`append` writes one complete line, flushes, and fsyncs —
      a record is either fully on disk or absent;
    * opening with ``resume=True`` recovers from a crash at any byte
      boundary: a truncated or garbled *final* line is discarded and
      the file truncated back to the last complete record (damage
      anywhere else raises :class:`CorruptCheckpoint`);
    * a header whose fingerprint differs from the caller's raises
      :class:`FingerprintMismatch` — resuming under changed parameters
      would silently merge incompatible results;
    * :meth:`snapshot` rewrites the journal in canonical form (header,
      then records sorted by index, transient events dropped) through
      :func:`atomic_write_text`, so two runs that completed the same
      trials produce byte-identical snapshots.

    Args:
        path: journal location; parent directories are created.
        fingerprint: the run's :func:`fingerprint` digest.
        params: optional JSON-serializable parameter echo stored in the
            header for human forensics (never used for matching).
        resume: when True, an existing journal is recovered and its
            records exposed through :attr:`records`; when False a
            non-empty journal raises :class:`CheckpointExists`.
    """

    def __init__(self, path: Union[str, Path], fingerprint: str,
                 params: Optional[Mapping[str, Any]] = None,
                 resume: bool = False) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.params: Optional[Dict[str, Any]] = \
            None if params is None else dict(params)
        self._records: Dict[int, Any] = {}
        self._events: List[Dict[str, Any]] = []
        self._handle: Optional[IO[str]] = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = self.path.exists() and self.path.stat().st_size > 0
        if existing and not resume:
            raise CheckpointExists(
                f"checkpoint {self.path} already exists — pass "
                "resume=True to continue it or remove the file to "
                "start over")
        if existing:
            self._recover()
            self._handle = open(self.path, "a", encoding="utf-8")
        else:
            # Write the header through the atomic helper so a crash
            # during creation cannot leave a headerless journal.
            atomic_write_text(self.path,
                              canonical_json(self._header()) + "\n")
            self._handle = open(self.path, "a", encoding="utf-8")

    # -- construction helpers ------------------------------------------

    def _header(self) -> Dict[str, Any]:
        header: Dict[str, Any] = {"kind": "header",
                                  "version": STORE_VERSION,
                                  "fingerprint": self.fingerprint}
        if self.params is not None:
            header["params"] = self.params
        return header

    def _recover(self) -> None:
        """Load an existing journal, healing a truncated tail record."""
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        # A file that ends mid-record has a non-empty final chunk with
        # no trailing newline; a clean file ends with b"".
        complete, tail = lines[:-1], lines[-1]
        parsed: List[Dict[str, Any]] = []
        good_bytes = 0
        damaged = tail != b""
        for pos, line in enumerate(complete):
            try:
                entry = json.loads(line.decode("utf-8"))
                if not isinstance(entry, dict) or "kind" not in entry:
                    raise ValueError("not a journal entry")
            except (ValueError, UnicodeDecodeError) as exc:
                if pos == len(complete) - 1:
                    # Torn final line (e.g. the crash landed between
                    # the payload and the newline of the *previous*
                    # write): drop it like an unterminated tail.
                    damaged = True
                    break
                raise CorruptCheckpoint(
                    f"{self.path}: line {pos + 1} is damaged mid-file "
                    f"({exc}); refusing to guess at the journal's "
                    "contents") from exc
            parsed.append(entry)
            good_bytes += len(line) + 1
        if not parsed:
            raise CorruptCheckpoint(
                f"{self.path}: no intact header record")
        header = parsed[0]
        if header.get("kind") != "header":
            raise CorruptCheckpoint(
                f"{self.path}: first record is not a header")
        if header.get("version") != STORE_VERSION:
            raise CorruptCheckpoint(
                f"{self.path}: unsupported checkpoint version "
                f"{header.get('version')!r}")
        if header.get("fingerprint") != self.fingerprint:
            raise FingerprintMismatch(
                f"{self.path} was written by a run with different "
                f"parameters (stored fingerprint "
                f"{header.get('fingerprint')!r}, this run "
                f"{self.fingerprint!r}); resuming would merge "
                "incompatible results.  Use the original parameters or "
                "start a fresh checkpoint.")
        for entry in parsed[1:]:
            kind = entry.get("kind")
            if kind == "record":
                index = int(entry["index"])
                # First write wins: records are deterministic, so a
                # duplicate (possible only after manual edits) is
                # ignored rather than trusted.
                self._records.setdefault(index, entry["payload"])
            elif kind == "event":
                self._events.append(
                    {k: v for k, v in entry.items() if k != "kind"})
            elif kind == "header":
                raise CorruptCheckpoint(
                    f"{self.path}: duplicate header record")
            # Unknown kinds are preserved on disk but not surfaced;
            # they let future versions add record types.
        if damaged:
            # Heal in place: truncate back to the last complete record
            # so the append handle starts at a clean line boundary.
            with open(self.path, "r+b") as handle:
                handle.truncate(good_bytes)
                handle.flush()
                os.fsync(handle.fileno())

    # -- read API -------------------------------------------------------

    @property
    def records(self) -> Dict[int, Any]:
        """Recovered/journaled payloads keyed by index (live view)."""
        return self._records

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Transient event records (e.g. interruption markers)."""
        return list(self._events)

    @property
    def completed(self) -> FrozenSet[int]:
        return frozenset(self._records)

    def __contains__(self, index: int) -> bool:
        return index in self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- write API ------------------------------------------------------

    def _append_line(self, entry: Mapping[str, Any]) -> None:
        if self._handle is None:
            raise CheckpointError(f"{self.path}: store is closed")
        self._handle.write(canonical_json(entry) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, index: int, payload: Any) -> None:
        """Durably journal one record (complete-line write + fsync)."""
        index = int(index)
        if index < 0:
            raise ValueError("record index must be non-negative")
        if index in self._records:
            raise CheckpointError(
                f"{self.path}: index {index} already journaled")
        self._append_line({"kind": "record", "index": index,
                           "payload": payload})
        self._records[index] = payload

    def append_event(self, event: str, **fields: Any) -> None:
        """Journal a transient event (dropped by :meth:`snapshot`)."""
        entry: Dict[str, Any] = {"kind": "event", "event": event}
        entry.update(fields)
        self._append_line(entry)
        self._events.append(
            {k: v for k, v in entry.items() if k != "kind"})

    def snapshot(self) -> None:
        """Atomically compact the journal into canonical form.

        The rewritten file holds the header followed by every record in
        index order; transient events are dropped.  Two stores that
        completed the same records therefore snapshot to byte-identical
        files regardless of completion order or crash/resume history.
        """
        lines = [canonical_json(self._header())]
        for index in sorted(self._records):
            lines.append(canonical_json(
                {"kind": "record", "index": index,
                 "payload": self._records[index]}))
        if self._handle is not None:
            self._handle.close()
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._events = []
        self._handle = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TrialStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
