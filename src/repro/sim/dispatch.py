"""Generic chunked warm-pool dispatch: the process-supervision layer.

Extracted from ``repro.sim.runner`` so that *any* batch of picklable
work items — Monte-Carlo trials, fleet shard solves — can ride the
same machinery instead of re-growing its own pool plumbing:

* **Chunked submits** — one future per *chunk* of work amortizes the
  submit/result IPC that made one-future-per-item pools lose to serial
  execution, and the shared config registry lets fork-started workers
  inherit the run parameters instead of re-pickling them per chunk.
* **Warm pool reuse** — idle executors are cached across dispatch
  calls, so a parameter sweep pays process startup once.
* **Supervision** — per-item deadlines with hung-worker reaping,
  broken-pool recycling with *serial quarantine* (casualties are
  re-probed one at a time so the true killer is blamed with
  certainty), and graceful SIGINT/SIGTERM draining.

The unit of work is ``fn(config, spec)`` where ``fn`` is a
module-level (picklable) callable, ``config`` is the batch-shared
parameter block, and ``spec`` is the per-item half.  Every spec must
expose an integer ``index`` (its 0-based position in the batch) — use
:class:`WorkSpec` when there is nothing more to say about an item.

``repro.sim.runner`` remains the canonical client: it supplies trial
specs, a trial-solving ``fn``, and a journaling ``record`` callback,
and keeps the checkpoint/resume and result-codec layers for itself.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import signal
import time
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (Any, Callable, Deque, Dict, List, Optional,
                    Sequence, Tuple)

__all__ = ["WorkSpec", "WorkFailure", "InterruptState", "SignalGuard",
           "dispatch_chunked", "run_chunked", "shutdown_warm_pools",
           "timeout_failure", "TIMEOUT_ERROR_TYPE", "POOL_ERROR_TYPE"]

#: Supervisor wake-up period: the upper bound on how stale the deadline
#: and interrupt checks can be while workers are busy.
_POLL_S = 0.2

#: ``error_type`` recorded for a work item reaped past its deadline.
TIMEOUT_ERROR_TYPE = "TrialTimeout"

#: ``error_type`` recorded for an item whose worker died (pool crash).
POOL_ERROR_TYPE = "BrokenProcessPool"


@dataclass(frozen=True)
class WorkSpec:
    """A minimal work spec: batch position plus the caller's item.

    Callers with richer per-item state (seed material, sub-problems)
    may supply their own spec dataclass instead — the dispatch layer
    only ever touches ``spec.index``.
    """

    index: int
    item: Any


@dataclass(frozen=True)
class WorkFailure:
    """A work item the supervisor had to give up on.

    Produced for items reaped past their deadline
    (:data:`TIMEOUT_ERROR_TYPE`) or whose worker process died
    repeatedly (:data:`POOL_ERROR_TYPE`); delivered through ``record``
    in place of a result.  Item-level exceptions are *not* wrapped —
    an unguarded ``fn`` propagates them to the caller unchanged.

    Attributes:
        index: 0-based position of the item in the batch.
        attempts: attempts made before giving up.
        error_type: :data:`TIMEOUT_ERROR_TYPE` or
            :data:`POOL_ERROR_TYPE`.
        error: a supervisor note describing what happened.
    """

    index: int
    attempts: int
    error_type: str
    error: str


def timeout_failure(index: int, timeout_s: Optional[float],
                    attempts: int = 1) -> WorkFailure:
    """The canonical deadline-reap :class:`WorkFailure`.

    Both the pool supervisor (a chunk that outlived its deadline) and
    callers that must *synthesize* a reap without a process boundary —
    the fleet layer's serial path applying a planned hang fault —
    build the record here, so journals and reports carry one
    ``error_type`` regardless of how the hang was detected.
    """
    detail = (f"exceeded its {timeout_s}s deadline"
              if timeout_s is not None else "hung")
    return WorkFailure(index=index, attempts=attempts,
                       error_type=TIMEOUT_ERROR_TYPE,
                       error=f"work item {detail} and was reaped")


# ---------------------------------------------------------------------------
# Shared config registry: fork-inherited batch parameters.


#: Parent-side registry of live batch configs.  A pool *created while a
#: token is registered* forks its workers from this process, so they
#: inherit the entry and chunks can reference it by token alone; pools
#: that predate the registration (warm reuse) get the config embedded
#: in each chunk task instead.
_SHARED_CONFIGS: Dict[str, Any] = {}

_config_tokens = itertools.count()

#: True when worker processes inherit parent memory at fork time (the
#: Linux default).  Spawn-style start methods never inherit, so chunks
#: always embed their config there.
_FORK_INHERITS = multiprocessing.get_start_method(allow_none=False) == "fork"


def _register_config(config: Any) -> str:
    token = f"{os.getpid()}-{next(_config_tokens)}"
    _SHARED_CONFIGS[token] = config
    return token


@dataclass(frozen=True)
class _ChunkTask:
    """A batch of work shipped to one worker in a single submit.

    ``inherit`` marks a chunk bound for a worker known to have
    inherited the registry entry for ``token`` at fork time; the worker
    then resolves the config locally and the chunk's pickle carries
    only the per-item specs.  (A separate flag — not ``config is
    None`` — because ``None`` is a legitimate config for callers whose
    ``fn`` needs no shared block.)
    """

    token: str
    config: Optional[Any]
    inherit: bool
    specs: Tuple[Any, ...]
    fn: Callable[[Any, Any], Any]


def _run_chunk(task: _ChunkTask) -> List[Any]:
    """Execute one chunk inside a worker, preserving spec order.

    The returned list maps 1:1 onto ``task.specs`` — the supervisor
    re-associates results by position, so this invariant (checked
    there) is what keeps chunked results correctly attributed no matter
    which order chunks complete in.
    """
    if task.inherit:
        if task.token not in _SHARED_CONFIGS:  # pragma: no cover - defensive
            raise RuntimeError(
                f"worker has no config for token {task.token!r}; the "
                "chunk was dispatched to a pool that never inherited "
                "it")
        config = _SHARED_CONFIGS[task.token]
    else:
        config = task.config
    return [task.fn(config, spec) for spec in task.specs]


#: Cap on the automatic chunk size; beyond this the IPC amortization is
#: negligible and large chunks only hurt load balance and durability
#: granularity (a completed chunk journals all its items at once).
_MAX_AUTO_CHUNK = 16

#: Target number of chunk "waves" per worker: small enough to amortize
#: IPC, large enough that one slow chunk cannot idle the other workers
#: for long.
_CHUNK_WAVES = 2


def _auto_chunk_size(n_pending: int, workers: int) -> int:
    """Default chunk size: ``_CHUNK_WAVES`` chunks per worker, capped."""
    if n_pending <= 0:
        return 1
    per_wave = -(-n_pending // (max(workers, 1) * _CHUNK_WAVES))
    return max(1, min(per_wave, _MAX_AUTO_CHUNK))


# ---------------------------------------------------------------------------
# Warm pools and leases.


#: Idle warm pools keyed by worker count, reused across dispatch calls
#: so a parameter sweep pays process startup once, not once per sweep
#: point.  Pools are leased exclusively (popped) while a run is active
#: and returned only when they finished cleanly.
_WARM_POOLS: Dict[int, ProcessPoolExecutor] = {}


def shutdown_warm_pools() -> None:
    """Tear down every idle warm worker pool (also runs at exit).

    Safe to call at any time: pools leased by an in-flight dispatch
    are not in the cache and are unaffected.
    """
    while _WARM_POOLS:
        _, pool = _WARM_POOLS.popitem()
        _kill_pool(pool)


atexit.register(shutdown_warm_pools)


class _PoolLease:
    """Exclusive use of a (possibly warm) process pool for one run.

    Tracks whether the current executor was created *after* the run's
    config registration (``inherits`` — its forked workers carry the
    config and chunks may omit it) and routes the end-of-run decision:
    a cleanly drained pool goes back to the warm cache, an abandoned or
    broken one is killed.
    """

    def __init__(self, workers: int, reuse: bool = True) -> None:
        self.workers = workers
        self.reuse = reuse
        self._dead = False
        cached = _WARM_POOLS.pop(workers, None) if reuse else None
        if cached is not None:
            self.pool = cached
            self._fresh = False
        else:
            self.pool = ProcessPoolExecutor(max_workers=workers)
            self._fresh = True

    @property
    def inherits(self) -> bool:
        """True when this pool's workers inherited the run config."""
        return self._fresh and _FORK_INHERITS

    def recycle(self) -> None:
        """Kill the current executor and start a fresh one."""
        _kill_pool(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        self._fresh = True
        self._dead = False

    def abandon(self) -> None:
        """Kill the executor without returning it to the cache."""
        self._dead = True
        _kill_pool(self.pool)

    def release(self) -> None:
        """Return a cleanly drained executor to the warm cache."""
        if self._dead:
            return  # already killed by abandon()
        if not self.reuse:
            self.pool.shutdown(wait=True)
            return
        if self.workers in _WARM_POOLS:  # nested/concurrent runs
            self.pool.shutdown(wait=True)
        else:
            _WARM_POOLS[self.workers] = self.pool


# ---------------------------------------------------------------------------
# Supervision: signals, deadlines, pool recycling.


class InterruptState:
    """Mutable flag the signal handlers share with the run loop."""

    def __init__(self) -> None:
        self.signal_name: Optional[str] = None

    @property
    def interrupted(self) -> bool:
        return self.signal_name is not None


class SignalGuard:
    """Install graceful SIGINT/SIGTERM handlers for a durable run.

    The handler records the signal and lets the run loop drain: no
    work item is torn mid-write, journals are flushed, and the partial
    results are returned with ``interrupted`` set.  Outside the main
    thread (where ``signal.signal`` is unavailable) the guard is a
    no-op and the default semantics apply.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, state: InterruptState) -> None:
        self.state = state
        self._saved: List[Tuple[int, Any]] = []

    def __enter__(self) -> "SignalGuard":
        for sig in self._SIGNALS:
            try:
                previous = signal.signal(sig, self._handle)
            except ValueError:  # not the main thread
                continue
            self._saved.append((sig, previous))
        return self

    def _handle(self, signum: int, frame: Any) -> None:
        self.state.signal_name = signal.Signals(signum).name

    def __exit__(self, *exc_info: Any) -> None:
        for sig, previous in self._saved:
            signal.signal(sig, previous)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly reap a pool, hung workers included.

    ``ProcessPoolExecutor`` has no public kill switch — ``shutdown``
    waits for running calls, which is exactly what a hung worker never
    finishes — so the workers are SIGKILLed directly before the
    bookkeeping threads are shut down.
    """
    # _processes is None before the first submit and after shutdown.
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except (OSError, AttributeError):  # already gone
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # the pool may already be broken — that's fine
        pass


def _run_supervised(pending: Sequence[Any], config: Any, token: str,
                    lease: _PoolLease, chunk_size: int,
                    fn: Callable[[Any, Any], Any], guarded: bool,
                    retry_budget: int, timeout_s: Optional[float],
                    record: Callable[[int, Any], None],
                    state: InterruptState) -> None:
    """Run work specs on a supervised, chunk-dispatching process pool.

    Unlike a blind ``pool.map``, the supervisor:

    * submits work in *chunks* of ``chunk_size`` (one future per
      chunk), amortizing the submit/result IPC and the config pickle
      over the whole batch; a chunk's results map positionally onto its
      specs, and that mapping is asserted so chunk completion order can
      never mis-attribute a result;
    * keeps at most ``workers`` chunks in flight, so every submitted
      chunk starts promptly and its deadline is meaningful;
    * reaps any chunk that outlives its deadline (``timeout_s`` per
      item in the chunk; callers force single-item chunks when
      deadlines are active, keeping the contract per-item) — the pool
      is killed (hung workers cannot be joined), the hung items are
      recorded as :class:`WorkFailure` with
      :data:`TIMEOUT_ERROR_TYPE`, and the innocent in-flight items are
      resubmitted on a fresh pool (deterministic ``fn``s make the
      rerun bit-identical);
    * converts a :class:`BrokenProcessPool` (a worker SIGKILLed / OOMed
      / segfaulted) into a pool recycle with *serial quarantine*: a
      broken pool takes down every in-flight future, so blame cannot be
      attributed while several items share it.  The casualties are
      therefore resubmitted one item at a time on the fresh pool — an
      innocent probe completes and walks free; the true killer dies
      alone, is now blamed with certainty, and is retried up to
      ``max(retry_budget, 1)`` times before being recorded as an
      explicit :class:`WorkFailure`.  One repeatedly-dying item can
      never take a neighbour down with it;
    * drains promptly on interruption: completed results are kept,
      queued chunks are abandoned.

    ``record`` is called exactly once per finished item — in spec
    order within a chunk, in completion order across chunks — and is
    expected to journal durably.  The caller re-emits the collected
    results in submission order regardless of completion order.
    """
    queue: Deque[Tuple[Any, ...]] = deque(
        tuple(pending[i:i + chunk_size])
        for i in range(0, len(pending), chunk_size))
    pool_attempts: Dict[int, int] = {}
    quarantine: set = set()
    inflight: Dict[Any, Tuple[Tuple[Any, ...],
                              Optional[float]]] = {}

    def make_task(specs: Tuple[Any, ...]) -> _ChunkTask:
        # A pool created after the config registration forked workers
        # that inherited the registry; older (warm-reused) pools need
        # the config embedded in the chunk.
        return _ChunkTask(token=token,
                          config=None if lease.inherits else config,
                          inherit=lease.inherits, specs=specs, fn=fn)

    def settle_chunk(specs: Tuple[Any, ...],
                     results: List[Any]) -> None:
        if len(results) != len(specs):  # pragma: no cover - invariant
            raise RuntimeError(
                f"chunk returned {len(results)} results for "
                f"{len(specs)} items — per-item attribution lost")
        for spec, result in zip(specs, results):
            quarantine.discard(spec.index)
            record(spec.index, result)

    def fail_spec(spec: Any, failure: WorkFailure) -> None:
        quarantine.discard(spec.index)
        record(spec.index, failure)

    def recycle(casualties: List[Tuple[Any, ...]]) -> None:
        """Replace a broken pool; quarantine, retry or fail casualties.

        Blame is only assigned when a single item was in flight (it is
        then certainly the one whose worker died); a multi-casualty
        break quarantines everyone unblamed and lets the serial probes
        sort killer from bystander.  Casualty chunks are always
        requeued as single-item probes so the next break is
        attributable.
        """
        specs = [spec for chunk in casualties for spec in chunk]
        lease.recycle()
        budget = max(retry_budget, 1)
        certain = len(specs) == 1
        for spec in reversed(specs):
            count = pool_attempts.get(spec.index, 0)
            if certain:
                count += 1
                pool_attempts[spec.index] = count
            if count > budget:
                fail_spec(spec, WorkFailure(
                    index=spec.index, attempts=count,
                    error_type=POOL_ERROR_TYPE,
                    error=f"worker process died {count} times while "
                          f"running this work item"))
            else:
                quarantine.add(spec.index)
                queue.appendleft((spec,))

    try:
        while (queue or inflight) and not state.interrupted:
            # Top up the pool, one in-flight chunk per worker — except
            # while quarantined casualties await their serial probes.
            while queue and len(inflight) < (1 if quarantine
                                             else lease.workers):
                specs = queue.popleft()
                deadline = (None if timeout_s is None
                            else time.monotonic()
                            + timeout_s * len(specs))
                try:
                    future = lease.pool.submit(_run_chunk,
                                               make_task(specs))
                except (BrokenProcessPool, RuntimeError):
                    # The pool died between polls; recycle and retry.
                    casualties = [c for c, _ in inflight.values()]
                    casualties.append(specs)
                    inflight.clear()
                    recycle(casualties)
                    break
                inflight[future] = (specs, deadline)
            if not inflight:
                continue
            wait_s = _POLL_S
            deadlines = [d for _, d in inflight.values()
                         if d is not None]
            if deadlines:
                wait_s = min(wait_s,
                             max(0.0, min(deadlines) - time.monotonic()))
            done, _ = wait(set(inflight), timeout=wait_s,
                           return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                specs, _ = inflight.pop(future)
                try:
                    settle_chunk(specs, future.result())
                except BrokenProcessPool:
                    broken = True
                    inflight[future] = (specs, None)
                except Exception:
                    if guarded:
                        raise  # guarded fns never raise these
                    lease.abandon()
                    raise
            if broken:
                casualties = [c for c, _ in inflight.values()]
                inflight.clear()
                recycle(casualties)
                continue
            # Deadline pass: harvest any just-finished stragglers, then
            # reap whatever is genuinely past its deadline.
            now = time.monotonic()
            expired = [future for future, (c, d) in inflight.items()
                       if d is not None and now >= d]
            if not expired:
                continue
            for future in list(expired):
                if future.done():  # finished in the polling gap
                    expired.remove(future)
                    specs, _ = inflight.pop(future)
                    try:
                        settle_chunk(specs, future.result())
                    except BrokenProcessPool:
                        inflight[future] = (specs, None)
            hung = [inflight.pop(future)[0] for future in expired
                    if future in inflight]
            if not hung:
                continue
            for specs in hung:
                for spec in specs:
                    fail_spec(spec, timeout_failure(spec.index,
                                                    timeout_s))
            # The hung workers must die; innocents rerun unpunished
            # (deadline reaping is not their failure).
            survivors = [c for c, _ in inflight.values()]
            inflight.clear()
            lease.recycle()
            queue.extendleft(reversed(survivors))
    finally:
        if inflight or queue:
            # Interrupted (or propagating an error): abandon cleanly.
            lease.abandon()
        else:
            lease.release()


# ---------------------------------------------------------------------------
# Public entry points.


def dispatch_chunked(specs: Sequence[Any], config: Any,
                     fn: Callable[[Any, Any], Any], *,
                     workers: int,
                     chunk_size: Optional[int] = None,
                     guarded: bool = False,
                     retry_budget: int = 0,
                     timeout_s: Optional[float] = None,
                     record: Callable[[int, Any], None],
                     state: Optional[InterruptState] = None,
                     reuse_pool: bool = True) -> None:
    """Supervise a batch of specs through a leased warm pool.

    The callback-style entry point: ``record(index, result)`` fires
    once per finished item (supervisor failures arrive as
    :class:`WorkFailure`), in chunk completion order.  Callers that
    just want an ordered result list use :func:`run_chunked`.

    Args:
        specs: per-item work specs; each must expose ``index``.
        config: the batch-shared parameter block (any picklable value,
            ``None`` included); registered so fork-started workers
            inherit it instead of re-pickling it per chunk.
        fn: module-level callable run as ``fn(config, spec)`` inside
            the workers; must be picklable.
        workers: worker process count (>= 1).
        chunk_size: items per dispatched chunk; ``None`` sizes chunks
            automatically (≈ two waves per worker, capped at 16).
            ``timeout_s`` forces single-item chunks — the deadline
            contract is per item.
        guarded: declare that ``fn`` never raises (it returns explicit
            failure records instead); an exception out of a guarded
            ``fn`` then propagates as an invariant violation without
            tearing down the pool lease.
        retry_budget: pool-death retries per item before recording a
            :class:`WorkFailure` (at least one probe is always made).
        timeout_s: optional per-item wall-clock deadline.
        record: per-item completion callback.
        state: optional shared interrupt flag; when it trips, the
            supervisor drains promptly and abandons queued work.
        reuse_pool: lease from / release to the warm-pool cache.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    state = state if state is not None else InterruptState()
    if timeout_s is not None:
        effective_chunk = 1  # the deadline is per item
    elif chunk_size is not None:
        effective_chunk = chunk_size
    else:
        effective_chunk = _auto_chunk_size(len(specs), workers)
    # Register the config *before* leasing the pool: a fresh pool
    # forks its workers lazily on first submit, so they inherit the
    # registry entry and chunks can travel config-free.
    token = _register_config(config)
    try:
        lease = _PoolLease(workers, reuse=reuse_pool)
        _run_supervised(specs, config, token, lease, effective_chunk,
                        fn, guarded, retry_budget, timeout_s, record,
                        state)
    finally:
        _SHARED_CONFIGS.pop(token, None)


def run_chunked(fn: Callable[[Any, Any], Any], items: Sequence[Any], *,
                config: Any = None,
                workers: Optional[int] = None,
                chunk_size: Optional[int] = None,
                guarded: bool = False,
                retry_budget: int = 0,
                timeout_s: Optional[float] = None,
                state: Optional[InterruptState] = None) -> List[Any]:
    """Run ``fn(config, spec)`` over every item; results in item order.

    Each item is wrapped in a :class:`WorkSpec` carrying its 0-based
    position.  ``workers`` of ``None``/0/1 runs serially in-process
    (except that ``timeout_s`` requires a pool — a deadline needs a
    process boundary to reap across).  Supervisor-level failures
    (deadline reaps, repeated worker deaths) appear as
    :class:`WorkFailure` entries in the returned list; item-level
    exceptions propagate unless ``fn`` guards itself.
    """
    if timeout_s is not None and (workers is None or workers < 1):
        raise ValueError(
            "timeout_s requires workers >= 1: reaping a hung item "
            "needs a worker process boundary to kill across")
    specs = tuple(WorkSpec(index=i, item=item)
                  for i, item in enumerate(items))
    results: Dict[int, Any] = {}

    def record(index: int, result: Any) -> None:
        results[index] = result

    use_pool = (workers is not None
                and (workers > 1 or timeout_s is not None))
    if use_pool:
        dispatch_chunked(specs, config, fn,
                         workers=max(int(workers or 1), 1),
                         chunk_size=chunk_size, guarded=guarded,
                         retry_budget=retry_budget, timeout_s=timeout_s,
                         record=record, state=state)
    else:
        serial_state = state if state is not None else InterruptState()
        for spec in specs:
            if serial_state.interrupted:
                break
            record(spec.index, fn(config, spec))
    return [results[i] for i in sorted(results)]
