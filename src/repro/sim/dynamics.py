"""Online user dynamics: Poisson arrivals/departures and epoch behaviour.

Reproduces the temporal setting of §V-A/§V-E: "user association requests
arrive and depart the network according to Poisson distribution with
arrival rate of 3 and departure rate of 1", giving a net average growth
of ~33 users per epoch (36 -> 66 -> 102 in Fig. 6b).

Policies behave as in the paper:

* **WOLT** — an arriving user attaches to its strongest-RSSI extender to
  reach the Central Controller; at every epoch boundary the CC re-solves
  the full association with Alg. 1 and re-assigns users (Fig. 6c counts
  those re-assignments).
* **Greedy** — each arriving user is greedily placed to maximize the
  aggregate throughput; nobody is ever re-assigned.
* **RSSI** — each arriving user sticks with its strongest extender.

The simulation is built on the DES kernel in :mod:`repro.sim.events` and
is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.baselines import greedy_attach_user
from ..core.problem import Scenario, UNASSIGNED
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.topology import FloorPlan, build_scenario, sample_user_positions
from ..wifi.phy import WifiPhy
from .events import EventQueue

__all__ = ["EpochStats", "OnlineSimulation"]


@dataclass(frozen=True)
class EpochStats:
    """Measurements taken at one epoch boundary (Fig. 6b/6c).

    Attributes:
        epoch: 1-based epoch index.
        n_users: population after the epoch's arrivals/departures.
        arrivals: users that arrived during the epoch.
        departures: users that departed during the epoch.
        reassignments: existing users whose extender changed at the
            boundary (0 for Greedy/RSSI, which never re-assign).
        aggregate_throughput: network throughput after reconfiguration.
        jain_fairness: Jain index of per-user throughputs.
    """

    epoch: int
    n_users: int
    arrivals: int
    departures: int
    reassignments: int
    aggregate_throughput: float  # woltlint: disable=W005 — established result API; value is Mbps
    jain_fairness: float


class OnlineSimulation:
    """Arrival/departure dynamics over an enterprise floor.

    Args:
        plan: floor geometry with extender placements (users ignored;
            the simulation manages its own population).
        policy: ``"wolt"``, ``"greedy"`` or ``"rssi"``.
        rng: random generator (drives arrivals, departures, positions).
        arrival_rate: Poisson arrival rate (paper: 3 per time unit).
        departure_rate: Poisson departure rate (paper: 1 per time unit).
        epoch_duration: epoch length in time units; the default 16.5
            yields the paper's ~33-user net growth per epoch.
        phy: WiFi PHY used to derive rates from positions.
        plc_mode: PLC sharing law used to *score* epochs (policies still
            decide against the measured, redistributing behaviour).
    """

    POLICIES = ("wolt", "greedy", "rssi")

    def __init__(self, plan: FloorPlan, policy: str,
                 rng: np.random.Generator,
                 arrival_rate: float = 3.0,
                 departure_rate: float = 1.0,
                 epoch_duration: float = 16.5,
                 phy: Optional[WifiPhy] = None,
                 plc_mode: str = "redistribute") -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}")
        if arrival_rate <= 0 or departure_rate < 0:
            raise ValueError("rates must be positive (departures >= 0)")
        self.plan = plan
        self.policy = policy
        self.rng = rng
        self.arrival_rate = arrival_rate
        self.departure_rate = departure_rate
        self.epoch_duration = epoch_duration
        self.phy = phy or WifiPhy()
        self.plc_mode = plc_mode
        self.queue = EventQueue()
        self._next_user_id = 0
        #: user id -> (x, y) position
        self.positions: Dict[int, np.ndarray] = {}
        #: user id -> extender index
        self.assignment: Dict[int, int] = {}
        self._epoch_arrivals = 0
        self._epoch_departures = 0
        self.history: List[EpochStats] = []
        self._schedule_next_arrival()
        self._schedule_next_departure()

    # ------------------------------------------------------------------
    # population bookkeeping

    @property
    def n_users(self) -> int:
        return len(self.positions)

    def seed_users(self, n_users: int) -> None:
        """Place an initial population (counted as epoch-0 arrivals)."""
        for _ in range(n_users):
            self._arrive(count=False)

    def _scenario(self) -> Scenario:
        ids = sorted(self.positions)
        if ids:
            user_xy = np.vstack([self.positions[uid] for uid in ids])
        else:
            user_xy = np.empty((0, 2))
        scenario = build_scenario(self.plan.with_users(user_xy),
                                  phy=self.phy)
        return Scenario(wifi_rates=scenario.wifi_rates,
                        plc_rates=scenario.plc_rates,
                        user_ids=np.asarray(ids))

    def _assignment_vector(self, scenario: Scenario) -> np.ndarray:
        ids = scenario.user_ids
        return np.array([self.assignment.get(int(uid), UNASSIGNED)
                         for uid in ids])

    # ------------------------------------------------------------------
    # event processes

    def _schedule_next_arrival(self) -> None:
        gap = float(self.rng.exponential(1.0 / self.arrival_rate))
        self.queue.schedule_in(gap, self._arrive)

    def _schedule_next_departure(self) -> None:
        if self.departure_rate <= 0:
            return
        gap = float(self.rng.exponential(1.0 / self.departure_rate))
        self.queue.schedule_in(gap, self._depart)

    def _arrive(self, count: bool = True) -> None:
        uid = self._next_user_id
        self._next_user_id += 1
        self.positions[uid] = sample_user_positions(
            1, self.plan.width_m, self.plan.height_m, self.rng)[0]
        scenario = self._scenario()
        idx = int(np.flatnonzero(scenario.user_ids == uid)[0])
        if self.policy == "greedy":
            vec = self._assignment_vector(scenario)
            self.assignment[uid] = greedy_attach_user(scenario, vec, idx)
        else:
            # WOLT newcomers camp on the strongest extender until the
            # next epoch boundary; RSSI users stay there for good.
            self.assignment[uid] = int(
                np.argmax(scenario.wifi_rates[idx]))
        if count:
            self._epoch_arrivals += 1
            self._schedule_next_arrival()

    def _depart(self) -> None:
        if self.positions:
            ids = sorted(self.positions)
            uid = int(self.rng.choice(ids))
            del self.positions[uid]
            del self.assignment[uid]
            self._epoch_departures += 1
        self._schedule_next_departure()

    # ------------------------------------------------------------------
    # epochs

    def run_epoch(self) -> EpochStats:
        """Advance one epoch and reconfigure at the boundary."""
        from ..net.metrics import jain_fairness

        self.queue.run_until(self.queue.now + self.epoch_duration)
        reassignments = 0
        scenario = self._scenario()
        if self.policy == "wolt" and scenario.n_users > 0:
            previous = self._assignment_vector(scenario)
            result = solve_wolt(scenario)
            for pos, uid in enumerate(scenario.user_ids):
                new_j = int(result.assignment[pos])
                if previous[pos] != UNASSIGNED and previous[pos] != new_j:
                    reassignments += 1
                self.assignment[int(uid)] = new_j
        if scenario.n_users > 0:
            report = evaluate(scenario, self._assignment_vector(scenario),
                              require_complete=True,
                              plc_mode=self.plc_mode)
            aggregate = report.aggregate
            fairness = jain_fairness(report.user_throughputs)
        else:
            aggregate, fairness = 0.0, 0.0
        stats = EpochStats(epoch=len(self.history) + 1,
                           n_users=self.n_users,
                           arrivals=self._epoch_arrivals,
                           departures=self._epoch_departures,
                           reassignments=reassignments,
                           aggregate_throughput=aggregate,
                           jain_fairness=fairness)
        self.history.append(stats)
        self._epoch_arrivals = 0
        self._epoch_departures = 0
        return stats

    def run(self, n_epochs: int) -> List[EpochStats]:
        """Run ``n_epochs`` epochs and return their statistics."""
        if n_epochs < 1:
            raise ValueError("n_epochs must be positive")
        return [self.run_epoch() for _ in range(n_epochs)]
