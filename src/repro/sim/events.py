"""A small deterministic discrete-event simulation kernel.

The online evaluation of WOLT (Fig. 6b/6c) advances a network through
user arrival/departure events and epoch-boundary reconfigurations.  This
kernel provides the usual DES primitives: a monotonic clock, a priority
event queue with stable FIFO ordering for simultaneous events, and
cancellable handles.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List

__all__ = ["EventHandle", "EventQueue"]


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled event; cancellable until it fires.

    Attributes:
        time: absolute simulation time the event fires at.
        callback: zero-argument callable invoked at fire time.
    """

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], Any]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True


class EventQueue:
    """Monotonic-clock event queue.

    Events scheduled for the same instant fire in scheduling (FIFO)
    order, which keeps simulations reproducible.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.handle.cancelled)

    def schedule_at(self, time: float,
                    callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past "
                             f"({time} < {self._now})")
        handle = EventHandle(time, callback)
        heapq.heappush(self._heap,
                       _QueueEntry(time, next(self._counter), handle))
        return handle

    def schedule_in(self, delay: float,
                    callback: Callable[[], Any]) -> EventHandle:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.handle.cancelled:
                continue
            self._now = entry.time
            entry.handle.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Fire every event with time <= ``end_time``; clock ends there."""
        if end_time < self._now:
            raise ValueError("end_time precedes the current time")
        while self._heap:
            entry = self._heap[0]
            if entry.handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if entry.time > end_time:
                break
            heapq.heappop(self._heap)
            self._now = entry.time
            entry.handle.callback()
        self._now = end_time

    def run(self) -> None:
        """Fire every pending event."""
        while self.step():
            pass
