"""Failure injection: extenders die and recover under live traffic.

PLC extenders are consumer devices on office power strips — they get
unplugged, brown out, and reboot.  This module injects extender
failures into a running association and measures how each policy
recovers:

* a failed extender's PLC link and WiFi cell vanish
  (:func:`fail_extenders` masks the scenario);
* orphaned users must re-associate — WOLT re-solves globally, RSSI
  clients fall back to the strongest surviving extender, a "sticky"
  policy strands them (models clients that keep probing a dead BSS);
* :class:`FailureSimulation` drives epochs of Bernoulli fail/recover
  dynamics and records throughput and orphan counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.baselines import rssi_assignment
from ..core.problem import Scenario, UNASSIGNED
from ..core.wolt import solve_wolt
from ..net.engine import evaluate

__all__ = ["fail_extenders", "reassociate_orphans", "FailureEpoch",
           "FailureSimulation"]


def fail_extenders(scenario: Scenario,
                   failed: Sequence[int],
                   allow_all_failed: bool = False) -> Scenario:
    """A scenario with the given extenders dead.

    Dead extenders keep their column (indices stay stable) but offer
    zero WiFi rate (nobody can associate) and zero PLC rate.

    Killing *every* extender produces a scenario no solver can place a
    single user in — almost always a caller bug (a mis-built failure
    schedule), so it raises unless ``allow_all_failed`` explicitly
    opts into modelling a total blackout.
    """
    failed_idx = np.asarray(list(failed), dtype=int)
    if failed_idx.size and (failed_idx.min() < 0
                            or failed_idx.max() >= scenario.n_extenders):
        raise ValueError("failed extender index out of range")
    if (not allow_all_failed and failed_idx.size
            and np.unique(failed_idx).size >= scenario.n_extenders):
        raise ValueError(
            f"all {scenario.n_extenders} extenders would be dead — no "
            "user can associate anywhere; pass allow_all_failed=True "
            "to model a total blackout deliberately")
    wifi = scenario.wifi_rates.copy()
    plc = scenario.plc_rates.copy()
    wifi[:, failed_idx] = 0.0
    plc[failed_idx] = 0.0
    return Scenario(wifi_rates=wifi, plc_rates=plc,
                    capacities=scenario.capacities,
                    user_ids=scenario.user_ids)


def reassociate_orphans(scenario: Scenario,
                        assignment: Sequence[int]) -> np.ndarray:
    """Move users off dead extenders onto their strongest survivor.

    Users whose current extender is unreachable (rate 0, e.g. after
    :func:`fail_extenders`) re-associate RSSI-style; everyone else
    stays put.  Users who hear no survivor are left UNASSIGNED
    (offline).
    """
    assign = np.array(assignment, dtype=int)
    for user in range(scenario.n_users):
        j = assign[user]
        if j != UNASSIGNED and scenario.wifi_rates[user, j] > 0:
            continue
        reachable = scenario.reachable(user)
        if reachable.size == 0:
            assign[user] = UNASSIGNED
        else:
            assign[user] = int(reachable[np.argmax(
                scenario.wifi_rates[user, reachable])])
    return assign


@dataclass(frozen=True)
class FailureEpoch:
    """Measurements from one failure-injection epoch.

    Attributes:
        epoch: 1-based index.
        failed_extenders: indices dead during the epoch.
        orphaned_users: users whose extender died this epoch.
        offline_users: users no surviving extender can reach.
        aggregate_throughput: network throughput after recovery.
    """

    epoch: int
    failed_extenders: Tuple[int, ...] = ()
    orphaned_users: int = 0
    offline_users: int = 0
    aggregate_throughput: float = 0.0  # woltlint: disable=W005 — established result API; value is Mbps


class FailureSimulation:
    """Bernoulli extender fail/recover dynamics under a fixed population.

    Args:
        scenario: the healthy network (users fixed; no churn, isolating
            the failure effect).
        policy: ``"wolt"`` (global re-solve each epoch) or ``"rssi"``
            (only orphans move, to their strongest survivor).
        rng: random generator.
        fail_prob: per-epoch probability a healthy extender fails.
        recover_prob: per-epoch probability a failed extender recovers.
        plc_mode: PLC sharing law for scoring.
    """

    def __init__(self, scenario: Scenario, policy: str,
                 rng: np.random.Generator,
                 fail_prob: float = 0.1,
                 recover_prob: float = 0.5,
                 plc_mode: str = "redistribute") -> None:
        if policy not in ("wolt", "rssi"):
            raise ValueError("policy must be 'wolt' or 'rssi'")
        if not 0 <= fail_prob <= 1 or not 0 <= recover_prob <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        self.healthy = scenario
        self.policy = policy
        self.rng = rng
        self.fail_prob = fail_prob
        self.recover_prob = recover_prob
        self.plc_mode = plc_mode
        self.down = np.zeros(scenario.n_extenders, dtype=bool)
        self.assignment = rssi_assignment(scenario)
        self.history: List[FailureEpoch] = []

    def run_epoch(self) -> FailureEpoch:
        """Fail/recover extenders, recover the association, measure."""
        flips_down = self.rng.random(self.healthy.n_extenders) \
            < self.fail_prob
        flips_up = self.rng.random(self.healthy.n_extenders) \
            < self.recover_prob
        self.down = (self.down & ~flips_up) | (~self.down & flips_down)
        # Never kill the whole network: keep at least one extender up.
        if self.down.all():
            self.down[int(self.rng.integers(self.down.size))] = False
        live = fail_extenders(self.healthy, np.flatnonzero(self.down))
        orphaned = int(np.sum([
            self.assignment[u] != UNASSIGNED
            and live.wifi_rates[u, self.assignment[u]] <= 0
            for u in range(live.n_users)]))
        if self.policy == "wolt":
            # Users who hear nothing stay offline; WOLT solves the rest.
            reachable = np.array([live.reachable(u).size > 0
                                  for u in range(live.n_users)])
            assignment = np.full(live.n_users, UNASSIGNED, dtype=int)
            if reachable.any():
                sub = live.subset_users(np.flatnonzero(reachable))
                solved = solve_wolt(sub, plc_mode=self.plc_mode)
                assignment[np.flatnonzero(reachable)] = solved.assignment
            self.assignment = assignment
        else:
            self.assignment = reassociate_orphans(live, self.assignment)
        offline = int(np.sum(self.assignment == UNASSIGNED))
        report = evaluate(live, self.assignment, plc_mode=self.plc_mode)
        stats = FailureEpoch(
            epoch=len(self.history) + 1,
            failed_extenders=tuple(np.flatnonzero(self.down).tolist()),
            orphaned_users=orphaned,
            offline_users=offline,
            aggregate_throughput=report.aggregate)
        self.history.append(stats)
        return stats

    def run(self, n_epochs: int) -> List[FailureEpoch]:
        """Run ``n_epochs`` failure epochs."""
        if n_epochs < 1:
            raise ValueError("n_epochs must be positive")
        return [self.run_epoch() for _ in range(n_epochs)]
