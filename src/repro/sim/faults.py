"""Seeded fault injection for the control plane and the trial runner.

The paper's §V-A deployment story assumes a clean control plane: every
scan report reaches the Central Controller, every directive lands, and
every handoff completes.  Real enterprise PLC deployments are messier —
extenders brown out, clients miss directives, and 802.11k/v-style
steering must tolerate clients that ignore transition requests.  This
module makes that degradation injectable and *reproducible*:

* :class:`FaultModel` — the fault rates (per-message drop
  probabilities, handoff-failure probability, stale-rate-estimate
  noise, extender brown-out schedule) plus the retry budget;
* :class:`FaultyTransport` — a seeded :class:`repro.core.Transport`
  that applies the model to every control-plane message;
* :func:`run_faulty_control_plane` — admission + epoch reconfiguration
  of one scenario through a lossy control plane, returning the ground
  truth association (graceful degradation included);
* :class:`CrashSchedule` / :data:`InjectedCrash` — a picklable fault
  hook that crashes selected Monte-Carlo trials inside
  :func:`repro.sim.runner.run_trials` workers, exercising its
  retry-and-:class:`~repro.sim.runner.TrialFailure` path.

Determinism contract: a :class:`FaultyTransport` consumes its generator
in message order, so for a fixed seed and a fixed call sequence every
fault lands identically — including across ``run_trials`` worker
counts (each trial carries its own SeedSequence child).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.controller import (AssociationDirective, CentralController,
                               ControllerStats, ScanReport, Transport)
from ..core.problem import Scenario, UNASSIGNED
from .failures import fail_extenders, reassociate_orphans

__all__ = ["FaultModel", "FaultyTransport", "ControlPlaneOutcome",
           "run_faulty_control_plane", "InjectedCrash", "CrashSchedule",
           "SleepSchedule"]


@dataclass(frozen=True)
class FaultModel:
    """Fault rates for one control-plane emulation.

    Attributes:
        report_drop_prob: probability a client's scan report is lost in
            transit (the CC never learns the client's rates).
        directive_drop_prob: probability one directive delivery attempt
            is lost (the CC retries up to ``max_retries`` times).
        handoff_failure_prob: probability a client ignores a delivered
            re-association directive (an 802.11v BTM-style refusal);
            the client stays on its previous extender.
        rate_noise_fraction: relative std-dev of log-normal noise on
            the rates the CC *receives* (stale/quantized estimates);
            zero entries stay zero, so reachability is preserved.
        brownout_schedule: epoch -> extender indices browned out during
            that epoch (power-strip brown-outs; see
            :func:`repro.sim.failures.fail_extenders`).
        max_retries: directive retransmissions after a lost send.
        backoff_base_s: base of the exponential backoff wait
            (retransmission ``k`` waits ``backoff_base_s * 2**k``).
    """

    report_drop_prob: float = 0.0
    directive_drop_prob: float = 0.0
    handoff_failure_prob: float = 0.0
    rate_noise_fraction: float = 0.0
    brownout_schedule: Mapping[int, Tuple[int, ...]] = \
        field(default_factory=dict)
    max_retries: int = 2
    backoff_base_s: float = 0.1

    def __post_init__(self) -> None:
        for name in ("report_drop_prob", "directive_drop_prob",
                     "handoff_failure_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.rate_noise_fraction < 0:
            raise ValueError("rate_noise_fraction must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        schedule: Dict[int, Tuple[int, ...]] = {}
        for epoch, extenders in dict(self.brownout_schedule).items():
            schedule[int(epoch)] = tuple(int(j) for j in extenders)
        object.__setattr__(self, "brownout_schedule", schedule)

    def brownouts_at(self, epoch: int) -> Tuple[int, ...]:
        """Extenders browned out during ``epoch`` (0-based)."""
        return self.brownout_schedule.get(epoch, ())


class FaultyTransport(Transport):
    """A seeded lossy control-plane transport.

    Every hook consumes the generator in call order, so a fixed seed
    and call sequence reproduce the exact same fault pattern.

    Args:
        model: the fault rates.
        rng: dedicated generator (spawn a SeedSequence child for it;
            sharing a stream with other components couples them).
    """

    def __init__(self, model: FaultModel,
                 rng: np.random.Generator) -> None:
        self.model = model
        self.rng = rng
        self.max_retries = model.max_retries

    def observe_report(self, report: ScanReport) -> Optional[ScanReport]:
        if self.rng.random() < self.model.report_drop_prob:
            return None
        rates = np.asarray(report.wifi_rates, dtype=float)
        noise = self.model.rate_noise_fraction
        if noise > 0:
            sigma = math.sqrt(math.log1p(noise ** 2))
            factors = self.rng.lognormal(-sigma ** 2 / 2, sigma,
                                         rates.shape)
            rates = np.where(rates > 0, rates * factors, 0.0)
        return ScanReport(report.user_id, rates)

    def deliver_directive(self, directive: AssociationDirective) -> bool:
        return bool(self.rng.random() >= self.model.directive_drop_prob)

    def handoff_succeeds(self, directive: AssociationDirective) -> bool:
        return bool(self.rng.random()
                    >= self.model.handoff_failure_prob)

    def backoff_s(self, attempt: int) -> float:
        return self.model.backoff_base_s * (2.0 ** attempt)


@dataclass(frozen=True)
class ControlPlaneOutcome:
    """Result of one lossy control-plane emulation.

    Attributes:
        assignment: ground-truth per-user extender indices after the
            last epoch (:data:`~repro.core.problem.UNASSIGNED` for
            users no live extender reaches).
        live: the scenario as of the last epoch (brown-outs applied);
            evaluate the assignment against this.
        stats: the controller's control-plane counters.
        offline_users: users left UNASSIGNED.
    """

    assignment: np.ndarray
    live: Scenario
    stats: ControllerStats
    offline_users: int


def run_faulty_control_plane(scenario: Scenario, policy: str,
                             model: FaultModel,
                             rng: np.random.Generator,
                             n_epochs: int = 1) -> ControlPlaneOutcome:
    """Emulate admission and reconfiguration over a lossy control plane.

    Every epoch, each client scans the live network (brown-outs from
    the model's schedule applied) and reports to the CC through a
    :class:`FaultyTransport`; WOLT then runs its epoch-boundary
    :meth:`~repro.core.CentralController.reconfigure`.  Degradation is
    graceful at every step:

    * a dropped scan report leaves the client camped on its strongest
      live extender (the BSS it used to look for the CC);
    * a dropped directive (after bounded retry with exponential
      backoff) or a failed handoff leaves the client on its previous
      extender;
    * a client whose extender browned out falls back to its strongest
      surviving extender (:func:`repro.sim.failures.reassociate_orphans`)
      even when the CC never heard about it.

    Args:
        scenario: the healthy ground-truth network.
        policy: ``"wolt"``, ``"greedy"`` or ``"rssi"``.
        model: fault rates and retry budget.
        rng: dedicated generator for the transport's fault draws.
        n_epochs: scan/reconfigure rounds to run.

    Returns:
        The :class:`ControlPlaneOutcome` after the last epoch.
    """
    if n_epochs < 1:
        raise ValueError("n_epochs must be positive")
    transport = FaultyTransport(model, rng)
    cc = CentralController(scenario.plc_rates, policy=policy,
                           transport=transport)
    live = scenario
    for epoch in range(n_epochs):
        # A schedule may legitimately brown out every extender for an
        # epoch (a building-wide power event): clients simply go
        # offline until something recovers.
        live = fail_extenders(scenario, model.brownouts_at(epoch),
                              allow_all_failed=True)
        for user in range(live.n_users):
            if live.reachable(user).size == 0:
                continue  # hears nothing this epoch; cannot report
            cc.receive_scan_report(
                ScanReport(user, live.wifi_rates[user]))
        if policy == "wolt":
            cc.reconfigure()
    known = cc.associations
    assignment = np.empty(live.n_users, dtype=int)
    for user in range(live.n_users):
        if user in known:
            assignment[user] = known[user]
        else:
            # The CC never heard this client; it camps on its
            # strongest live extender (or stays offline).
            reachable = live.reachable(user)
            assignment[user] = (UNASSIGNED if reachable.size == 0 else
                                int(reachable[np.argmax(
                                    live.wifi_rates[user, reachable])]))
    # Clients cannot remain on a browned-out extender, whatever the CC
    # believes: physics moves them to their strongest survivor.
    assignment = reassociate_orphans(live, assignment)
    return ControlPlaneOutcome(
        assignment=assignment, live=live, stats=cc.stats,
        offline_users=int(np.sum(assignment == UNASSIGNED)))


class InjectedCrash(RuntimeError):
    """Raised by :class:`CrashSchedule` to simulate a worker crash."""


@dataclass(frozen=True)
class CrashSchedule:
    """Picklable trial-crash / trial-hang fault hook for ``run_trials``.

    ``crashes`` maps a trial index to the number of attempts that must
    crash before the trial is allowed to succeed; the schedule raises
    :class:`InjectedCrash` on those attempts.  Passing it as
    ``run_trials(..., fault_hook=CrashSchedule({1: 3}), max_retries=2)``
    exhausts trial 1's retry budget and yields a
    :class:`~repro.sim.runner.TrialFailure` for it while every other
    trial completes normally.

    ``hangs`` maps a trial index to the number of attempts that must
    *hard-hang* (sleep ``hang_s`` seconds, emulating a wedged worker —
    a deadlocked solver, a stuck I/O syscall) before the trial is
    allowed to proceed.  Pair it with ``run_trials(...,
    timeout_s=...)`` to exercise the supervisor's deadline reaping: the
    hung worker is killed and the trial recorded as a timeout
    :class:`~repro.sim.runner.TrialFailure`.
    """

    crashes: Mapping[int, int]
    hangs: Mapping[int, int] = field(default_factory=dict)
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        normalized = {int(t): int(n) for t, n in
                      dict(self.crashes).items()}
        if any(n < 0 for n in normalized.values()):
            raise ValueError("crash counts must be non-negative")
        object.__setattr__(self, "crashes", normalized)
        hangs = {int(t): int(n) for t, n in dict(self.hangs).items()}
        if any(n < 0 for n in hangs.values()):
            raise ValueError("hang counts must be non-negative")
        object.__setattr__(self, "hangs", hangs)
        if self.hang_s < 0:
            raise ValueError("hang_s must be non-negative")

    def __call__(self, trial_index: int, attempt: int) -> None:
        if attempt < self.crashes.get(trial_index, 0):
            raise InjectedCrash(
                f"injected crash: trial {trial_index}, "
                f"attempt {attempt}")
        if attempt < self.hangs.get(trial_index, 0):
            time.sleep(self.hang_s)


@dataclass(frozen=True)
class SleepSchedule:
    """Picklable per-trial latency hook for ``run_trials`` (no faults).

    ``delays`` maps a trial index to a sleep (seconds) injected at the
    start of every attempt of that trial.  Unlike
    :class:`CrashSchedule` nothing fails — the hook only skews trial
    *durations*, which is exactly what the dispatch tests need to force
    chunks to complete out of submission order and assert that
    :func:`repro.sim.runner.run_trials` still re-emits results in trial
    order.
    """

    delays: Mapping[int, float]

    def __post_init__(self) -> None:
        normalized = {int(t): float(s) for t, s in
                      dict(self.delays).items()}
        if any(s < 0 for s in normalized.values()):
            raise ValueError("delays must be non-negative")
        object.__setattr__(self, "delays", normalized)

    def __call__(self, trial_index: int, attempt: int) -> None:
        delay = self.delays.get(trial_index, 0.0)
        if delay > 0:
            time.sleep(delay)
