"""User mobility: random-waypoint motion over the enterprise floor.

The paper's online evaluation (Fig. 6b/6c) churns the population via
arrivals and departures but keeps users stationary.  Real enterprise
users *walk* — and every few metres of movement changes ``r_ij`` enough
to invalidate the association.  This module adds the standard
random-waypoint mobility model and a simulation loop in which WOLT (or
a baseline) re-optimizes each epoch while users move, quantifying the
handoff load mobility induces on top of churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.problem import Scenario, UNASSIGNED
from ..core.wolt import solve_wolt
from ..core.baselines import rssi_assignment
from ..net.engine import evaluate
from ..net.topology import FloorPlan, build_scenario
from ..wifi.phy import WifiPhy

__all__ = ["RandomWaypoint", "MobilityEpoch", "MobilitySimulation"]


class RandomWaypoint:
    """Random-waypoint motion of one user on a rectangular floor.

    The user picks a uniform destination, walks there at a uniform
    speed from ``[v_min, v_max]``, pauses, and repeats.

    Args:
        position: initial (x, y) in metres.
        width_m / height_m: floor bounds.
        rng: random generator.
        v_min / v_max: walking speed range (m per time unit).
        pause_time: pause at each waypoint (time units).
    """

    def __init__(self, position: "Union[Sequence[float], np.ndarray]",
                 width_m: float, height_m: float,
                 rng: np.random.Generator,
                 v_min: float = 0.5, v_max: float = 1.5,
                 pause_time: float = 2.0) -> None:
        if not 0 < v_min <= v_max:
            raise ValueError("need 0 < v_min <= v_max")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.position = np.asarray(position, dtype=float).copy()
        self.width_m = width_m
        self.height_m = height_m
        self.rng = rng
        self.v_min, self.v_max = v_min, v_max
        self.pause_time = pause_time
        self._target = self.position.copy()
        self._speed = 0.0
        self._pause_left = 0.0
        self._pick_waypoint()

    def _pick_waypoint(self) -> None:
        self._target = np.array([self.rng.uniform(0, self.width_m),
                                 self.rng.uniform(0, self.height_m)])
        self._speed = float(self.rng.uniform(self.v_min, self.v_max))

    def advance(self, dt: float) -> np.ndarray:
        """Move for ``dt`` time units; returns the new position."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        remaining = dt
        while remaining > 1e-12:
            if self._pause_left > 0:
                waited = min(self._pause_left, remaining)
                self._pause_left -= waited
                remaining -= waited
                continue
            to_target = self._target - self.position
            distance = float(np.hypot(*to_target))
            if distance < 1e-9:
                self._pause_left = self.pause_time
                self._pick_waypoint()
                continue
            step = self._speed * remaining
            if step >= distance:
                self.position = self._target.copy()
                remaining -= distance / self._speed
                self._pause_left = self.pause_time
                self._pick_waypoint()
            else:
                self.position = self.position + to_target / distance * step
                remaining = 0.0
        return self.position


@dataclass(frozen=True)
class MobilityEpoch:
    """Per-epoch measurements of the mobility simulation.

    Attributes:
        epoch: 1-based index.
        aggregate_throughput: network throughput after reconfiguration.
        handoffs: users whose extender changed at the boundary.
        mean_displacement_m: mean distance users moved this epoch.
    """

    epoch: int
    aggregate_throughput: float  # woltlint: disable=W005 — established result API; value is Mbps
    handoffs: int
    mean_displacement_m: float


class MobilitySimulation:
    """WOLT (or RSSI) under random-waypoint mobility.

    Users walk continuously; at each epoch boundary the controller
    re-runs its policy on the fresh rate matrix.

    Args:
        plan: floor with extender placements.
        n_users: stationary population size (no churn — isolates the
            effect of mobility).
        policy: ``"wolt"`` or ``"rssi"`` (RSSI = always strongest,
            re-evaluated each epoch, the "mobile client default").
        rng: random generator.
        epoch_duration: time units between reconfigurations.
        phy: WiFi PHY for the rate matrix.
        plc_mode: PLC sharing law for scoring.
    """

    def __init__(self, plan: FloorPlan, n_users: int, policy: str,
                 rng: np.random.Generator,
                 epoch_duration: float = 10.0,
                 phy: Optional[WifiPhy] = None,
                 plc_mode: str = "redistribute",
                 **waypoint_kwargs) -> None:
        if policy not in ("wolt", "rssi"):
            raise ValueError("policy must be 'wolt' or 'rssi'")
        if n_users < 1:
            raise ValueError("n_users must be positive")
        self.plan = plan
        self.policy = policy
        self.rng = rng
        self.epoch_duration = epoch_duration
        self.phy = phy or WifiPhy()
        self.plc_mode = plc_mode
        self.walkers = [
            RandomWaypoint(
                position=[rng.uniform(0, plan.width_m),
                          rng.uniform(0, plan.height_m)],
                width_m=plan.width_m, height_m=plan.height_m,
                rng=rng, **waypoint_kwargs)
            for _ in range(n_users)]
        self._assignment = np.full(n_users, UNASSIGNED, dtype=int)
        self.history: List[MobilityEpoch] = []

    def _scenario(self) -> Scenario:
        user_xy = np.vstack([w.position for w in self.walkers])
        return build_scenario(self.plan.with_users(user_xy),
                              phy=self.phy)

    def run_epoch(self) -> MobilityEpoch:
        """Walk one epoch, reconfigure, and record measurements."""
        before_xy = np.vstack([w.position for w in self.walkers])
        for walker in self.walkers:
            walker.advance(self.epoch_duration)
        after_xy = np.vstack([w.position for w in self.walkers])
        displacement = float(np.mean(
            np.hypot(*(after_xy - before_xy).T)))
        scenario = self._scenario()
        if self.policy == "wolt":
            new_assignment = solve_wolt(
                scenario, plc_mode=self.plc_mode).assignment
        else:
            new_assignment = rssi_assignment(scenario)
        handoffs = int(np.sum(
            (self._assignment != UNASSIGNED)
            & (new_assignment != self._assignment)))
        self._assignment = new_assignment
        aggregate = evaluate(scenario, new_assignment,
                             plc_mode=self.plc_mode,
                             require_complete=True).aggregate
        stats = MobilityEpoch(epoch=len(self.history) + 1,
                              aggregate_throughput=aggregate,
                              handoffs=handoffs,
                              mean_displacement_m=displacement)
        self.history.append(stats)
        return stats

    def run(self, n_epochs: int) -> List[MobilityEpoch]:
        """Run ``n_epochs`` epochs."""
        if n_epochs < 1:
            raise ValueError("n_epochs must be positive")
        return [self.run_epoch() for _ in range(n_epochs)]
