"""Trial runners for the large-scale simulation experiments (Fig. 6).

These helpers wrap topology sampling, policy execution, and metric
collection behind seeded, reproducible entry points used by the
benchmarks and examples.

Durability (see ``docs/ROBUSTNESS.md``): ``run_trials`` can journal
every completed trial to a crash-consistent
:class:`~repro.sim.checkpoint.TrialStore`, resume an interrupted sweep
bit-identically, enforce per-trial deadlines with hung-worker reaping,
and convert pool crashes and SIGINT/SIGTERM into explicit partial
results instead of run loss.

The chunked warm-pool machinery itself (supervision, pool leases,
deadline reaping, broken-pool quarantine) lives in
:mod:`repro.sim.dispatch`; this module supplies the trial-shaped work
(specs, solvers, checkpoint codec) and is dispatch's canonical client.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..core.baselines import (greedy_assignment, random_assignment,
                              rssi_assignment)
from ..core.problem import Scenario
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.metrics import jain_fairness
from ..net.topology import FloorPlan, enterprise_floor
from ..plc.channel import random_building
from ..wifi.phy import WifiPhy
from .checkpoint import TrialStore, fingerprint
from .dispatch import (POOL_ERROR_TYPE, TIMEOUT_ERROR_TYPE,
                       InterruptState, SignalGuard, WorkFailure,
                       dispatch_chunked, shutdown_warm_pools)
from .dynamics import EpochStats, OnlineSimulation

__all__ = ["PolicyOutcome", "TrialResult", "TrialFailure",
           "TrialRunResult", "run_policy", "run_trials",
           "run_online_comparison", "sample_floor_plan",
           "shutdown_warm_pools"]

#: The association policies known to the runner.
POLICY_NAMES = ("wolt", "greedy", "rssi", "random")

#: A fault hook called as ``hook(trial_index, attempt)`` at the start of
#: every trial attempt; it may raise to simulate a worker crash (see
#: :class:`repro.sim.faults.CrashSchedule`).  Must be picklable when
#: ``workers`` is used.
FaultHook = Callable[[int, int], None]


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's result on one scenario.

    Attributes:
        policy: policy name.
        aggregate_throughput: total end-to-end throughput (Mbps).
        jain_fairness: Jain index over per-user throughputs.
        user_throughputs: per-user throughputs (Mbps), scenario order.
        assignment: the chosen per-user extender indices.
    """

    policy: str
    aggregate_throughput: float  # woltlint: disable=W005 — established result API; value is Mbps
    jain_fairness: float
    user_throughputs: np.ndarray
    assignment: np.ndarray


@dataclass(frozen=True)
class TrialResult:
    """All policies' outcomes on one sampled scenario."""

    scenario: Scenario
    outcomes: Dict[str, PolicyOutcome]

    def aggregate(self, policy: str) -> float:
        return self.outcomes[policy].aggregate_throughput


@dataclass(frozen=True)
class TrialFailure:
    """A trial whose every attempt crashed (retry budget exhausted).

    Returned in place of a :class:`TrialResult` when ``run_trials`` is
    given ``max_retries`` (or runs in durable mode) — the run's
    surviving trials are preserved instead of one worker exception
    destroying all of them.

    Attributes:
        trial_index: 0-based position of the trial in the run.
        attempts: attempts made (``max_retries + 1``).
        error_type: class name of the last exception, or
            :data:`TIMEOUT_ERROR_TYPE` / :data:`POOL_ERROR_TYPE` for
            trials reaped by the supervisor.
        error: ``repr`` of the last exception (or a supervisor note).
    """

    trial_index: int
    attempts: int
    error_type: str
    error: str


class TrialRunResult(List[Union[TrialResult, TrialFailure]]):
    """The list of per-trial results plus run-level durability markers.

    Behaves exactly like the plain list older callers expect, with
    three extra attributes:

    Attributes:
        interrupted: ``None`` for a run that finished, else the name of
            the signal (``"SIGINT"``/``"SIGTERM"``) that stopped it; an
            interrupted run returns only the trials completed so far.
        resumed: number of trials merged from the checkpoint instead of
            recomputed.
        checkpoint: the journal path, when checkpointing was active.
    """

    def __init__(self,
                 items: Sequence[Union[TrialResult, TrialFailure]] = (),
                 interrupted: Optional[str] = None, resumed: int = 0,
                 checkpoint: Optional[str] = None) -> None:
        super().__init__(items)
        self.interrupted = interrupted
        self.resumed = resumed
        self.checkpoint = checkpoint


def run_policy(scenario: Scenario, policy: str,
               rng: Optional[np.random.Generator] = None,
               plc_mode: str = "redistribute") -> PolicyOutcome:
    """Run one association policy on a scenario and measure it.

    Policies always *decide* against the physically measured network
    behaviour (the redistributing testbed law — that is what a deployed
    controller observes through iperf); ``plc_mode`` selects the law the
    outcome is *evaluated* under, so experiments can score policies with
    the paper's Problem-1 model (``"fixed"``) the way the paper's own
    simulator does.

    Args:
        scenario: the network snapshot.
        policy: one of ``wolt``, ``greedy``, ``rssi``, ``random``.
        rng: generator for the stochastic pieces (random policy, greedy
            arrival order shuffling); deterministic policies ignore it.
        plc_mode: PLC sharing law used for scoring.
    """
    # woltlint: disable=W010 — API-level default for ad-hoc direct
    # calls only; the worker path always passes a generator built from
    # the trial's pre-spawned policy SeedSequence child.
    rng = rng or np.random.default_rng(0)
    if policy == "wolt":
        result = solve_wolt(scenario, plc_mode=plc_mode)
        assignment = result.assignment
        report = result.report
    else:
        if policy == "greedy":
            order = rng.permutation(scenario.n_users)
            assignment = greedy_assignment(scenario, arrival_order=order)
        elif policy == "rssi":
            assignment = rssi_assignment(scenario)
        elif policy == "random":
            assignment = random_assignment(scenario, rng)
        else:
            raise ValueError(f"unknown policy {policy!r}")
        report = evaluate(scenario, assignment, require_complete=True,
                          plc_mode=plc_mode)
    return PolicyOutcome(policy=policy,
                         aggregate_throughput=report.aggregate,
                         jain_fairness=jain_fairness(
                             report.user_throughputs),
                         user_throughputs=report.user_throughputs,
                         assignment=np.asarray(assignment))


def sample_floor_plan(n_extenders: int, rng: np.random.Generator,
                      width_m: float = 100.0,
                      height_m: float = 100.0) -> FloorPlan:
    """Sample extender placements and PLC rates for an empty floor."""
    building = random_building(n_extenders, rng)
    outlets = building.outlets
    chosen = [outlets[k] for k in rng.choice(len(outlets),
                                             size=n_extenders,
                                             replace=False)]
    return FloorPlan(
        width_m=width_m, height_m=height_m,
        extender_xy=np.column_stack([rng.uniform(0, width_m, n_extenders),
                                     rng.uniform(0, height_m,
                                                 n_extenders)]),
        user_xy=np.empty((0, 2)),
        plc_rates=building.rates(chosen))


@dataclass(frozen=True)
class _RunConfig:
    """The run-level trial parameters every trial of a sweep shares.

    Splitting this static block away from the per-trial seeds is what
    makes chunked dispatch cheap: the config is pickled once per
    *chunk* (or not at all, when a fork-started pool inherited it
    through :data:`_SHARED_CONFIGS`) instead of once per trial, and the
    per-trial payload shrinks to a trial index plus its SeedSequence
    children.
    """

    n_extenders: int
    n_users: int
    policies: Tuple[str, ...]
    width_m: float
    height_m: float
    phy: Optional[WifiPhy]
    plc_mode: str
    # woltlint: disable=W013 — operational: a fault hook injects faults
    # that the retry machinery must converge through to bit-identical
    # results (enforced by the fault-equivalence tests), so it must not
    # shift the run fingerprint.
    fault_hook: Optional[FaultHook]
    # woltlint: disable=W013 — operational retry budget; changing it
    # cannot change converged trial results, only whether a fault run
    # fails fast.
    max_retries: int


@dataclass(frozen=True)
class _TrialSpec:
    """The per-trial half of a payload: index plus seed material.

    ``scenario_seq`` seeds the floor sampling; ``policy_seqs`` holds one
    pre-spawned SeedSequence child *per policy name* (keyed by identity,
    not by position in the ``policies`` tuple), so a policy's stream —
    and therefore its outcome — never depends on which other policies
    run alongside it, on execution order, or on retry attempts.

    ``index`` is the supervisor-facing contract: every work spec the
    chunked dispatch layer handles exposes its 0-based position under
    this name (see :class:`WorkSpec`).
    """

    # woltlint: disable=W013 — derived, not configuration: the index
    # and both SeedSequence children are pure functions of (seed,
    # n_trials, policies), which the fingerprint already covers.
    index: int
    # woltlint: disable=W013 — derived from the fingerprinted seed.
    scenario_seq: np.random.SeedSequence
    # woltlint: disable=W013 — derived from the fingerprinted seed.
    policy_seqs: Dict[str, np.random.SeedSequence]

    def payload(self, config: _RunConfig) -> "_TrialPayload":
        return _TrialPayload(
            trial_index=self.index,
            scenario_seq=self.scenario_seq,
            policy_seqs=self.policy_seqs,
            n_extenders=config.n_extenders, n_users=config.n_users,
            policies=config.policies, width_m=config.width_m,
            height_m=config.height_m, phy=config.phy,
            plc_mode=config.plc_mode, fault_hook=config.fault_hook,
            max_retries=config.max_retries)


@dataclass(frozen=True)
class _TrialPayload:
    """Self-contained description of one trial (config + seeds).

    The in-process unit of work: the serial path and the worker-side
    chunk loop both execute these; only the (config, spec) split above
    crosses the process boundary.
    """

    trial_index: int
    scenario_seq: np.random.SeedSequence
    policy_seqs: Dict[str, np.random.SeedSequence]
    n_extenders: int
    n_users: int
    policies: Tuple[str, ...]
    width_m: float
    height_m: float
    phy: Optional[WifiPhy]
    plc_mode: str
    fault_hook: Optional[FaultHook]
    max_retries: int


def _run_single_trial(payload: _TrialPayload,
                      attempt: int = 0) -> TrialResult:
    """Run one Monte-Carlo trial attempt from its payload.

    Module-level (rather than a closure) so :class:`ProcessPoolExecutor`
    can pickle it; the payload carries the trial's own pre-spawned
    :class:`numpy.random.SeedSequence` children, which make the result
    independent of which worker — or how many workers — execute it, and
    bit-identical across retry attempts.
    """
    if payload.fault_hook is not None:
        payload.fault_hook(payload.trial_index, attempt)
    rng = np.random.default_rng(payload.scenario_seq)
    scenario = enterprise_floor(payload.n_extenders, payload.n_users,
                                rng, width_m=payload.width_m,
                                height_m=payload.height_m,
                                phy=payload.phy)
    outcomes = {}
    for policy in payload.policies:
        policy_rng = np.random.default_rng(payload.policy_seqs[policy])
        outcomes[policy] = run_policy(scenario, policy, policy_rng,
                                      plc_mode=payload.plc_mode)
    return TrialResult(scenario=scenario, outcomes=outcomes)


def _run_trial_guarded(payload: _TrialPayload
                       ) -> Union[TrialResult, TrialFailure]:
    """Run one trial with bounded retries; never raises on trial errors.

    A crashed attempt is retried with the *same* SeedSequence children
    (a clean retry reproduces the original trial bit-identically); when
    the budget is exhausted the trial is returned as an explicit
    :class:`TrialFailure` instead of destroying the whole run.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(payload.max_retries + 1):
        try:
            return _run_single_trial(payload, attempt)
        except Exception as exc:
            last_error = exc
    return TrialFailure(trial_index=payload.trial_index,
                        attempts=payload.max_retries + 1,
                        error_type=type(last_error).__name__,
                        error=repr(last_error))


# ---------------------------------------------------------------------------
# Dispatch adapters: the trial-shaped work handed to repro.sim.dispatch.
#
# One future per *chunk* of trials amortizes the submit/result IPC that
# made the old one-future-per-trial pool lose to serial execution
# (BENCH_engine.json once recorded a 0.90x "speedup"); the generic
# machinery lives in repro.sim.dispatch, and these two module-level
# (picklable) functions are the ``fn(config, spec)`` work units the
# runner ships through it.


def _solve_trial(config: _RunConfig, spec: _TrialSpec) -> TrialResult:
    """Dispatch work unit: run one trial, letting errors propagate."""
    return _run_single_trial(spec.payload(config))


def _solve_trial_guarded(config: _RunConfig, spec: _TrialSpec
                         ) -> Union[TrialResult, TrialFailure]:
    """Dispatch work unit: run one trial with bounded retries."""
    return _run_trial_guarded(spec.payload(config))


# ---------------------------------------------------------------------------
# Checkpoint codec: TrialResult / TrialFailure <-> JSON payloads.
#
# Every float goes through Python's shortest-round-trip repr (what
# json emits), so decode(encode(x)) is bit-identical to x — the basis
# of the resume == cold-run contract.


def _encode_record(result: Union[TrialResult, TrialFailure]
                   ) -> Dict[str, Any]:
    if isinstance(result, TrialFailure):
        return {"type": "failure", "trial_index": result.trial_index,
                "attempts": result.attempts,
                "error_type": result.error_type, "error": result.error}
    scenario = result.scenario
    return {
        "type": "result",
        "scenario": {
            "wifi_rates": scenario.wifi_rates.tolist(),
            "plc_rates": scenario.plc_rates.tolist(),
            "capacities": (None if scenario.capacities is None
                           else scenario.capacities.tolist()),
            "user_ids": (None if scenario.user_ids is None
                         else np.asarray(scenario.user_ids).tolist()),
        },
        "outcomes": [
            {"policy": o.policy,
             "aggregate_throughput": o.aggregate_throughput,
             "jain_fairness": o.jain_fairness,
             "user_throughputs": o.user_throughputs.tolist(),
             "assignment": o.assignment.tolist()}
            for o in result.outcomes.values()
        ],
    }


def _decode_record(payload: Dict[str, Any]
                   ) -> Union[TrialResult, TrialFailure]:
    if payload["type"] == "failure":
        return TrialFailure(trial_index=int(payload["trial_index"]),
                            attempts=int(payload["attempts"]),
                            error_type=payload["error_type"],
                            error=payload["error"])
    raw = payload["scenario"]
    scenario = Scenario(
        wifi_rates=np.asarray(raw["wifi_rates"], dtype=float),
        plc_rates=np.asarray(raw["plc_rates"], dtype=float),
        capacities=(None if raw["capacities"] is None
                    else np.asarray(raw["capacities"], dtype=int)),
        user_ids=(None if raw["user_ids"] is None
                  else np.asarray(raw["user_ids"])))
    outcomes = {}
    for entry in payload["outcomes"]:
        outcomes[entry["policy"]] = PolicyOutcome(
            policy=entry["policy"],
            aggregate_throughput=entry["aggregate_throughput"],
            jain_fairness=entry["jain_fairness"],
            user_throughputs=np.asarray(entry["user_throughputs"],
                                        dtype=float),
            assignment=np.asarray(entry["assignment"], dtype=int))
    return TrialResult(scenario=scenario, outcomes=outcomes)


def _run_fingerprint(n_trials: int, n_extenders: int, n_users: int,
                     policies: Sequence[str], seed: int, width_m: float,
                     height_m: float, phy: Optional[WifiPhy],
                     plc_mode: str) -> Tuple[str, Dict[str, Any]]:
    """The checkpoint fingerprint over the run's scientific parameters.

    Operational knobs (workers, retries, timeouts, fault hooks) are
    deliberately excluded: they never change what a completed trial's
    *result* is, so a sweep may be resumed with a different worker
    count or deadline.
    """
    phy_params: Optional[Dict[str, Any]] = None
    if phy is not None:
        phy_params = asdict(phy)
        phy_params["mcs_table"] = [list(row)
                                   for row in phy_params["mcs_table"]]
    params = {"kind": "run_trials", "n_trials": int(n_trials),
              "n_extenders": int(n_extenders), "n_users": int(n_users),
              "policies": list(policies), "seed": int(seed),
              "width_m": float(width_m), "height_m": float(height_m),
              "phy": phy_params, "plc_mode": plc_mode}
    return fingerprint(params), params


def run_trials(n_trials: int,
               n_extenders: int,
               n_users: int,
               policies: Sequence[str] = ("wolt", "greedy", "rssi"),
               seed: int = 0,
               width_m: float = 100.0,
               height_m: float = 100.0,
               phy: Optional[WifiPhy] = None,
               plc_mode: str = "redistribute",
               workers: Optional[int] = None,
               chunk_size: Optional[int] = None,
               max_retries: Optional[int] = None,
               fault_hook: Optional[FaultHook] = None,
               checkpoint: Optional[Union[str, Path]] = None,
               resume: bool = False,
               timeout_s: Optional[float] = None) -> TrialRunResult:
    """Monte-Carlo policy comparison over random floors (Fig. 6a).

    Each trial samples a fresh enterprise floor (wiring plant, extender
    and user placement) and runs every policy on the same scenario.

    Trials are seeded with per-trial children of
    ``numpy.random.SeedSequence(seed)`` (trial ``t`` gets the ``t``-th
    spawn); each trial additionally pre-spawns one grandchild per
    *policy name*, so every policy owns a stream independent of which
    other policies run alongside it.  Results are therefore
    bit-identical across worker counts, across retry attempts, across
    checkpoint/resume boundaries, and — for any single policy — across
    ``policies`` subsets.

    Durable mode (any of ``checkpoint``/``timeout_s`` set, or
    ``max_retries`` not None) never loses completed work: trial errors
    become :class:`TrialFailure` records, completed trials are
    journaled before the next one starts, and SIGINT/SIGTERM drain
    gracefully instead of destroying the run.

    Args:
        n_trials: number of independent scenarios (paper: 100).
        n_extenders: extenders per floor (paper: 15).
        n_users: users per floor (paper: 36).
        policies: subset of :data:`POLICY_NAMES` to run (no duplicates).
        seed: master seed for the :class:`~numpy.random.SeedSequence`.
        width_m / height_m: floor dimensions (paper: 100 m x 100 m).
        phy: optional WiFi PHY override.
        plc_mode: PLC sharing law used for scoring (the paper's
            simulator corresponds to ``"fixed"``).
        workers: number of worker processes; ``None``, 0, or 1 run
            serially in-process (except that ``timeout_s`` promotes
            ``workers=1`` to a supervised single-worker pool — a
            deadline needs a process boundary to reap across).  Pools
            are kept warm and reused by later ``run_trials`` calls with
            the same worker count (see :func:`shutdown_warm_pools`).
        chunk_size: trials per dispatched chunk.  ``None`` (default)
            sizes chunks automatically (≈ two waves per worker, capped
            at 16) so submit/result IPC is amortized; results are
            always re-emitted in trial order regardless of chunk
            completion order.  ``timeout_s`` forces single-trial chunks
            — the deadline contract is per trial.  Ignored on serial
            runs.
        max_retries: when ``None`` (default), a trial exception
            propagates to the caller unchanged (unless durable mode is
            active, which implies a budget of 0).  When an int, a
            crashed trial is retried up to ``max_retries`` times with
            the same SeedSequence children and, on exhaustion, returned
            as an explicit :class:`TrialFailure` record — surviving
            trials are never lost.
        fault_hook: optional ``hook(trial_index, attempt)`` run at the
            start of every attempt; may raise to inject trial crashes
            (see :class:`repro.sim.faults.CrashSchedule`).  Must be
            picklable when ``workers`` is used.
        checkpoint: journal path.  Every completed trial is appended to
            a crash-consistent :class:`~repro.sim.checkpoint.TrialStore`
            (flushed + fsynced per record) and the journal is compacted
            to a canonical snapshot when the run finishes.
        resume: continue an existing checkpoint: completed trial
            indices are skipped and their stored results merged, making
            the resumed run bit-identical to a cold run with the same
            seed.  A checkpoint written under different scientific
            parameters is rejected with
            :class:`~repro.sim.checkpoint.FingerprintMismatch`.
        timeout_s: per-trial wall-clock deadline.  A trial that
            outlives it is reaped (its worker killed, the pool
            recycled) and recorded as a :class:`TrialFailure` with
            ``error_type=TIMEOUT_ERROR_TYPE``; remaining trials
            continue.  Requires ``workers >= 1``.

    Returns:
        A :class:`TrialRunResult` (a plain ``list`` plus the
        ``interrupted``/``resumed``/``checkpoint`` markers) holding one
        :class:`TrialResult` — or, in guarded/durable mode, possibly a
        :class:`TrialFailure` — per completed trial, in trial order.
        After an interruption the list covers only the completed
        prefix-set of trials.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    unknown = set(policies) - set(POLICY_NAMES)
    if unknown:
        raise ValueError(f"unknown policies: {sorted(unknown)}")
    dupes = sorted(name for name, count in Counter(policies).items()
                   if count > 1)
    if dupes:
        raise ValueError(
            f"duplicate policies: {dupes} — outcomes are keyed by "
            "policy name, so a duplicate entry would silently collapse")
    if max_retries is not None and max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    if timeout_s is not None and (workers is None or workers < 1):
        raise ValueError(
            "timeout_s requires workers >= 1: reaping a hung trial "
            "needs a worker process boundary to kill across")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")

    store: Optional[TrialStore] = None
    if checkpoint is not None:
        digest, params = _run_fingerprint(
            n_trials, n_extenders, n_users, policies, seed, width_m,
            height_m, phy, plc_mode)
        store = TrialStore(checkpoint, digest, params=params,
                           resume=resume)

    durable = store is not None or timeout_s is not None
    guarded = max_retries is not None or durable
    config = _RunConfig(
        n_extenders=n_extenders, n_users=n_users,
        policies=tuple(policies), width_m=width_m, height_m=height_m,
        phy=phy, plc_mode=plc_mode, fault_hook=fault_hook,
        max_retries=0 if max_retries is None else max_retries)
    children = np.random.SeedSequence(seed).spawn(n_trials)
    specs = []
    for index, child in enumerate(children):
        policy_children = child.spawn(len(POLICY_NAMES))
        policy_seqs = {name: policy_children[k]
                       for k, name in enumerate(POLICY_NAMES)}
        specs.append(_TrialSpec(index=index, scenario_seq=child,
                                policy_seqs=policy_seqs))

    results: Dict[int, Union[TrialResult, TrialFailure]] = {}
    resumed = 0
    if store is not None:
        for index, payload in store.records.items():
            results[index] = _decode_record(payload)
        resumed = len(results)
    pending = [s for s in specs if s.index not in results]

    def record(index: int,
               result: Union[TrialResult, TrialFailure,
                             WorkFailure]) -> None:
        if isinstance(result, WorkFailure):
            # Supervisor-level failures (deadline reap, repeated worker
            # death) arrive in dispatch's generic shape; re-cast them
            # into the runner's checkpoint-codec-known record type.
            result = TrialFailure(trial_index=result.index,
                                  attempts=result.attempts,
                                  error_type=result.error_type,
                                  error=result.error)
        results[index] = result
        if store is not None:
            store.append(index, _encode_record(result))

    state = InterruptState()
    # timeout_s promotes workers=1 to a one-worker pool: a deadline is
    # only enforceable across a process boundary.
    use_pool = (workers is not None
                and (workers > 1 or timeout_s is not None))
    try:
        with SignalGuard(state) if store is not None else \
                _NullContext():
            if use_pool:
                dispatch_chunked(
                    pending, config,
                    _solve_trial_guarded if guarded else _solve_trial,
                    workers=max(int(workers or 1), 1),
                    chunk_size=chunk_size, guarded=guarded,
                    retry_budget=max_retries or 0, timeout_s=timeout_s,
                    record=record, state=state)
            else:
                for spec in pending:
                    if state.interrupted:
                        break
                    payload = spec.payload(config)
                    if guarded:
                        record(spec.index,
                               _run_trial_guarded(payload))
                    else:
                        record(spec.index,
                               _run_single_trial(payload))
        if store is not None:
            if state.interrupted:
                # Leave the raw journal in place (marker included) for
                # forensics; the next resume completes and compacts it.
                store.append_event("interrupted",
                                   signal=state.signal_name,
                                   completed=len(results))
            else:
                store.snapshot()
    finally:
        if store is not None:
            store.close()
    return TrialRunResult(
        [results[i] for i in sorted(results)],
        interrupted=state.signal_name, resumed=resumed,
        checkpoint=None if checkpoint is None else str(checkpoint))


class _NullContext:
    """``contextlib.nullcontext`` (named for the signal-guard branch)."""

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


def run_online_comparison(n_epochs: int,
                          n_extenders: int,
                          initial_users: int,
                          policies: Sequence[str] = ("wolt", "greedy"),
                          seed: int = 0,
                          arrival_rate: float = 3.0,
                          departure_rate: float = 1.0,
                          epoch_duration: float = 16.5,
                          plc_mode: str = "redistribute"
                          ) -> Dict[str, List[EpochStats]]:
    """Temporal comparison with identical floors per policy (Fig. 6b/6c).

    Every policy sees the same floor plan and its own identically-seeded
    arrival process, so differences are attributable to the policy.

    The floor-plan and arrival-process streams are independent children
    of ``SeedSequence(seed)`` (spawned afresh per policy, so each policy
    replays identical randomness).

    Policy names are validated up front — before any floor plan is
    sampled or epoch run — so a typo fails fast instead of deep inside
    the first policy's simulation.
    """
    unknown = set(policies) - set(POLICY_NAMES)
    if unknown:
        raise ValueError(f"unknown policies: {sorted(unknown)}")
    histories: Dict[str, List[EpochStats]] = {}
    for policy in policies:
        plan_seq, arrival_seq = np.random.SeedSequence(seed).spawn(2)
        rng = np.random.default_rng(plan_seq)
        plan = sample_floor_plan(n_extenders, rng)
        sim = OnlineSimulation(plan, policy,
                               rng=np.random.default_rng(arrival_seq),
                               arrival_rate=arrival_rate,
                               departure_rate=departure_rate,
                               epoch_duration=epoch_duration,
                               plc_mode=plc_mode)
        sim.seed_users(initial_users)
        histories[policy] = sim.run(n_epochs)
    return histories
