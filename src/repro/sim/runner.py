"""Trial runners for the large-scale simulation experiments (Fig. 6).

These helpers wrap topology sampling, policy execution, and metric
collection behind seeded, reproducible entry points used by the
benchmarks and examples.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..core.baselines import (greedy_assignment, random_assignment,
                              rssi_assignment)
from ..core.problem import Scenario
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.metrics import jain_fairness
from ..net.topology import FloorPlan, enterprise_floor
from ..plc.channel import random_building
from ..wifi.phy import WifiPhy
from .dynamics import EpochStats, OnlineSimulation

__all__ = ["PolicyOutcome", "TrialResult", "TrialFailure", "run_policy",
           "run_trials", "run_online_comparison", "sample_floor_plan"]

#: The association policies known to the runner.
POLICY_NAMES = ("wolt", "greedy", "rssi", "random")

#: A fault hook called as ``hook(trial_index, attempt)`` at the start of
#: every trial attempt; it may raise to simulate a worker crash (see
#: :class:`repro.sim.faults.CrashSchedule`).  Must be picklable when
#: ``workers`` is used.
FaultHook = Callable[[int, int], None]


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's result on one scenario.

    Attributes:
        policy: policy name.
        aggregate_throughput: total end-to-end throughput (Mbps).
        jain_fairness: Jain index over per-user throughputs.
        user_throughputs: per-user throughputs (Mbps), scenario order.
        assignment: the chosen per-user extender indices.
    """

    policy: str
    aggregate_throughput: float  # woltlint: disable=W005 — established result API; value is Mbps
    jain_fairness: float
    user_throughputs: np.ndarray
    assignment: np.ndarray


@dataclass(frozen=True)
class TrialResult:
    """All policies' outcomes on one sampled scenario."""

    scenario: Scenario
    outcomes: Dict[str, PolicyOutcome]

    def aggregate(self, policy: str) -> float:
        return self.outcomes[policy].aggregate_throughput


@dataclass(frozen=True)
class TrialFailure:
    """A trial whose every attempt crashed (retry budget exhausted).

    Returned in place of a :class:`TrialResult` when ``run_trials`` is
    given ``max_retries`` — the run's surviving trials are preserved
    instead of one worker exception destroying all of them.

    Attributes:
        trial_index: 0-based position of the trial in the run.
        attempts: attempts made (``max_retries + 1``).
        error_type: class name of the last exception.
        error: ``repr`` of the last exception.
    """

    trial_index: int
    attempts: int
    error_type: str
    error: str


def run_policy(scenario: Scenario, policy: str,
               rng: Optional[np.random.Generator] = None,
               plc_mode: str = "redistribute") -> PolicyOutcome:
    """Run one association policy on a scenario and measure it.

    Policies always *decide* against the physically measured network
    behaviour (the redistributing testbed law — that is what a deployed
    controller observes through iperf); ``plc_mode`` selects the law the
    outcome is *evaluated* under, so experiments can score policies with
    the paper's Problem-1 model (``"fixed"``) the way the paper's own
    simulator does.

    Args:
        scenario: the network snapshot.
        policy: one of ``wolt``, ``greedy``, ``rssi``, ``random``.
        rng: generator for the stochastic pieces (random policy, greedy
            arrival order shuffling); deterministic policies ignore it.
        plc_mode: PLC sharing law used for scoring.
    """
    rng = rng or np.random.default_rng(0)
    if policy == "wolt":
        result = solve_wolt(scenario, plc_mode=plc_mode)
        assignment = result.assignment
        report = result.report
    else:
        if policy == "greedy":
            order = rng.permutation(scenario.n_users)
            assignment = greedy_assignment(scenario, arrival_order=order)
        elif policy == "rssi":
            assignment = rssi_assignment(scenario)
        elif policy == "random":
            assignment = random_assignment(scenario, rng)
        else:
            raise ValueError(f"unknown policy {policy!r}")
        report = evaluate(scenario, assignment, require_complete=True,
                          plc_mode=plc_mode)
    return PolicyOutcome(policy=policy,
                         aggregate_throughput=report.aggregate,
                         jain_fairness=jain_fairness(
                             report.user_throughputs),
                         user_throughputs=report.user_throughputs,
                         assignment=np.asarray(assignment))


def sample_floor_plan(n_extenders: int, rng: np.random.Generator,
                      width_m: float = 100.0,
                      height_m: float = 100.0) -> FloorPlan:
    """Sample extender placements and PLC rates for an empty floor."""
    building = random_building(n_extenders, rng)
    outlets = building.outlets
    chosen = [outlets[k] for k in rng.choice(len(outlets),
                                             size=n_extenders,
                                             replace=False)]
    return FloorPlan(
        width_m=width_m, height_m=height_m,
        extender_xy=np.column_stack([rng.uniform(0, width_m, n_extenders),
                                     rng.uniform(0, height_m,
                                                 n_extenders)]),
        user_xy=np.empty((0, 2)),
        plc_rates=building.rates(chosen))


@dataclass(frozen=True)
class _TrialPayload:
    """Self-contained description of one trial (picklable).

    ``scenario_seq`` seeds the floor sampling; ``policy_seqs`` holds one
    pre-spawned SeedSequence child *per policy name* (keyed by identity,
    not by position in the ``policies`` tuple), so a policy's stream —
    and therefore its outcome — never depends on which other policies
    run alongside it, on execution order, or on retry attempts.
    """

    trial_index: int
    scenario_seq: np.random.SeedSequence
    policy_seqs: Dict[str, np.random.SeedSequence]
    n_extenders: int
    n_users: int
    policies: Tuple[str, ...]
    width_m: float
    height_m: float
    phy: Optional[WifiPhy]
    plc_mode: str
    fault_hook: Optional[FaultHook]
    max_retries: int


def _run_single_trial(payload: _TrialPayload,
                      attempt: int = 0) -> TrialResult:
    """Run one Monte-Carlo trial attempt from its payload.

    Module-level (rather than a closure) so :class:`ProcessPoolExecutor`
    can pickle it; the payload carries the trial's own pre-spawned
    :class:`numpy.random.SeedSequence` children, which make the result
    independent of which worker — or how many workers — execute it, and
    bit-identical across retry attempts.
    """
    if payload.fault_hook is not None:
        payload.fault_hook(payload.trial_index, attempt)
    rng = np.random.default_rng(payload.scenario_seq)
    scenario = enterprise_floor(payload.n_extenders, payload.n_users,
                                rng, width_m=payload.width_m,
                                height_m=payload.height_m,
                                phy=payload.phy)
    outcomes = {}
    for policy in payload.policies:
        policy_rng = np.random.default_rng(payload.policy_seqs[policy])
        outcomes[policy] = run_policy(scenario, policy, policy_rng,
                                      plc_mode=payload.plc_mode)
    return TrialResult(scenario=scenario, outcomes=outcomes)


def _run_trial_guarded(payload: _TrialPayload
                       ) -> Union[TrialResult, TrialFailure]:
    """Run one trial with bounded retries; never raises on trial errors.

    A crashed attempt is retried with the *same* SeedSequence children
    (a clean retry reproduces the original trial bit-identically); when
    the budget is exhausted the trial is returned as an explicit
    :class:`TrialFailure` instead of destroying the whole run.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(payload.max_retries + 1):
        try:
            return _run_single_trial(payload, attempt)
        except Exception as exc:
            last_error = exc
    return TrialFailure(trial_index=payload.trial_index,
                        attempts=payload.max_retries + 1,
                        error_type=type(last_error).__name__,
                        error=repr(last_error))


def run_trials(n_trials: int,
               n_extenders: int,
               n_users: int,
               policies: Sequence[str] = ("wolt", "greedy", "rssi"),
               seed: int = 0,
               width_m: float = 100.0,
               height_m: float = 100.0,
               phy: Optional[WifiPhy] = None,
               plc_mode: str = "redistribute",
               workers: Optional[int] = None,
               max_retries: Optional[int] = None,
               fault_hook: Optional[FaultHook] = None
               ) -> List[Union[TrialResult, TrialFailure]]:
    """Monte-Carlo policy comparison over random floors (Fig. 6a).

    Each trial samples a fresh enterprise floor (wiring plant, extender
    and user placement) and runs every policy on the same scenario.

    Trials are seeded with per-trial children of
    ``numpy.random.SeedSequence(seed)`` (trial ``t`` gets the ``t``-th
    spawn); each trial additionally pre-spawns one grandchild per
    *policy name*, so every policy owns a stream independent of which
    other policies run alongside it.  Results are therefore
    bit-identical across worker counts, across retry attempts, and —
    for any single policy — across ``policies`` subsets.

    Args:
        n_trials: number of independent scenarios (paper: 100).
        n_extenders: extenders per floor (paper: 15).
        n_users: users per floor (paper: 36).
        policies: subset of :data:`POLICY_NAMES` to run.
        seed: master seed for the :class:`~numpy.random.SeedSequence`.
        width_m / height_m: floor dimensions (paper: 100 m x 100 m).
        phy: optional WiFi PHY override.
        plc_mode: PLC sharing law used for scoring (the paper's
            simulator corresponds to ``"fixed"``).
        workers: number of worker processes; ``None``, 0, or 1 run
            serially in-process.
        max_retries: when ``None`` (default), a trial exception
            propagates to the caller unchanged.  When an int, a crashed
            trial is retried up to ``max_retries`` times with the same
            SeedSequence children and, on exhaustion, returned as an
            explicit :class:`TrialFailure` record — surviving trials
            are never lost.
        fault_hook: optional ``hook(trial_index, attempt)`` run at the
            start of every attempt; may raise to inject trial crashes
            (see :class:`repro.sim.faults.CrashSchedule`).  Must be
            picklable when ``workers`` is used.

    Returns:
        One :class:`TrialResult` (or, with ``max_retries`` set, possibly
        a :class:`TrialFailure`) per trial, in trial order.
    """
    unknown = set(policies) - set(POLICY_NAMES)
    if unknown:
        raise ValueError(f"unknown policies: {sorted(unknown)}")
    if max_retries is not None and max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    children = np.random.SeedSequence(seed).spawn(n_trials)
    payloads = []
    for index, child in enumerate(children):
        policy_children = child.spawn(len(POLICY_NAMES))
        policy_seqs = {name: policy_children[k]
                       for k, name in enumerate(POLICY_NAMES)}
        payloads.append(_TrialPayload(
            trial_index=index, scenario_seq=child,
            policy_seqs=policy_seqs, n_extenders=n_extenders,
            n_users=n_users, policies=tuple(policies), width_m=width_m,
            height_m=height_m, phy=phy, plc_mode=plc_mode,
            fault_hook=fault_hook,
            max_retries=0 if max_retries is None else max_retries))
    guarded = max_retries is not None
    if workers is None or workers <= 1:
        if guarded:
            return [_run_trial_guarded(payload) for payload in payloads]
        return [_run_single_trial(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # pool.map preserves submission order and (in the unguarded
        # mode) re-raises the first worker exception at iteration time
        # instead of hanging.
        runner = _run_trial_guarded if guarded else _run_single_trial
        return list(pool.map(runner, payloads))


def run_online_comparison(n_epochs: int,
                          n_extenders: int,
                          initial_users: int,
                          policies: Sequence[str] = ("wolt", "greedy"),
                          seed: int = 0,
                          arrival_rate: float = 3.0,
                          departure_rate: float = 1.0,
                          epoch_duration: float = 16.5,
                          plc_mode: str = "redistribute"
                          ) -> Dict[str, List[EpochStats]]:
    """Temporal comparison with identical floors per policy (Fig. 6b/6c).

    Every policy sees the same floor plan and its own identically-seeded
    arrival process, so differences are attributable to the policy.

    The floor-plan and arrival-process streams are independent children
    of ``SeedSequence(seed)`` (spawned afresh per policy, so each policy
    replays identical randomness).
    """
    histories: Dict[str, List[EpochStats]] = {}
    for policy in policies:
        plan_seq, arrival_seq = np.random.SeedSequence(seed).spawn(2)
        rng = np.random.default_rng(plan_seq)
        plan = sample_floor_plan(n_extenders, rng)
        sim = OnlineSimulation(plan, policy,
                               rng=np.random.default_rng(arrival_seq),
                               arrival_rate=arrival_rate,
                               departure_rate=departure_rate,
                               epoch_duration=epoch_duration,
                               plc_mode=plc_mode)
        sim.seed_users(initial_users)
        histories[policy] = sim.run(n_epochs)
    return histories
