"""Trial runners for the large-scale simulation experiments (Fig. 6).

These helpers wrap topology sampling, policy execution, and metric
collection behind seeded, reproducible entry points used by the
benchmarks and examples.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.baselines import (greedy_assignment, random_assignment,
                              rssi_assignment)
from ..core.problem import Scenario
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.metrics import jain_fairness
from ..net.topology import FloorPlan, enterprise_floor
from ..plc.channel import random_building
from ..wifi.phy import WifiPhy
from .dynamics import EpochStats, OnlineSimulation

__all__ = ["PolicyOutcome", "TrialResult", "run_policy", "run_trials",
           "run_online_comparison", "sample_floor_plan"]

#: The association policies known to the runner.
POLICY_NAMES = ("wolt", "greedy", "rssi", "random")


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's result on one scenario.

    Attributes:
        policy: policy name.
        aggregate_throughput: total end-to-end throughput (Mbps).
        jain_fairness: Jain index over per-user throughputs.
        user_throughputs: per-user throughputs (Mbps), scenario order.
        assignment: the chosen per-user extender indices.
    """

    policy: str
    aggregate_throughput: float  # woltlint: disable=W005 — established result API; value is Mbps
    jain_fairness: float
    user_throughputs: np.ndarray
    assignment: np.ndarray


@dataclass(frozen=True)
class TrialResult:
    """All policies' outcomes on one sampled scenario."""

    scenario: Scenario
    outcomes: Dict[str, PolicyOutcome]

    def aggregate(self, policy: str) -> float:
        return self.outcomes[policy].aggregate_throughput


def run_policy(scenario: Scenario, policy: str,
               rng: Optional[np.random.Generator] = None,
               plc_mode: str = "redistribute") -> PolicyOutcome:
    """Run one association policy on a scenario and measure it.

    Policies always *decide* against the physically measured network
    behaviour (the redistributing testbed law — that is what a deployed
    controller observes through iperf); ``plc_mode`` selects the law the
    outcome is *evaluated* under, so experiments can score policies with
    the paper's Problem-1 model (``"fixed"``) the way the paper's own
    simulator does.

    Args:
        scenario: the network snapshot.
        policy: one of ``wolt``, ``greedy``, ``rssi``, ``random``.
        rng: generator for the stochastic pieces (random policy, greedy
            arrival order shuffling); deterministic policies ignore it.
        plc_mode: PLC sharing law used for scoring.
    """
    rng = rng or np.random.default_rng(0)
    if policy == "wolt":
        result = solve_wolt(scenario, plc_mode=plc_mode)
        assignment = result.assignment
        report = result.report
    else:
        if policy == "greedy":
            order = rng.permutation(scenario.n_users)
            assignment = greedy_assignment(scenario, arrival_order=order)
        elif policy == "rssi":
            assignment = rssi_assignment(scenario)
        elif policy == "random":
            assignment = random_assignment(scenario, rng)
        else:
            raise ValueError(f"unknown policy {policy!r}")
        report = evaluate(scenario, assignment, require_complete=True,
                          plc_mode=plc_mode)
    return PolicyOutcome(policy=policy,
                         aggregate_throughput=report.aggregate,
                         jain_fairness=jain_fairness(
                             report.user_throughputs),
                         user_throughputs=report.user_throughputs,
                         assignment=np.asarray(assignment))


def sample_floor_plan(n_extenders: int, rng: np.random.Generator,
                      width_m: float = 100.0,
                      height_m: float = 100.0) -> FloorPlan:
    """Sample extender placements and PLC rates for an empty floor."""
    building = random_building(n_extenders, rng)
    outlets = building.outlets
    chosen = [outlets[k] for k in rng.choice(len(outlets),
                                             size=n_extenders,
                                             replace=False)]
    return FloorPlan(
        width_m=width_m, height_m=height_m,
        extender_xy=np.column_stack([rng.uniform(0, width_m, n_extenders),
                                     rng.uniform(0, height_m,
                                                 n_extenders)]),
        user_xy=np.empty((0, 2)),
        plc_rates=building.rates(chosen))


def _run_single_trial(payload: Tuple) -> TrialResult:
    """Run one Monte-Carlo trial from a self-contained payload.

    Module-level (rather than a closure) so :class:`ProcessPoolExecutor`
    can pickle it; the payload carries the trial's own
    :class:`numpy.random.SeedSequence` child, which makes the result
    independent of which worker — or how many workers — execute it.
    """
    (seed_seq, n_extenders, n_users, policies, width_m, height_m, phy,
     plc_mode) = payload
    rng = np.random.default_rng(seed_seq)
    scenario = enterprise_floor(n_extenders, n_users, rng,
                                width_m=width_m, height_m=height_m,
                                phy=phy)
    outcomes = {policy: run_policy(scenario, policy, rng,
                                   plc_mode=plc_mode)
                for policy in policies}
    return TrialResult(scenario=scenario, outcomes=outcomes)


def run_trials(n_trials: int,
               n_extenders: int,
               n_users: int,
               policies: Sequence[str] = ("wolt", "greedy", "rssi"),
               seed: int = 0,
               width_m: float = 100.0,
               height_m: float = 100.0,
               phy: Optional[WifiPhy] = None,
               plc_mode: str = "redistribute",
               workers: Optional[int] = None) -> List[TrialResult]:
    """Monte-Carlo policy comparison over random floors (Fig. 6a).

    Each trial samples a fresh enterprise floor (wiring plant, extender
    and user placement) and runs every policy on the same scenario.

    Trials are seeded with per-trial children of
    ``numpy.random.SeedSequence(seed)`` (trial ``t`` gets the ``t``-th
    spawn), so every trial owns a statistically independent stream that
    does not depend on execution order: ``workers=N`` returns bit-identical
    results to the serial run for any ``N``.

    Args:
        n_trials: number of independent scenarios (paper: 100).
        n_extenders: extenders per floor (paper: 15).
        n_users: users per floor (paper: 36).
        policies: subset of :data:`POLICY_NAMES` to run.
        seed: master seed for the :class:`~numpy.random.SeedSequence`.
        width_m / height_m: floor dimensions (paper: 100 m x 100 m).
        phy: optional WiFi PHY override.
        plc_mode: PLC sharing law used for scoring (the paper's
            simulator corresponds to ``"fixed"``).
        workers: number of worker processes; ``None``, 0, or 1 run
            serially in-process.  Worker exceptions propagate to the
            caller.

    Returns:
        One :class:`TrialResult` per trial, in trial order.
    """
    unknown = set(policies) - set(POLICY_NAMES)
    if unknown:
        raise ValueError(f"unknown policies: {sorted(unknown)}")
    children = np.random.SeedSequence(seed).spawn(n_trials)
    payloads = [(child, n_extenders, n_users, tuple(policies),
                 width_m, height_m, phy, plc_mode)
                for child in children]
    if workers is None or workers <= 1:
        return [_run_single_trial(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # pool.map preserves submission order and re-raises the first
        # worker exception at iteration time instead of hanging.
        return list(pool.map(_run_single_trial, payloads))


def run_online_comparison(n_epochs: int,
                          n_extenders: int,
                          initial_users: int,
                          policies: Sequence[str] = ("wolt", "greedy"),
                          seed: int = 0,
                          arrival_rate: float = 3.0,
                          departure_rate: float = 1.0,
                          epoch_duration: float = 16.5,
                          plc_mode: str = "redistribute"
                          ) -> Dict[str, List[EpochStats]]:
    """Temporal comparison with identical floors per policy (Fig. 6b/6c).

    Every policy sees the same floor plan and its own identically-seeded
    arrival process, so differences are attributable to the policy.

    The floor-plan and arrival-process streams are independent children
    of ``SeedSequence(seed)`` (spawned afresh per policy, so each policy
    replays identical randomness).
    """
    histories: Dict[str, List[EpochStats]] = {}
    for policy in policies:
        plan_seq, arrival_seq = np.random.SeedSequence(seed).spawn(2)
        rng = np.random.default_rng(plan_seq)
        plan = sample_floor_plan(n_extenders, rng)
        sim = OnlineSimulation(plan, policy,
                               rng=np.random.default_rng(arrival_seq),
                               arrival_rate=arrival_rate,
                               departure_rate=departure_rate,
                               epoch_duration=epoch_duration,
                               plc_mode=plc_mode)
        sim.seed_users(initial_users)
        histories[policy] = sim.run(n_epochs)
    return histories
