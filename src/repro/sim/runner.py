"""Trial runners for the large-scale simulation experiments (Fig. 6).

These helpers wrap topology sampling, policy execution, and metric
collection behind seeded, reproducible entry points used by the
benchmarks and examples.

Durability (see ``docs/ROBUSTNESS.md``): ``run_trials`` can journal
every completed trial to a crash-consistent
:class:`~repro.sim.checkpoint.TrialStore`, resume an interrupted sweep
bit-identically, enforce per-trial deadlines with hung-worker reaping,
and convert pool crashes and SIGINT/SIGTERM into explicit partial
results instead of run loss.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import signal
import time
from collections import Counter, deque
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                wait)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (Any, Callable, Deque, Dict, List, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from ..core.baselines import (greedy_assignment, random_assignment,
                              rssi_assignment)
from ..core.problem import Scenario
from ..core.wolt import solve_wolt
from ..net.engine import evaluate
from ..net.metrics import jain_fairness
from ..net.topology import FloorPlan, enterprise_floor
from ..plc.channel import random_building
from ..wifi.phy import WifiPhy
from .checkpoint import TrialStore, fingerprint
from .dynamics import EpochStats, OnlineSimulation

__all__ = ["PolicyOutcome", "TrialResult", "TrialFailure",
           "TrialRunResult", "run_policy", "run_trials",
           "run_online_comparison", "sample_floor_plan",
           "shutdown_warm_pools"]

#: The association policies known to the runner.
POLICY_NAMES = ("wolt", "greedy", "rssi", "random")

#: A fault hook called as ``hook(trial_index, attempt)`` at the start of
#: every trial attempt; it may raise to simulate a worker crash (see
#: :class:`repro.sim.faults.CrashSchedule`).  Must be picklable when
#: ``workers`` is used.
FaultHook = Callable[[int, int], None]

#: Supervisor wake-up period: the upper bound on how stale the deadline
#: and interrupt checks can be while workers are busy.
_POLL_S = 0.2

#: ``error_type`` recorded for a trial reaped past its deadline.
TIMEOUT_ERROR_TYPE = "TrialTimeout"

#: ``error_type`` recorded for a trial whose worker died (pool crash).
POOL_ERROR_TYPE = "BrokenProcessPool"


@dataclass(frozen=True)
class PolicyOutcome:
    """One policy's result on one scenario.

    Attributes:
        policy: policy name.
        aggregate_throughput: total end-to-end throughput (Mbps).
        jain_fairness: Jain index over per-user throughputs.
        user_throughputs: per-user throughputs (Mbps), scenario order.
        assignment: the chosen per-user extender indices.
    """

    policy: str
    aggregate_throughput: float  # woltlint: disable=W005 — established result API; value is Mbps
    jain_fairness: float
    user_throughputs: np.ndarray
    assignment: np.ndarray


@dataclass(frozen=True)
class TrialResult:
    """All policies' outcomes on one sampled scenario."""

    scenario: Scenario
    outcomes: Dict[str, PolicyOutcome]

    def aggregate(self, policy: str) -> float:
        return self.outcomes[policy].aggregate_throughput


@dataclass(frozen=True)
class TrialFailure:
    """A trial whose every attempt crashed (retry budget exhausted).

    Returned in place of a :class:`TrialResult` when ``run_trials`` is
    given ``max_retries`` (or runs in durable mode) — the run's
    surviving trials are preserved instead of one worker exception
    destroying all of them.

    Attributes:
        trial_index: 0-based position of the trial in the run.
        attempts: attempts made (``max_retries + 1``).
        error_type: class name of the last exception, or
            :data:`TIMEOUT_ERROR_TYPE` / :data:`POOL_ERROR_TYPE` for
            trials reaped by the supervisor.
        error: ``repr`` of the last exception (or a supervisor note).
    """

    trial_index: int
    attempts: int
    error_type: str
    error: str


class TrialRunResult(List[Union[TrialResult, TrialFailure]]):
    """The list of per-trial results plus run-level durability markers.

    Behaves exactly like the plain list older callers expect, with
    three extra attributes:

    Attributes:
        interrupted: ``None`` for a run that finished, else the name of
            the signal (``"SIGINT"``/``"SIGTERM"``) that stopped it; an
            interrupted run returns only the trials completed so far.
        resumed: number of trials merged from the checkpoint instead of
            recomputed.
        checkpoint: the journal path, when checkpointing was active.
    """

    def __init__(self,
                 items: Sequence[Union[TrialResult, TrialFailure]] = (),
                 interrupted: Optional[str] = None, resumed: int = 0,
                 checkpoint: Optional[str] = None) -> None:
        super().__init__(items)
        self.interrupted = interrupted
        self.resumed = resumed
        self.checkpoint = checkpoint


def run_policy(scenario: Scenario, policy: str,
               rng: Optional[np.random.Generator] = None,
               plc_mode: str = "redistribute") -> PolicyOutcome:
    """Run one association policy on a scenario and measure it.

    Policies always *decide* against the physically measured network
    behaviour (the redistributing testbed law — that is what a deployed
    controller observes through iperf); ``plc_mode`` selects the law the
    outcome is *evaluated* under, so experiments can score policies with
    the paper's Problem-1 model (``"fixed"``) the way the paper's own
    simulator does.

    Args:
        scenario: the network snapshot.
        policy: one of ``wolt``, ``greedy``, ``rssi``, ``random``.
        rng: generator for the stochastic pieces (random policy, greedy
            arrival order shuffling); deterministic policies ignore it.
        plc_mode: PLC sharing law used for scoring.
    """
    # woltlint: disable=W010 — API-level default for ad-hoc direct
    # calls only; the worker path always passes a generator built from
    # the trial's pre-spawned policy SeedSequence child.
    rng = rng or np.random.default_rng(0)
    if policy == "wolt":
        result = solve_wolt(scenario, plc_mode=plc_mode)
        assignment = result.assignment
        report = result.report
    else:
        if policy == "greedy":
            order = rng.permutation(scenario.n_users)
            assignment = greedy_assignment(scenario, arrival_order=order)
        elif policy == "rssi":
            assignment = rssi_assignment(scenario)
        elif policy == "random":
            assignment = random_assignment(scenario, rng)
        else:
            raise ValueError(f"unknown policy {policy!r}")
        report = evaluate(scenario, assignment, require_complete=True,
                          plc_mode=plc_mode)
    return PolicyOutcome(policy=policy,
                         aggregate_throughput=report.aggregate,
                         jain_fairness=jain_fairness(
                             report.user_throughputs),
                         user_throughputs=report.user_throughputs,
                         assignment=np.asarray(assignment))


def sample_floor_plan(n_extenders: int, rng: np.random.Generator,
                      width_m: float = 100.0,
                      height_m: float = 100.0) -> FloorPlan:
    """Sample extender placements and PLC rates for an empty floor."""
    building = random_building(n_extenders, rng)
    outlets = building.outlets
    chosen = [outlets[k] for k in rng.choice(len(outlets),
                                             size=n_extenders,
                                             replace=False)]
    return FloorPlan(
        width_m=width_m, height_m=height_m,
        extender_xy=np.column_stack([rng.uniform(0, width_m, n_extenders),
                                     rng.uniform(0, height_m,
                                                 n_extenders)]),
        user_xy=np.empty((0, 2)),
        plc_rates=building.rates(chosen))


@dataclass(frozen=True)
class _RunConfig:
    """The run-level trial parameters every trial of a sweep shares.

    Splitting this static block away from the per-trial seeds is what
    makes chunked dispatch cheap: the config is pickled once per
    *chunk* (or not at all, when a fork-started pool inherited it
    through :data:`_SHARED_CONFIGS`) instead of once per trial, and the
    per-trial payload shrinks to a trial index plus its SeedSequence
    children.
    """

    n_extenders: int
    n_users: int
    policies: Tuple[str, ...]
    width_m: float
    height_m: float
    phy: Optional[WifiPhy]
    plc_mode: str
    # woltlint: disable=W013 — operational: a fault hook injects faults
    # that the retry machinery must converge through to bit-identical
    # results (enforced by the fault-equivalence tests), so it must not
    # shift the run fingerprint.
    fault_hook: Optional[FaultHook]
    # woltlint: disable=W013 — operational retry budget; changing it
    # cannot change converged trial results, only whether a fault run
    # fails fast.
    max_retries: int


@dataclass(frozen=True)
class _TrialSpec:
    """The per-trial half of a payload: index plus seed material.

    ``scenario_seq`` seeds the floor sampling; ``policy_seqs`` holds one
    pre-spawned SeedSequence child *per policy name* (keyed by identity,
    not by position in the ``policies`` tuple), so a policy's stream —
    and therefore its outcome — never depends on which other policies
    run alongside it, on execution order, or on retry attempts.
    """

    # woltlint: disable=W013 — derived, not configuration: the index
    # and both SeedSequence children are pure functions of (seed,
    # n_trials, policies), which the fingerprint already covers.
    trial_index: int
    # woltlint: disable=W013 — derived from the fingerprinted seed.
    scenario_seq: np.random.SeedSequence
    # woltlint: disable=W013 — derived from the fingerprinted seed.
    policy_seqs: Dict[str, np.random.SeedSequence]

    def payload(self, config: _RunConfig) -> "_TrialPayload":
        return _TrialPayload(
            trial_index=self.trial_index,
            scenario_seq=self.scenario_seq,
            policy_seqs=self.policy_seqs,
            n_extenders=config.n_extenders, n_users=config.n_users,
            policies=config.policies, width_m=config.width_m,
            height_m=config.height_m, phy=config.phy,
            plc_mode=config.plc_mode, fault_hook=config.fault_hook,
            max_retries=config.max_retries)


@dataclass(frozen=True)
class _TrialPayload:
    """Self-contained description of one trial (config + seeds).

    The in-process unit of work: the serial path and the worker-side
    chunk loop both execute these; only the (config, spec) split above
    crosses the process boundary.
    """

    trial_index: int
    scenario_seq: np.random.SeedSequence
    policy_seqs: Dict[str, np.random.SeedSequence]
    n_extenders: int
    n_users: int
    policies: Tuple[str, ...]
    width_m: float
    height_m: float
    phy: Optional[WifiPhy]
    plc_mode: str
    fault_hook: Optional[FaultHook]
    max_retries: int


def _run_single_trial(payload: _TrialPayload,
                      attempt: int = 0) -> TrialResult:
    """Run one Monte-Carlo trial attempt from its payload.

    Module-level (rather than a closure) so :class:`ProcessPoolExecutor`
    can pickle it; the payload carries the trial's own pre-spawned
    :class:`numpy.random.SeedSequence` children, which make the result
    independent of which worker — or how many workers — execute it, and
    bit-identical across retry attempts.
    """
    if payload.fault_hook is not None:
        payload.fault_hook(payload.trial_index, attempt)
    rng = np.random.default_rng(payload.scenario_seq)
    scenario = enterprise_floor(payload.n_extenders, payload.n_users,
                                rng, width_m=payload.width_m,
                                height_m=payload.height_m,
                                phy=payload.phy)
    outcomes = {}
    for policy in payload.policies:
        policy_rng = np.random.default_rng(payload.policy_seqs[policy])
        outcomes[policy] = run_policy(scenario, policy, policy_rng,
                                      plc_mode=payload.plc_mode)
    return TrialResult(scenario=scenario, outcomes=outcomes)


def _run_trial_guarded(payload: _TrialPayload
                       ) -> Union[TrialResult, TrialFailure]:
    """Run one trial with bounded retries; never raises on trial errors.

    A crashed attempt is retried with the *same* SeedSequence children
    (a clean retry reproduces the original trial bit-identically); when
    the budget is exhausted the trial is returned as an explicit
    :class:`TrialFailure` instead of destroying the whole run.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(payload.max_retries + 1):
        try:
            return _run_single_trial(payload, attempt)
        except Exception as exc:
            last_error = exc
    return TrialFailure(trial_index=payload.trial_index,
                        attempts=payload.max_retries + 1,
                        error_type=type(last_error).__name__,
                        error=repr(last_error))


# ---------------------------------------------------------------------------
# Chunked dispatch: shared run configs, chunk tasks, warm worker pools.
#
# One future per *chunk* of trials amortizes the submit/result IPC that
# made the old one-future-per-trial pool lose to serial execution
# (BENCH_engine.json once recorded a 0.90x "speedup"), and the shared
# config registry lets fork-started workers inherit the run parameters
# instead of re-pickling them per trial.


#: Parent-side registry of live run configs.  A pool *created while a
#: token is registered* forks its workers from this process, so they
#: inherit the entry and chunks can reference it by token alone; pools
#: that predate the registration (warm reuse) get the config embedded
#: in each chunk task instead.
_SHARED_CONFIGS: Dict[str, _RunConfig] = {}

_config_tokens = itertools.count()

#: True when worker processes inherit parent memory at fork time (the
#: Linux default).  Spawn-style start methods never inherit, so chunks
#: always embed their config there.
_FORK_INHERITS = multiprocessing.get_start_method(allow_none=False) == "fork"


def _register_config(config: _RunConfig) -> str:
    token = f"{os.getpid()}-{next(_config_tokens)}"
    _SHARED_CONFIGS[token] = config
    return token


@dataclass(frozen=True)
class _ChunkTask:
    """A batch of trials shipped to one worker in a single submit.

    ``config`` is ``None`` when the worker is known to have inherited
    the registry entry for ``token`` at fork time; the worker then
    resolves the config locally and the chunk's pickle carries only the
    per-trial seeds.
    """

    token: str
    config: Optional[_RunConfig]
    specs: Tuple[_TrialSpec, ...]
    guarded: bool


def _run_chunk(task: _ChunkTask
               ) -> List[Union[TrialResult, TrialFailure]]:
    """Execute one chunk inside a worker, preserving spec order.

    The returned list maps 1:1 onto ``task.specs`` — the supervisor
    re-associates results by position, so this invariant (checked
    there) is what keeps chunked results correctly attributed no matter
    which order chunks complete in.
    """
    config = task.config
    if config is None:
        config = _SHARED_CONFIGS.get(task.token)
    if config is None:  # pragma: no cover - defensive: misrouted chunk
        raise RuntimeError(
            f"worker has no run config for token {task.token!r}; the "
            "chunk was dispatched to a pool that never inherited it")
    run_fn = _run_trial_guarded if task.guarded else _run_single_trial
    return [run_fn(spec.payload(config)) for spec in task.specs]


#: Cap on the automatic chunk size; beyond this the IPC amortization is
#: negligible and large chunks only hurt load balance and durability
#: granularity (a completed chunk journals all its trials at once).
_MAX_AUTO_CHUNK = 16

#: Target number of chunk "waves" per worker: small enough to amortize
#: IPC, large enough that one slow chunk cannot idle the other workers
#: for long.
_CHUNK_WAVES = 2


def _auto_chunk_size(n_pending: int, workers: int) -> int:
    """Default chunk size: ``_CHUNK_WAVES`` chunks per worker, capped."""
    if n_pending <= 0:
        return 1
    per_wave = -(-n_pending // (max(workers, 1) * _CHUNK_WAVES))
    return max(1, min(per_wave, _MAX_AUTO_CHUNK))


#: Idle warm pools keyed by worker count, reused across ``run_trials``
#: calls so a parameter sweep pays process startup once, not once per
#: sweep point.  Pools are leased exclusively (popped) while a run is
#: active and returned only when they finished cleanly.
_WARM_POOLS: Dict[int, ProcessPoolExecutor] = {}


def shutdown_warm_pools() -> None:
    """Tear down every idle warm worker pool (also runs at exit).

    Safe to call at any time: pools leased by an in-flight
    ``run_trials`` are not in the cache and are unaffected.
    """
    while _WARM_POOLS:
        _, pool = _WARM_POOLS.popitem()
        _kill_pool(pool)


atexit.register(shutdown_warm_pools)


class _PoolLease:
    """Exclusive use of a (possibly warm) process pool for one run.

    Tracks whether the current executor was created *after* the run's
    config registration (``inherits`` — its forked workers carry the
    config and chunks may omit it) and routes the end-of-run decision:
    a cleanly drained pool goes back to the warm cache, an abandoned or
    broken one is killed.
    """

    def __init__(self, workers: int, reuse: bool = True) -> None:
        self.workers = workers
        self.reuse = reuse
        self._dead = False
        cached = _WARM_POOLS.pop(workers, None) if reuse else None
        if cached is not None:
            self.pool = cached
            self._fresh = False
        else:
            self.pool = ProcessPoolExecutor(max_workers=workers)
            self._fresh = True

    @property
    def inherits(self) -> bool:
        """True when this pool's workers inherited the run config."""
        return self._fresh and _FORK_INHERITS

    def recycle(self) -> None:
        """Kill the current executor and start a fresh one."""
        _kill_pool(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        self._fresh = True
        self._dead = False

    def abandon(self) -> None:
        """Kill the executor without returning it to the cache."""
        self._dead = True
        _kill_pool(self.pool)

    def release(self) -> None:
        """Return a cleanly drained executor to the warm cache."""
        if self._dead:
            return  # already killed by abandon()
        if not self.reuse:
            self.pool.shutdown(wait=True)
            return
        if self.workers in _WARM_POOLS:  # nested/concurrent runs
            self.pool.shutdown(wait=True)
        else:
            _WARM_POOLS[self.workers] = self.pool


# ---------------------------------------------------------------------------
# Checkpoint codec: TrialResult / TrialFailure <-> JSON payloads.
#
# Every float goes through Python's shortest-round-trip repr (what
# json emits), so decode(encode(x)) is bit-identical to x — the basis
# of the resume == cold-run contract.


def _encode_record(result: Union[TrialResult, TrialFailure]
                   ) -> Dict[str, Any]:
    if isinstance(result, TrialFailure):
        return {"type": "failure", "trial_index": result.trial_index,
                "attempts": result.attempts,
                "error_type": result.error_type, "error": result.error}
    scenario = result.scenario
    return {
        "type": "result",
        "scenario": {
            "wifi_rates": scenario.wifi_rates.tolist(),
            "plc_rates": scenario.plc_rates.tolist(),
            "capacities": (None if scenario.capacities is None
                           else scenario.capacities.tolist()),
            "user_ids": (None if scenario.user_ids is None
                         else np.asarray(scenario.user_ids).tolist()),
        },
        "outcomes": [
            {"policy": o.policy,
             "aggregate_throughput": o.aggregate_throughput,
             "jain_fairness": o.jain_fairness,
             "user_throughputs": o.user_throughputs.tolist(),
             "assignment": o.assignment.tolist()}
            for o in result.outcomes.values()
        ],
    }


def _decode_record(payload: Dict[str, Any]
                   ) -> Union[TrialResult, TrialFailure]:
    if payload["type"] == "failure":
        return TrialFailure(trial_index=int(payload["trial_index"]),
                            attempts=int(payload["attempts"]),
                            error_type=payload["error_type"],
                            error=payload["error"])
    raw = payload["scenario"]
    scenario = Scenario(
        wifi_rates=np.asarray(raw["wifi_rates"], dtype=float),
        plc_rates=np.asarray(raw["plc_rates"], dtype=float),
        capacities=(None if raw["capacities"] is None
                    else np.asarray(raw["capacities"], dtype=int)),
        user_ids=(None if raw["user_ids"] is None
                  else np.asarray(raw["user_ids"])))
    outcomes = {}
    for entry in payload["outcomes"]:
        outcomes[entry["policy"]] = PolicyOutcome(
            policy=entry["policy"],
            aggregate_throughput=entry["aggregate_throughput"],
            jain_fairness=entry["jain_fairness"],
            user_throughputs=np.asarray(entry["user_throughputs"],
                                        dtype=float),
            assignment=np.asarray(entry["assignment"], dtype=int))
    return TrialResult(scenario=scenario, outcomes=outcomes)


def _run_fingerprint(n_trials: int, n_extenders: int, n_users: int,
                     policies: Sequence[str], seed: int, width_m: float,
                     height_m: float, phy: Optional[WifiPhy],
                     plc_mode: str) -> Tuple[str, Dict[str, Any]]:
    """The checkpoint fingerprint over the run's scientific parameters.

    Operational knobs (workers, retries, timeouts, fault hooks) are
    deliberately excluded: they never change what a completed trial's
    *result* is, so a sweep may be resumed with a different worker
    count or deadline.
    """
    phy_params: Optional[Dict[str, Any]] = None
    if phy is not None:
        phy_params = asdict(phy)
        phy_params["mcs_table"] = [list(row)
                                   for row in phy_params["mcs_table"]]
    params = {"kind": "run_trials", "n_trials": int(n_trials),
              "n_extenders": int(n_extenders), "n_users": int(n_users),
              "policies": list(policies), "seed": int(seed),
              "width_m": float(width_m), "height_m": float(height_m),
              "phy": phy_params, "plc_mode": plc_mode}
    return fingerprint(params), params


# ---------------------------------------------------------------------------
# Supervision: signals, deadlines, pool recycling.


class _InterruptState:
    """Mutable flag the signal handlers share with the run loop."""

    def __init__(self) -> None:
        self.signal_name: Optional[str] = None

    @property
    def interrupted(self) -> bool:
        return self.signal_name is not None


class _SignalGuard:
    """Install graceful SIGINT/SIGTERM handlers for a durable run.

    The handler records the signal and lets the run loop drain: no
    trial is torn mid-write, the journal is flushed, and the partial
    results are returned with ``interrupted`` set.  Outside the main
    thread (where ``signal.signal`` is unavailable) the guard is a
    no-op and the default semantics apply.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, state: _InterruptState) -> None:
        self.state = state
        self._saved: List[Tuple[int, Any]] = []

    def __enter__(self) -> "_SignalGuard":
        for sig in self._SIGNALS:
            try:
                previous = signal.signal(sig, self._handle)
            except ValueError:  # not the main thread
                continue
            self._saved.append((sig, previous))
        return self

    def _handle(self, signum: int, frame: Any) -> None:
        self.state.signal_name = signal.Signals(signum).name

    def __exit__(self, *exc_info: Any) -> None:
        for sig, previous in self._saved:
            signal.signal(sig, previous)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly reap a pool, hung workers included.

    ``ProcessPoolExecutor`` has no public kill switch — ``shutdown``
    waits for running calls, which is exactly what a hung worker never
    finishes — so the workers are SIGKILLed directly before the
    bookkeeping threads are shut down.
    """
    # _processes is None before the first submit and after shutdown.
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except (OSError, AttributeError):  # already gone
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # the pool may already be broken — that's fine
        pass


def _run_supervised(pending: Sequence[_TrialSpec], config: _RunConfig,
                    token: str, lease: _PoolLease, chunk_size: int,
                    guarded: bool, retry_budget: int,
                    timeout_s: Optional[float],
                    record: Callable[[int, Union[TrialResult,
                                                 TrialFailure]], None],
                    state: _InterruptState) -> None:
    """Run trial specs on a supervised, chunk-dispatching process pool.

    Unlike the old blind ``pool.map``, the supervisor:

    * submits trials in *chunks* of ``chunk_size`` (one future per
      chunk), amortizing the submit/result IPC and the config pickle
      over the whole batch; a chunk's results map positionally onto its
      specs, and that mapping is asserted so chunk completion order can
      never mis-attribute a result;
    * keeps at most ``workers`` chunks in flight, so every submitted
      chunk starts promptly and its deadline is meaningful;
    * reaps any chunk that outlives its deadline (``timeout_s`` per
      trial in the chunk; the runner forces single-trial chunks when
      deadlines are active, keeping the contract per-trial) — the pool
      is killed (hung workers cannot be joined), the hung trials are
      recorded as :class:`TrialFailure` with
      :data:`TIMEOUT_ERROR_TYPE`, and the innocent in-flight trials are
      resubmitted on a fresh pool (their SeedSequence children make the
      rerun bit-identical);
    * converts a :class:`BrokenProcessPool` (a worker SIGKILLed / OOMed
      / segfaulted) into a pool recycle with *serial quarantine*: a
      broken pool takes down every in-flight future, so blame cannot be
      attributed while several trials share it.  The casualties are
      therefore resubmitted one trial at a time on the fresh pool — an
      innocent probe completes and walks free; the true killer dies
      alone, is now blamed with certainty, and is retried up to
      ``max(retry_budget, 1)`` times before being recorded as an
      explicit :class:`TrialFailure`.  One repeatedly-dying trial can
      never take a neighbour down with it;
    * drains promptly on interruption: completed results are kept,
      queued chunks are abandoned.

    ``record`` is called exactly once per finished trial — in spec
    order within a chunk, in completion order across chunks — and is
    expected to journal durably.  The caller re-emits the collected
    results in submission order regardless of completion order.
    """
    queue: Deque[Tuple[_TrialSpec, ...]] = deque(
        tuple(pending[i:i + chunk_size])
        for i in range(0, len(pending), chunk_size))
    pool_attempts: Dict[int, int] = {}
    quarantine: set = set()
    inflight: Dict[Any, Tuple[Tuple[_TrialSpec, ...],
                              Optional[float]]] = {}

    def make_task(specs: Tuple[_TrialSpec, ...]) -> _ChunkTask:
        # A pool created after the config registration forked workers
        # that inherited the registry; older (warm-reused) pools need
        # the config embedded in the chunk.
        return _ChunkTask(token=token,
                          config=None if lease.inherits else config,
                          specs=specs, guarded=guarded)

    def settle_chunk(specs: Tuple[_TrialSpec, ...],
                     results: List[Union[TrialResult,
                                         TrialFailure]]) -> None:
        if len(results) != len(specs):  # pragma: no cover - invariant
            raise RuntimeError(
                f"chunk returned {len(results)} results for "
                f"{len(specs)} trials — per-trial attribution lost")
        for spec, result in zip(specs, results):
            quarantine.discard(spec.trial_index)
            record(spec.trial_index, result)

    def fail_spec(spec: _TrialSpec, failure: TrialFailure) -> None:
        quarantine.discard(spec.trial_index)
        record(spec.trial_index, failure)

    def recycle(casualties: List[Tuple[_TrialSpec, ...]]) -> None:
        """Replace a broken pool; quarantine, retry or fail casualties.

        Blame is only assigned when a single trial was in flight (it is
        then certainly the one whose worker died); a multi-casualty
        break quarantines everyone unblamed and lets the serial probes
        sort killer from bystander.  Casualty chunks are always
        requeued as single-trial probes so the next break is
        attributable.
        """
        specs = [spec for chunk in casualties for spec in chunk]
        lease.recycle()
        budget = max(retry_budget, 1)
        certain = len(specs) == 1
        for spec in reversed(specs):
            count = pool_attempts.get(spec.trial_index, 0)
            if certain:
                count += 1
                pool_attempts[spec.trial_index] = count
            if count > budget:
                fail_spec(spec, TrialFailure(
                    trial_index=spec.trial_index, attempts=count,
                    error_type=POOL_ERROR_TYPE,
                    error=f"worker process died {count} times while "
                          f"running this trial"))
            else:
                quarantine.add(spec.trial_index)
                queue.appendleft((spec,))

    try:
        while (queue or inflight) and not state.interrupted:
            # Top up the pool, one in-flight chunk per worker — except
            # while quarantined casualties await their serial probes.
            while queue and len(inflight) < (1 if quarantine
                                             else lease.workers):
                specs = queue.popleft()
                deadline = (None if timeout_s is None
                            else time.monotonic()
                            + timeout_s * len(specs))
                try:
                    future = lease.pool.submit(_run_chunk,
                                               make_task(specs))
                except (BrokenProcessPool, RuntimeError):
                    # The pool died between polls; recycle and retry.
                    casualties = [c for c, _ in inflight.values()]
                    casualties.append(specs)
                    inflight.clear()
                    recycle(casualties)
                    break
                inflight[future] = (specs, deadline)
            if not inflight:
                continue
            wait_s = _POLL_S
            deadlines = [d for _, d in inflight.values()
                         if d is not None]
            if deadlines:
                wait_s = min(wait_s,
                             max(0.0, min(deadlines) - time.monotonic()))
            done, _ = wait(set(inflight), timeout=wait_s,
                           return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                specs, _ = inflight.pop(future)
                try:
                    settle_chunk(specs, future.result())
                except BrokenProcessPool:
                    broken = True
                    inflight[future] = (specs, None)
                except Exception:
                    if guarded:
                        raise  # _run_trial_guarded never raises these
                    lease.abandon()
                    raise
            if broken:
                casualties = [c for c, _ in inflight.values()]
                inflight.clear()
                recycle(casualties)
                continue
            # Deadline pass: harvest any just-finished stragglers, then
            # reap whatever is genuinely past its deadline.
            now = time.monotonic()
            expired = [future for future, (c, d) in inflight.items()
                       if d is not None and now >= d]
            if not expired:
                continue
            for future in list(expired):
                if future.done():  # finished in the polling gap
                    expired.remove(future)
                    specs, _ = inflight.pop(future)
                    try:
                        settle_chunk(specs, future.result())
                    except BrokenProcessPool:
                        inflight[future] = (specs, None)
            hung = [inflight.pop(future)[0] for future in expired
                    if future in inflight]
            if not hung:
                continue
            for specs in hung:
                for spec in specs:
                    fail_spec(spec, TrialFailure(
                        trial_index=spec.trial_index, attempts=1,
                        error_type=TIMEOUT_ERROR_TYPE,
                        error=f"trial exceeded its {timeout_s}s "
                              "deadline and was reaped"))
            # The hung workers must die; innocents rerun unpunished
            # (deadline reaping is not their failure).
            survivors = [c for c, _ in inflight.values()]
            inflight.clear()
            lease.recycle()
            queue.extendleft(reversed(survivors))
    finally:
        if inflight or queue:
            # Interrupted (or propagating an error): abandon cleanly.
            lease.abandon()
        else:
            lease.release()


def run_trials(n_trials: int,
               n_extenders: int,
               n_users: int,
               policies: Sequence[str] = ("wolt", "greedy", "rssi"),
               seed: int = 0,
               width_m: float = 100.0,
               height_m: float = 100.0,
               phy: Optional[WifiPhy] = None,
               plc_mode: str = "redistribute",
               workers: Optional[int] = None,
               chunk_size: Optional[int] = None,
               max_retries: Optional[int] = None,
               fault_hook: Optional[FaultHook] = None,
               checkpoint: Optional[Union[str, Path]] = None,
               resume: bool = False,
               timeout_s: Optional[float] = None) -> TrialRunResult:
    """Monte-Carlo policy comparison over random floors (Fig. 6a).

    Each trial samples a fresh enterprise floor (wiring plant, extender
    and user placement) and runs every policy on the same scenario.

    Trials are seeded with per-trial children of
    ``numpy.random.SeedSequence(seed)`` (trial ``t`` gets the ``t``-th
    spawn); each trial additionally pre-spawns one grandchild per
    *policy name*, so every policy owns a stream independent of which
    other policies run alongside it.  Results are therefore
    bit-identical across worker counts, across retry attempts, across
    checkpoint/resume boundaries, and — for any single policy — across
    ``policies`` subsets.

    Durable mode (any of ``checkpoint``/``timeout_s`` set, or
    ``max_retries`` not None) never loses completed work: trial errors
    become :class:`TrialFailure` records, completed trials are
    journaled before the next one starts, and SIGINT/SIGTERM drain
    gracefully instead of destroying the run.

    Args:
        n_trials: number of independent scenarios (paper: 100).
        n_extenders: extenders per floor (paper: 15).
        n_users: users per floor (paper: 36).
        policies: subset of :data:`POLICY_NAMES` to run (no duplicates).
        seed: master seed for the :class:`~numpy.random.SeedSequence`.
        width_m / height_m: floor dimensions (paper: 100 m x 100 m).
        phy: optional WiFi PHY override.
        plc_mode: PLC sharing law used for scoring (the paper's
            simulator corresponds to ``"fixed"``).
        workers: number of worker processes; ``None``, 0, or 1 run
            serially in-process (except that ``timeout_s`` promotes
            ``workers=1`` to a supervised single-worker pool — a
            deadline needs a process boundary to reap across).  Pools
            are kept warm and reused by later ``run_trials`` calls with
            the same worker count (see :func:`shutdown_warm_pools`).
        chunk_size: trials per dispatched chunk.  ``None`` (default)
            sizes chunks automatically (≈ two waves per worker, capped
            at 16) so submit/result IPC is amortized; results are
            always re-emitted in trial order regardless of chunk
            completion order.  ``timeout_s`` forces single-trial chunks
            — the deadline contract is per trial.  Ignored on serial
            runs.
        max_retries: when ``None`` (default), a trial exception
            propagates to the caller unchanged (unless durable mode is
            active, which implies a budget of 0).  When an int, a
            crashed trial is retried up to ``max_retries`` times with
            the same SeedSequence children and, on exhaustion, returned
            as an explicit :class:`TrialFailure` record — surviving
            trials are never lost.
        fault_hook: optional ``hook(trial_index, attempt)`` run at the
            start of every attempt; may raise to inject trial crashes
            (see :class:`repro.sim.faults.CrashSchedule`).  Must be
            picklable when ``workers`` is used.
        checkpoint: journal path.  Every completed trial is appended to
            a crash-consistent :class:`~repro.sim.checkpoint.TrialStore`
            (flushed + fsynced per record) and the journal is compacted
            to a canonical snapshot when the run finishes.
        resume: continue an existing checkpoint: completed trial
            indices are skipped and their stored results merged, making
            the resumed run bit-identical to a cold run with the same
            seed.  A checkpoint written under different scientific
            parameters is rejected with
            :class:`~repro.sim.checkpoint.FingerprintMismatch`.
        timeout_s: per-trial wall-clock deadline.  A trial that
            outlives it is reaped (its worker killed, the pool
            recycled) and recorded as a :class:`TrialFailure` with
            ``error_type=TIMEOUT_ERROR_TYPE``; remaining trials
            continue.  Requires ``workers >= 1``.

    Returns:
        A :class:`TrialRunResult` (a plain ``list`` plus the
        ``interrupted``/``resumed``/``checkpoint`` markers) holding one
        :class:`TrialResult` — or, in guarded/durable mode, possibly a
        :class:`TrialFailure` — per completed trial, in trial order.
        After an interruption the list covers only the completed
        prefix-set of trials.
    """
    if n_trials < 0:
        raise ValueError("n_trials must be non-negative")
    unknown = set(policies) - set(POLICY_NAMES)
    if unknown:
        raise ValueError(f"unknown policies: {sorted(unknown)}")
    dupes = sorted(name for name, count in Counter(policies).items()
                   if count > 1)
    if dupes:
        raise ValueError(
            f"duplicate policies: {dupes} — outcomes are keyed by "
            "policy name, so a duplicate entry would silently collapse")
    if max_retries is not None and max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    if timeout_s is not None and (workers is None or workers < 1):
        raise ValueError(
            "timeout_s requires workers >= 1: reaping a hung trial "
            "needs a worker process boundary to kill across")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")

    store: Optional[TrialStore] = None
    if checkpoint is not None:
        digest, params = _run_fingerprint(
            n_trials, n_extenders, n_users, policies, seed, width_m,
            height_m, phy, plc_mode)
        store = TrialStore(checkpoint, digest, params=params,
                           resume=resume)

    durable = store is not None or timeout_s is not None
    guarded = max_retries is not None or durable
    config = _RunConfig(
        n_extenders=n_extenders, n_users=n_users,
        policies=tuple(policies), width_m=width_m, height_m=height_m,
        phy=phy, plc_mode=plc_mode, fault_hook=fault_hook,
        max_retries=0 if max_retries is None else max_retries)
    children = np.random.SeedSequence(seed).spawn(n_trials)
    specs = []
    for index, child in enumerate(children):
        policy_children = child.spawn(len(POLICY_NAMES))
        policy_seqs = {name: policy_children[k]
                       for k, name in enumerate(POLICY_NAMES)}
        specs.append(_TrialSpec(trial_index=index, scenario_seq=child,
                                policy_seqs=policy_seqs))

    results: Dict[int, Union[TrialResult, TrialFailure]] = {}
    resumed = 0
    if store is not None:
        for index, payload in store.records.items():
            results[index] = _decode_record(payload)
        resumed = len(results)
    pending = [s for s in specs if s.trial_index not in results]

    def record(index: int,
               result: Union[TrialResult, TrialFailure]) -> None:
        results[index] = result
        if store is not None:
            store.append(index, _encode_record(result))

    state = _InterruptState()
    # timeout_s promotes workers=1 to a one-worker pool: a deadline is
    # only enforceable across a process boundary.
    use_pool = (workers is not None
                and (workers > 1 or timeout_s is not None))
    try:
        with _SignalGuard(state) if store is not None else \
                _NullContext():
            if use_pool:
                n_workers = max(int(workers or 1), 1)
                if timeout_s is not None:
                    effective_chunk = 1  # the deadline is per trial
                elif chunk_size is not None:
                    effective_chunk = chunk_size
                else:
                    effective_chunk = _auto_chunk_size(len(pending),
                                                       n_workers)
                # Register the config *before* leasing the pool: a
                # fresh pool forks its workers lazily on first submit,
                # so they inherit the registry entry and chunks can
                # travel config-free.
                token = _register_config(config)
                try:
                    lease = _PoolLease(n_workers)
                    _run_supervised(pending, config, token, lease,
                                    effective_chunk, guarded,
                                    max_retries or 0, timeout_s,
                                    record, state)
                finally:
                    _SHARED_CONFIGS.pop(token, None)
            else:
                for spec in pending:
                    if state.interrupted:
                        break
                    payload = spec.payload(config)
                    if guarded:
                        record(spec.trial_index,
                               _run_trial_guarded(payload))
                    else:
                        record(spec.trial_index,
                               _run_single_trial(payload))
        if store is not None:
            if state.interrupted:
                # Leave the raw journal in place (marker included) for
                # forensics; the next resume completes and compacts it.
                store.append_event("interrupted",
                                   signal=state.signal_name,
                                   completed=len(results))
            else:
                store.snapshot()
    finally:
        if store is not None:
            store.close()
    return TrialRunResult(
        [results[i] for i in sorted(results)],
        interrupted=state.signal_name, resumed=resumed,
        checkpoint=None if checkpoint is None else str(checkpoint))


class _NullContext:
    """``contextlib.nullcontext`` (named for the signal-guard branch)."""

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


def run_online_comparison(n_epochs: int,
                          n_extenders: int,
                          initial_users: int,
                          policies: Sequence[str] = ("wolt", "greedy"),
                          seed: int = 0,
                          arrival_rate: float = 3.0,
                          departure_rate: float = 1.0,
                          epoch_duration: float = 16.5,
                          plc_mode: str = "redistribute"
                          ) -> Dict[str, List[EpochStats]]:
    """Temporal comparison with identical floors per policy (Fig. 6b/6c).

    Every policy sees the same floor plan and its own identically-seeded
    arrival process, so differences are attributable to the policy.

    The floor-plan and arrival-process streams are independent children
    of ``SeedSequence(seed)`` (spawned afresh per policy, so each policy
    replays identical randomness).

    Policy names are validated up front — before any floor plan is
    sampled or epoch run — so a typo fails fast instead of deep inside
    the first policy's simulation.
    """
    unknown = set(policies) - set(POLICY_NAMES)
    if unknown:
        raise ValueError(f"unknown policies: {sorted(unknown)}")
    histories: Dict[str, List[EpochStats]] = {}
    for policy in policies:
        plan_seq, arrival_seq = np.random.SeedSequence(seed).spawn(2)
        rng = np.random.default_rng(plan_seq)
        plan = sample_floor_plan(n_extenders, rng)
        sim = OnlineSimulation(plan, policy,
                               rng=np.random.default_rng(arrival_seq),
                               arrival_rate=arrival_rate,
                               departure_rate=departure_rate,
                               epoch_duration=epoch_duration,
                               plc_mode=plc_mode)
        sim.seed_users(initial_users)
        histories[policy] = sim.run(n_epochs)
    return histories
