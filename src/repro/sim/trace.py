"""Trace recording and replay for online simulations.

Experiments on dynamic networks are only useful if they can be
re-examined: which users arrived when, what the controller decided, and
what throughput resulted.  This module serializes
:class:`~repro.sim.dynamics.EpochStats` histories (and raw scenario
snapshots) to JSON, so simulation outputs can be archived in a results
directory, diffed across code versions, and replayed into the metric
pipeline without re-running the simulation.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from ..core.problem import Scenario
from .checkpoint import atomic_write_text
from .dynamics import EpochStats

__all__ = ["save_history", "load_history", "save_scenario",
           "load_scenario"]

#: Format version stamped into every trace file.
TRACE_VERSION = 1


def _check_trace_header(payload: Dict[str, object], kind: str,
                        path: Union[str, Path]) -> None:
    """Validate a deserialized trace envelope before trusting it."""
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is not a trace file")
    if payload.get("kind") != kind:
        raise ValueError(f"{path} is not a {kind} trace")
    if payload.get("version") != TRACE_VERSION:
        raise ValueError(f"unsupported trace version "
                         f"{payload.get('version')!r}")


def save_history(path: Union[str, Path],
                 histories: Dict[str, Sequence[EpochStats]]) -> None:
    """Write per-policy epoch histories to a JSON trace file.

    Args:
        path: destination file.
        histories: mapping of policy name to its epoch statistics.
    """
    payload = {
        "version": TRACE_VERSION,
        "kind": "epoch-history",
        "policies": {
            policy: [asdict(epoch) for epoch in history]
            for policy, history in histories.items()
        },
    }
    atomic_write_text(path, json.dumps(payload, indent=2))


def load_history(path: Union[str, Path]) -> Dict[str, List[EpochStats]]:
    """Read a trace file written by :func:`save_history`."""
    payload = json.loads(Path(path).read_text())
    _check_trace_header(payload, "epoch-history", path)
    return {
        policy: [EpochStats(**epoch) for epoch in history]
        for policy, history in payload["policies"].items()
    }


def save_scenario(path: Union[str, Path], scenario: Scenario) -> None:
    """Write a scenario snapshot (rates, capacities, ids) to JSON."""
    payload = {
        "version": TRACE_VERSION,
        "kind": "scenario",
        "wifi_rates": scenario.wifi_rates.tolist(),
        "plc_rates": scenario.plc_rates.tolist(),
        "capacities": (None if scenario.capacities is None
                       else scenario.capacities.tolist()),
        "user_ids": (None if scenario.user_ids is None
                     else np.asarray(scenario.user_ids).tolist()),
    }
    atomic_write_text(path, json.dumps(payload, indent=2))


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Read a scenario snapshot written by :func:`save_scenario`."""
    payload = json.loads(Path(path).read_text())
    _check_trace_header(payload, "scenario", path)
    return Scenario(
        wifi_rates=np.asarray(payload["wifi_rates"], dtype=float),
        plc_rates=np.asarray(payload["plc_rates"], dtype=float),
        capacities=(None if payload["capacities"] is None
                    else np.asarray(payload["capacities"], dtype=int)),
        user_ids=(None if payload["user_ids"] is None
                  else np.asarray(payload["user_ids"])),
    )
