"""Fluid traffic models: saturated TCP flows and finite-demand users.

The paper's model assumes saturated downlink TCP traffic and argues
(§IV-A) that long-term TCP fairness makes per-flow throughputs equal, so
only long-term shares need modelling.  :func:`delivered_bytes` turns a
throughput report into per-user transfer volumes over a window.

As an extension beyond the paper, :func:`evaluate_with_demands` handles
users with *finite* demands (e.g. a 5 Mbps video stream): WiFi cell time
is allocated max-min fairly against per-user demand caps, the resulting
per-cell offered load drives the PLC allocation, and surplus capacity is
recycled — letting experiments study WOLT under non-saturated load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.problem import Scenario, UNASSIGNED, validate_assignment
from ..plc.sharing import allocate_backhaul, max_min_time_shares

__all__ = ["delivered_bytes", "DemandReport", "evaluate_with_demands"]


def delivered_bytes(user_throughputs_mbps: Sequence[float],
                    duration_s: float) -> np.ndarray:
    """Bytes each saturated TCP flow transfers in ``duration_s`` seconds."""
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    tput = np.asarray(user_throughputs_mbps, dtype=float)
    if np.any(tput < 0):
        raise ValueError("throughputs must be non-negative")
    return tput * 1e6 * duration_s / 8.0


@dataclass(frozen=True)
class DemandReport:
    """Throughput breakdown for demand-limited users.

    Attributes:
        user_throughputs: achieved per-user throughput (Mbps).
        satisfied: per-user flag — demand fully met.
        extender_throughputs: per-extender carried end-to-end load.
        plc_time_shares: granted PLC medium time fractions.
    """

    user_throughputs: np.ndarray
    satisfied: np.ndarray
    extender_throughputs: np.ndarray
    plc_time_shares: np.ndarray

    @property
    def aggregate(self) -> float:
        return float(self.user_throughputs.sum())


def _wifi_cell_allocation(rates: np.ndarray,
                          demands: np.ndarray) -> np.ndarray:
    """Max-min fair airtime allocation inside one WiFi cell.

    Each user ``i`` needs airtime ``demand_i / rate_i`` to meet its
    demand; the cell has unit airtime shared max-min fairly.  Returns
    achieved per-user throughputs.
    """
    needed = np.where(rates > 0, demands / np.maximum(rates, 1e-12), np.inf)
    shares = max_min_time_shares(needed)
    return np.minimum(shares * rates, demands)


def _max_min_capped(total: float, caps: np.ndarray) -> np.ndarray:
    """Max-min fair division of ``total`` among users with caps.

    TCP's long-term fairness (§IV-A of the paper) gives every flow
    through a shared bottleneck an equal share, except that a flow never
    receives more than it can use (its cap).
    """
    if total <= 0 or caps.size == 0:
        return np.zeros_like(caps)
    fractions = max_min_time_shares(caps / total)
    return fractions * total


def evaluate_with_demands(scenario: Scenario,
                          assignment: Sequence[int],
                          demands_mbps: Sequence[float],
                          max_iterations: int = 20) -> DemandReport:
    """End-to-end throughput with per-user demand caps.

    The WiFi and PLC stages are coupled (a PLC bottleneck reduces the
    useful WiFi load and vice versa), so the solution is computed by
    fixed-point iteration: WiFi-feasible offered loads drive the PLC
    max-min allocation, whose grants cap the next round's effective
    demands.  Converges in a few iterations (allocations are monotone
    non-increasing).

    Args:
        scenario: the network snapshot.
        assignment: per-user extender indices (``-1`` = offline user).
        demands_mbps: per-user demand caps; ``np.inf`` for saturated.
        max_iterations: fixed-point iteration cap.
    """
    assign = validate_assignment(scenario, assignment,
                                 require_complete=False)
    demands = np.asarray(demands_mbps, dtype=float)
    if demands.shape[0] != scenario.n_users:
        raise ValueError("one demand per user is required")
    if np.any(demands < 0):
        raise ValueError("demands must be non-negative")

    n_ext = scenario.n_extenders
    user_tput = np.zeros(scenario.n_users)
    effective = demands.copy()
    plc_shares = np.zeros(n_ext)
    ext_tput = np.zeros(n_ext)
    for _ in range(max_iterations):
        # WiFi stage: per-cell max-min airtime against effective demands.
        wifi_load = np.zeros(n_ext)
        per_user = np.zeros(scenario.n_users)
        for j in range(n_ext):
            members = np.flatnonzero(assign == j)
            if members.size == 0:
                continue
            rates = scenario.wifi_rates[members, j]
            achieved = _wifi_cell_allocation(rates, effective[members])
            per_user[members] = achieved
            wifi_load[j] = achieved.sum()
        # PLC stage: the cells' carried load contends for medium time.
        alloc = allocate_backhaul(scenario.plc_rates, wifi_load)
        plc_shares = alloc.time_shares
        ext_tput = np.minimum(wifi_load, alloc.throughputs)
        # Re-divide each PLC-bottlenecked cell's grant max-min fairly
        # (TCP fairness: small flows keep their full demand, big flows
        # shrink equally) and iterate: a user's reduced effective demand
        # frees WiFi airtime and PLC time for others.
        new_effective = effective.copy()
        for j in range(n_ext):
            members = np.flatnonzero(assign == j)
            if members.size == 0 or wifi_load[j] <= 0:
                continue
            if ext_tput[j] + 1e-12 < wifi_load[j]:
                per_user[members] = _max_min_capped(
                    float(ext_tput[j]), per_user[members])
            new_effective[members] = np.minimum(effective[members],
                                                per_user[members])
        if np.allclose(new_effective, effective, rtol=1e-9, atol=1e-9):
            user_tput = per_user
            break
        effective = new_effective
        user_tput = per_user
    satisfied = user_tput >= demands - 1e-6
    satisfied[assign == UNASSIGNED] = False
    return DemandReport(user_throughputs=user_tput,
                        satisfied=satisfied,
                        extender_throughputs=ext_tput,
                        plc_time_shares=plc_shares)
