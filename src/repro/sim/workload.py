"""Workload generators: realistic user placement and arrival intensity.

The paper distributes users uniformly on the floor and drives arrivals
with a constant-rate Poisson process.  Real enterprises are lumpier on
both axes:

* **Spatial hotspots** — meeting rooms, cafeterias and desk clusters
  concentrate users.  :func:`hotspot_positions` draws users from a
  mixture of Gaussian hotspots plus a uniform background; hotspot
  crowding is exactly the regime where RSSI association collapses onto
  one extender and WOLT's load spreading matters most.
* **Diurnal intensity** — arrivals ebb and flow with office hours.
  :class:`DiurnalProfile` modulates a base Poisson rate over the day,
  for long-horizon online simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["hotspot_positions", "DiurnalProfile"]


def hotspot_positions(n_users: int,
                      width_m: float,
                      height_m: float,
                      rng: np.random.Generator,
                      n_hotspots: int = 3,
                      hotspot_fraction: float = 0.7,
                      hotspot_sigma_m: float = 8.0,
                      centers: Optional[np.ndarray] = None) -> np.ndarray:
    """User positions from a hotspot mixture.

    A ``hotspot_fraction`` of users gather around Gaussian hotspots
    (meeting rooms); the rest are uniform background (corridors,
    roamers).  Positions are clipped to the floor.

    Args:
        n_users: number of users to place.
        width_m / height_m: floor dimensions.
        rng: random generator.
        n_hotspots: hotspot count (ignored when ``centers`` given).
        hotspot_fraction: share of users in hotspots, in ``[0, 1]``.
        hotspot_sigma_m: hotspot spread (standard deviation).
        centers: optional ``(k, 2)`` hotspot centres.

    Returns:
        ``(n_users, 2)`` coordinates.
    """
    if n_users < 0:
        raise ValueError("n_users must be non-negative")
    if not 0 <= hotspot_fraction <= 1:
        raise ValueError("hotspot_fraction must be in [0, 1]")
    if hotspot_sigma_m <= 0:
        raise ValueError("hotspot_sigma_m must be positive")
    if centers is None:
        if n_hotspots < 1:
            raise ValueError("need at least one hotspot")
        centers = np.column_stack([
            rng.uniform(0.15 * width_m, 0.85 * width_m, n_hotspots),
            rng.uniform(0.15 * height_m, 0.85 * height_m, n_hotspots)])
    else:
        centers = np.atleast_2d(np.asarray(centers, dtype=float))
        if centers.shape[1] != 2:
            raise ValueError("centers must be a (k, 2) array")
    positions = np.empty((n_users, 2))
    for i in range(n_users):
        if rng.random() < hotspot_fraction:
            centre = centers[rng.integers(centers.shape[0])]
            positions[i] = centre + rng.normal(0.0, hotspot_sigma_m, 2)
        else:
            positions[i] = [rng.uniform(0, width_m),
                            rng.uniform(0, height_m)]
    positions[:, 0] = np.clip(positions[:, 0], 0.0, width_m)
    positions[:, 1] = np.clip(positions[:, 1], 0.0, height_m)
    return positions


@dataclass(frozen=True)
class DiurnalProfile:
    """Office-hours modulation of an arrival rate.

    The intensity follows a raised-cosine business day: near-zero
    before ``start_hour`` and after ``end_hour``, peaking at
    ``peak_multiplier`` x base rate mid-day, with a small
    ``off_hours_multiplier`` floor (cleaners, night owls).

    Attributes:
        start_hour / end_hour: the business-day window (0-24).
        peak_multiplier: mid-day intensity relative to the base rate.
        off_hours_multiplier: floor intensity outside the window.
    """

    start_hour: float = 8.0
    end_hour: float = 18.0
    peak_multiplier: float = 2.0
    off_hours_multiplier: float = 0.05

    def __post_init__(self) -> None:
        if not 0 <= self.start_hour < self.end_hour <= 24:
            raise ValueError("need 0 <= start < end <= 24")
        if self.peak_multiplier <= 0 or self.off_hours_multiplier < 0:
            raise ValueError("multipliers must be positive (floor >= 0)")

    def multiplier(self, hour_of_day: float) -> float:
        """Intensity multiplier at an hour of day (wraps modulo 24)."""
        hour = float(hour_of_day) % 24.0
        if not self.start_hour <= hour <= self.end_hour:
            return self.off_hours_multiplier
        span = self.end_hour - self.start_hour
        phase = (hour - self.start_hour) / span  # 0..1 across the day
        shape = 0.5 * (1.0 - np.cos(2.0 * np.pi * phase))  # 0..1..0
        return (self.off_hours_multiplier
                + (self.peak_multiplier - self.off_hours_multiplier)
                * float(shape))

    def rate_at(self, base_rate: float, hour_of_day: float) -> float:
        """Arrival rate at an hour of day."""
        if base_rate < 0:
            raise ValueError("base_rate must be non-negative")
        return base_rate * self.multiplier(hour_of_day)

    def sample_arrival_times(self, base_rate: float,
                             duration_hours: float,
                             rng: np.random.Generator,
                             start_hour: float = 0.0) -> np.ndarray:
        """Arrival times (hours) from the non-homogeneous Poisson process.

        Uses thinning against the peak intensity.
        """
        if duration_hours <= 0:
            raise ValueError("duration must be positive")
        peak = base_rate * max(self.peak_multiplier,
                               self.off_hours_multiplier)
        if peak <= 0:
            return np.empty(0)
        times = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / peak))
            if t >= duration_hours:
                break
            accept = (self.rate_at(base_rate, start_hour + t) / peak)
            if rng.random() < accept:
                times.append(t)
        return np.asarray(times)
