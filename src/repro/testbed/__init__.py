"""Emulated hardware testbed: devices, measurement study, calibration."""

from .calibration import FIG2B_ISOLATION_MBPS, sample_isolation_capacities
from .devices import EmulatedTestbed, IperfSample, Laptop, PlcExtender
from .measurement import (plc_isolation_study, plc_sharing_study,
                          wifi_sharing_study)

__all__ = [
    "EmulatedTestbed", "PlcExtender", "Laptop", "IperfSample",
    "wifi_sharing_study", "plc_isolation_study", "plc_sharing_study",
    "FIG2B_ISOLATION_MBPS", "sample_isolation_capacities",
]
