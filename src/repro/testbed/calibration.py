"""PLC capacity calibration: the measured isolation-throughput ranges.

The paper measures each PLC link's isolation throughput ("rate") with
iperf3 by saturating the link from the Central Controller (§V-A), and
reports a 60-160 Mbps spread across outlets (Fig. 2b).  This module
captures those measurements:

* :data:`FIG2B_ISOLATION_MBPS` — the four testbed links of Fig. 2b/2c.
* :func:`sample_isolation_capacities` — a calibrated sampler that
  reproduces the measured spread for larger simulated buildings, used
  when a wiring-graph model is overkill.
"""

from __future__ import annotations


import numpy as np

__all__ = ["FIG2B_ISOLATION_MBPS", "sample_isolation_capacities"]

#: Isolation throughputs of the four testbed PLC links in Fig. 2b (Mbps).
#: The paper reports the range 60-160 Mbps; the individual bar heights
#: are read off the figure.
FIG2B_ISOLATION_MBPS = (60.0, 90.0, 120.0, 160.0)


def sample_isolation_capacities(n_links: int,
                                rng: np.random.Generator,
                                low_mbps: float = 60.0,
                                high_mbps: float = 160.0,
                                sigma: float = 0.35) -> np.ndarray:
    """Sample PLC isolation capacities matching the measured spread.

    Draws log-normal capacities (PLC attenuation in dB is roughly normal
    across outlets, so rates are roughly log-normal) centred on the
    geometric mean of the measured range and clipped to it.

    Args:
        n_links: number of PLC links to sample.
        rng: random generator.
        low_mbps: lower clip (paper's weakest link: 60 Mbps).
        high_mbps: upper clip (paper's strongest link: 160 Mbps).
        sigma: log-space standard deviation.

    Returns:
        Array of ``n_links`` capacities in Mbps.
    """
    if n_links < 1:
        raise ValueError("n_links must be positive")
    if not 0 < low_mbps < high_mbps:
        raise ValueError("need 0 < low_mbps < high_mbps")
    center = np.sqrt(low_mbps * high_mbps)
    draws = center * np.exp(rng.normal(0.0, sigma, size=n_links))
    return np.clip(draws, low_mbps, high_mbps)
