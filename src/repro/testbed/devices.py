"""Emulated testbed hardware: extenders, laptops, central unit, iperf.

The paper's testbed (§V-A) is three TP-Link TL-WPA8630 extenders, one
TL-PA8010 central unit, seven laptops and a Windows server running
iperf3.  The hardware reduces to two measured behaviours — WiFi
throughput-fair sharing and PLC time-fair sharing with leftover
redistribution — which :mod:`repro.net.engine` implements; this module
wraps that engine in a device-level API so measurement procedures read
like the paper's experiments ("plug in an extender", "connect a laptop",
"run iperf for 30 s"), including the measurement noise a real testbed
exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.problem import Scenario
from ..net.engine import evaluate
from ..wifi.phy import WifiPhy

__all__ = ["PlcExtender", "Laptop", "EmulatedTestbed", "IperfSample"]


@dataclass
class PlcExtender:
    """An emulated TL-WPA8630-class PLC-WiFi extender.

    Attributes:
        name: device label ("ext-1", ...).
        position: (x, y) placement in metres.
        plc_isolation_mbps: the link's measured isolation throughput
            ("rate" ``c_j``).
        powered: whether the extender is plugged in.
    """

    name: str
    position: Tuple[float, float]
    plc_isolation_mbps: float
    powered: bool = True

    def __post_init__(self) -> None:
        if self.plc_isolation_mbps < 0:
            raise ValueError("PLC rate must be non-negative")


@dataclass
class Laptop:
    """An emulated client laptop.

    Attributes:
        name: device label.
        position: (x, y) placement in metres.
        wired_to: name of an extender reached over Ethernet (bypassing
            WiFi entirely, as in the Fig. 2b/2c measurements), or None.
        associated_to: name of the extender joined over WiFi, or None.
    """

    name: str
    position: Tuple[float, float]
    wired_to: Optional[str] = None
    associated_to: Optional[str] = None


@dataclass(frozen=True)
class IperfSample:
    """One iperf3 measurement.

    Attributes:
        laptop: client name.
        throughput_mbps: measured saturated downlink TCP throughput.
        duration_s: measurement duration.
    """

    laptop: str
    throughput_mbps: float
    duration_s: float


class EmulatedTestbed:
    """A lab bench of emulated PLC-WiFi devices.

    Args:
        phy: WiFi PHY/propagation model shared by all extenders.
        noise_fraction: relative std-dev of iperf measurement noise
            (a real testbed's run-to-run variation; 0 disables it).
        rng: generator for measurement noise.
    """

    def __init__(self, phy: Optional[WifiPhy] = None,
                 noise_fraction: float = 0.03,
                 rng: Optional[np.random.Generator] = None) -> None:
        if noise_fraction < 0:
            raise ValueError("noise_fraction must be non-negative")
        self.phy = phy or WifiPhy()
        self.noise_fraction = noise_fraction
        self.rng = rng or np.random.default_rng(0)
        self.extenders: Dict[str, PlcExtender] = {}
        self.laptops: Dict[str, Laptop] = {}

    # ------------------------------------------------------------------
    # bench setup

    def plug_extender(self, extender: PlcExtender) -> None:
        """Plug an extender into an outlet."""
        if extender.name in self.extenders:
            raise ValueError(f"duplicate extender {extender.name!r}")
        self.extenders[extender.name] = extender

    def unplug_extender(self, name: str) -> None:
        """Unplug (power off) an extender; its clients go offline."""
        self._extender(name).powered = False

    def power_extender(self, name: str) -> None:
        """Re-plug a previously unplugged extender."""
        self._extender(name).powered = True

    def place_laptop(self, laptop: Laptop) -> None:
        """Put a laptop on the bench."""
        if laptop.name in self.laptops:
            raise ValueError(f"duplicate laptop {laptop.name!r}")
        self.laptops[laptop.name] = laptop

    def move_laptop(self, name: str, position: Tuple[float, float]) -> None:
        """Move a laptop to a new position."""
        self._laptop(name).position = tuple(position)

    def wire(self, laptop: str, extender: str) -> None:
        """Connect a laptop to an extender with an Ethernet cable."""
        self._extender(extender)
        lp = self._laptop(laptop)
        lp.wired_to = extender
        lp.associated_to = None

    def associate(self, laptop: str, extender: str) -> None:
        """Associate a laptop with an extender over WiFi."""
        ext = self._extender(extender)
        if not ext.powered:
            raise ValueError(f"extender {extender!r} is not powered")
        lp = self._laptop(laptop)
        if self.wifi_rate(laptop, extender) <= 0:
            raise ValueError(
                f"{laptop!r} is out of range of {extender!r}")
        lp.associated_to = extender
        lp.wired_to = None

    def associate_strongest(self, laptop: str) -> str:
        """Associate a laptop with its strongest-RSSI powered extender."""
        lp = self._laptop(laptop)
        best_name, best_rssi = None, -np.inf
        for name, ext in sorted(self.extenders.items()):
            if not ext.powered:
                continue
            rssi = self.phy.rssi_dbm(self._distance(lp, ext))
            if rssi > best_rssi and self.wifi_rate(laptop, name) > 0:
                best_name, best_rssi = name, rssi
        if best_name is None:
            raise ValueError(f"{laptop!r} hears no powered extender")
        self.associate(laptop, best_name)
        return best_name

    # ------------------------------------------------------------------
    # radio helpers

    def wifi_rate(self, laptop: str, extender: str) -> float:
        """WiFi PHY rate (Mbps) between a laptop and an extender."""
        lp = self._laptop(laptop)
        ext = self._extender(extender)
        return self.phy.rate_at_distance(self._distance(lp, ext))

    def scan(self, laptop: str) -> Dict[str, float]:
        """A laptop's scan: PHY rate toward every powered extender."""
        return {name: self.wifi_rate(laptop, name)
                for name, ext in sorted(self.extenders.items())
                if ext.powered}

    # ------------------------------------------------------------------
    # measurement

    def run_iperf(self, duration_s: float = 30.0) -> List[IperfSample]:
        """Saturated downlink iperf3 to every connected laptop.

        Wired laptops saturate their extender's PLC link directly (the
        Fig. 2b/2c methodology: "Ethernet capacity is very high at
        1 Gbps so any throughput degradation is caused by the PLC");
        WiFi laptops exercise the full concatenated link.

        Returns:
            One sample per connected laptop, in bench (name) order.
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        scenario, assignment, names = self._build_scenario()
        report = evaluate(scenario, assignment)
        samples = []
        for idx, name in enumerate(names):
            tput = float(report.user_throughputs[idx])
            if self.noise_fraction > 0 and tput > 0:
                tput *= float(1.0 + self.rng.normal(
                    0.0, self.noise_fraction))
                tput = max(tput, 0.0)
            samples.append(IperfSample(laptop=name, throughput_mbps=tput,
                                       duration_s=duration_s))
        return samples

    def iperf_throughput(self, laptop: str,
                         duration_s: float = 30.0) -> float:
        """Convenience: the measured throughput of one laptop."""
        for sample in self.run_iperf(duration_s):
            if sample.laptop == laptop:
                return sample.throughput_mbps
        raise KeyError(f"laptop {laptop!r} is not connected")

    # ------------------------------------------------------------------
    # internals

    def _build_scenario(self) -> "Tuple[Scenario, np.ndarray, List[str]]":
        """Model the current bench as a Scenario + assignment.

        Wired laptops become users with an effectively infinite WiFi rate
        to their extender (the Ethernet hop never bottlenecks), so the
        engine's min() reduces to the PLC side.
        """
        ext_names = sorted(n for n, e in self.extenders.items() if e.powered)
        ext_index = {name: j for j, name in enumerate(ext_names)}
        plc = np.array([self.extenders[n].plc_isolation_mbps
                        for n in ext_names])
        rows, assignment, names = [], [], []
        ethernet_mbps = 1000.0  # GigE never bottlenecks a PLC link
        for name, lp in sorted(self.laptops.items()):
            target = lp.wired_to or lp.associated_to
            if target is None or target not in ext_index:
                continue  # disconnected, or its extender is unplugged
            row = np.zeros(len(ext_names))
            if lp.wired_to:
                row[ext_index[target]] = ethernet_mbps
            else:
                for ename, j in ext_index.items():
                    row[j] = self.wifi_rate(name, ename)
            rows.append(row)
            assignment.append(ext_index[target])
            names.append(name)
        if rows:
            wifi = np.vstack(rows)
        else:
            wifi = np.empty((0, len(ext_names)))
        scenario = Scenario(wifi_rates=wifi, plc_rates=plc)
        return scenario, np.asarray(assignment, dtype=int), names

    def _extender(self, name: str) -> PlcExtender:
        if name not in self.extenders:
            raise KeyError(f"unknown extender {name!r}")
        return self.extenders[name]

    def _laptop(self, name: str) -> Laptop:
        if name not in self.laptops:
            raise KeyError(f"unknown laptop {name!r}")
        return self.laptops[name]

    @staticmethod
    def _distance(laptop: Laptop, extender: PlcExtender) -> float:
        dx = laptop.position[0] - extender.position[0]
        dy = laptop.position[1] - extender.position[1]
        return float(np.hypot(dx, dy))
