"""The §III measurement study, reproduced on the emulated testbed.

Three procedures mirror the paper's experiments:

* :func:`wifi_sharing_study` (Fig. 2a) — one extender, two WiFi laptops;
  laptop 2 is moved through three locations of degrading channel
  quality, and both laptops' throughputs are recorded.
* :func:`plc_isolation_study` (Fig. 2b) — each PLC link is saturated in
  isolation over Ethernet to measure its capacity.
* :func:`plc_sharing_study` (Fig. 2c) — 2, 3 and 4 extenders receive
  saturated traffic simultaneously; each link should deliver ``1/k`` of
  its isolation throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..wifi.phy import WifiPhy
from .calibration import FIG2B_ISOLATION_MBPS
from .devices import EmulatedTestbed, Laptop, PlcExtender

__all__ = ["WifiSharingResult", "wifi_sharing_study",
           "PlcIsolationResult", "plc_isolation_study",
           "PlcSharingResult", "plc_sharing_study"]


@dataclass(frozen=True)
class WifiSharingResult:
    """Fig. 2a data: per-location throughputs of the two laptops.

    Attributes:
        locations: labels of user 2's positions ("location 1", ...).
        user1_mbps: stationary laptop's throughput per location.
        user2_mbps: moving laptop's throughput per location.
    """

    locations: Tuple[str, ...]
    user1_mbps: Tuple[float, ...]
    user2_mbps: Tuple[float, ...]


def wifi_sharing_study(distances_m: Sequence[float] = (3.0, 45.0, 75.0),
                       plc_isolation_mbps: float = 1000.0,
                       phy: Optional[WifiPhy] = None,
                       rng: Optional[np.random.Generator] = None
                       ) -> WifiSharingResult:
    """Reproduce the Fig. 2a WiFi-only experiment.

    Laptop 1 stays 3 m from the extender; laptop 2 starts co-located and
    is moved to each distance in ``distances_m``.  The PLC link is made
    effectively infinite so only WiFi sharing matters (the paper wires
    the iperf server straight to the extender).
    """
    rng = rng or np.random.default_rng(0)
    user1, user2, labels = [], [], []
    for k, distance in enumerate(distances_m, start=1):
        bench = EmulatedTestbed(phy=phy, rng=rng)
        bench.plug_extender(PlcExtender("ext-1", (0.0, 0.0),
                                        plc_isolation_mbps))
        bench.place_laptop(Laptop("user-1", (3.0, 0.0)))
        bench.place_laptop(Laptop("user-2", (float(distance), 0.0)))
        bench.associate("user-1", "ext-1")
        bench.associate("user-2", "ext-1")
        samples = {s.laptop: s.throughput_mbps for s in bench.run_iperf()}
        labels.append(f"location {k}")
        user1.append(samples["user-1"])
        user2.append(samples["user-2"])
    return WifiSharingResult(locations=tuple(labels),
                             user1_mbps=tuple(user1),
                             user2_mbps=tuple(user2))


@dataclass(frozen=True)
class PlcIsolationResult:
    """Fig. 2b data: isolation throughput of each PLC link."""

    extenders: Tuple[str, ...]
    isolation_mbps: Tuple[float, ...]


def plc_isolation_study(capacities: Sequence[float] = FIG2B_ISOLATION_MBPS,
                        rng: Optional[np.random.Generator] = None
                        ) -> PlcIsolationResult:
    """Reproduce the Fig. 2b PLC-only isolation measurements.

    One extender at a time is powered; a wired laptop saturates its PLC
    link with iperf.
    """
    rng = rng or np.random.default_rng(0)
    bench = _plc_bench(capacities, rng)
    measured = []
    names = [f"ext-{k + 1}" for k in range(len(capacities))]
    for name in names:
        for other in names:
            if other == name:
                bench.power_extender(other)
            else:
                bench.unplug_extender(other)
        measured.append(bench.iperf_throughput(f"laptop-{name}"))
    return PlcIsolationResult(extenders=tuple(names),
                              isolation_mbps=tuple(measured))


@dataclass(frozen=True)
class PlcSharingResult:
    """Fig. 2c data: per-link throughput vs. number of active links.

    Attributes:
        isolation_mbps: each link's stand-alone throughput.
        shared_mbps: mapping ``k`` (active link count) -> tuple of the
            first ``k`` links' simultaneous throughputs.
    """

    isolation_mbps: Tuple[float, ...]
    shared_mbps: Dict[int, Tuple[float, ...]]

    def share_ratio(self, k: int) -> Tuple[float, ...]:
        """Measured per-link fraction of isolation throughput at ``k``."""
        return tuple(shared / alone for shared, alone
                     in zip(self.shared_mbps[k], self.isolation_mbps[:k]))


def plc_sharing_study(capacities: Sequence[float] = FIG2B_ISOLATION_MBPS,
                      active_counts: Sequence[int] = (2, 3, 4),
                      rng: Optional[np.random.Generator] = None
                      ) -> PlcSharingResult:
    """Reproduce the Fig. 2c time-fair sharing measurements."""
    rng = rng or np.random.default_rng(0)
    if max(active_counts) > len(capacities):
        raise ValueError("more active links requested than capacities")
    names = [f"ext-{k + 1}" for k in range(len(capacities))]
    shared: Dict[int, Tuple[float, ...]] = {}
    for k in active_counts:
        bench = _plc_bench(capacities, rng)
        for name in names[k:]:
            bench.unplug_extender(name)
        samples = {s.laptop: s.throughput_mbps for s in bench.run_iperf()}
        shared[k] = tuple(samples[f"laptop-{name}"] for name in names[:k])
    return PlcSharingResult(isolation_mbps=tuple(float(c)
                                                 for c in capacities),
                            shared_mbps=shared)


def _plc_bench(capacities: Sequence[float],
               rng: np.random.Generator) -> EmulatedTestbed:
    """A bench with one wired laptop per extender (the Fig. 2b/2c rig)."""
    bench = EmulatedTestbed(rng=rng)
    for k, capacity in enumerate(capacities, start=1):
        name = f"ext-{k}"
        bench.plug_extender(PlcExtender(name, (10.0 * k, 0.0),
                                        float(capacity)))
        bench.place_laptop(Laptop(f"laptop-{name}", (10.0 * k, 1.0)))
        bench.wire(f"laptop-{name}", name)
    return bench
