"""802.11 substrate: PHY/propagation, DCF MAC, sharing law, channels."""

from .channels import (NON_OVERLAPPING_2_4GHZ, ChannelPlan,
                       assign_channels, interference_graph)
from .mac import DcfParameters, DcfResult, DcfSimulator
from .phy import MCS_TABLE_80211N_20MHZ, WifiPhy
from .rate_adaptation import (ArfRateController,
                              frame_success_probability, probe_rate)
from .sharing import (anomaly_ratio, cell_throughput, cell_throughputs,
                      cell_throughputs_batch, per_user_throughput)

__all__ = [
    "WifiPhy", "MCS_TABLE_80211N_20MHZ",
    "DcfSimulator", "DcfParameters", "DcfResult",
    "cell_throughput", "cell_throughputs", "cell_throughputs_batch",
    "per_user_throughput", "anomaly_ratio",
    "assign_channels", "ChannelPlan", "interference_graph",
    "NON_OVERLAPPING_2_4GHZ",
    "ArfRateController", "frame_success_probability", "probe_rate",
]
