"""WiFi channel assignment for co-located extenders.

§V-A of the paper: "when a small number of APs are used, each operates
on a non-overlapping 802.11 channel, and thus is able to operate
interference free; thus, we assume that each extender operates on an
non-overlapping channel relative to its neighbor extenders."

This module makes that assumption checkable: it builds the interference
graph between extenders (two extenders interfere when closer than an
interference radius) and greedily colors it with the non-overlapping
channel set (1/6/11 in 2.4 GHz).  Experiments can then verify that a
deployment satisfies the paper's interference-free assumption — or
detect where it breaks at high extender density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import networkx as nx
import numpy as np

__all__ = ["NON_OVERLAPPING_2_4GHZ", "ChannelPlan", "assign_channels",
           "interference_graph"]

#: The non-overlapping 20 MHz channels in the 2.4 GHz ISM band.
NON_OVERLAPPING_2_4GHZ = (1, 6, 11)


def interference_graph(extender_xy: np.ndarray,
                       interference_radius_m: float) -> nx.Graph:
    """Graph with an edge between every pair of interfering extenders.

    Args:
        extender_xy: ``(n, 2)`` extender coordinates (metres).
        interference_radius_m: co-channel extenders closer than this
            interfere.
    """
    xy = np.atleast_2d(np.asarray(extender_xy, dtype=float))
    if xy.shape[1] != 2:
        raise ValueError("extender_xy must be an (n, 2) array")
    if interference_radius_m <= 0:
        raise ValueError("interference radius must be positive")
    graph = nx.Graph()
    graph.add_nodes_from(range(xy.shape[0]))
    for a in range(xy.shape[0]):
        for b in range(a + 1, xy.shape[0]):
            if np.hypot(*(xy[a] - xy[b])) < interference_radius_m:
                graph.add_edge(a, b)
    return graph


@dataclass(frozen=True)
class ChannelPlan:
    """A channel assignment for the extenders.

    Attributes:
        channels: per-extender channel number.
        conflict_free: True when no two interfering extenders share a
            channel (the paper's operating assumption holds).
        conflicts: interfering same-channel extender pairs.
    """

    channels: Tuple[int, ...]
    conflict_free: bool
    conflicts: Tuple[Tuple[int, int], ...]


def assign_channels(extender_xy: np.ndarray,
                    interference_radius_m: float = 40.0,
                    channel_set: Sequence[int] = NON_OVERLAPPING_2_4GHZ
                    ) -> ChannelPlan:
    """Greedy graph-coloring channel assignment.

    Uses networkx's largest-first greedy coloring; when the interference
    graph needs more colors than available channels, colors wrap around
    modulo the channel set and the residual conflicts are reported.

    Args:
        extender_xy: ``(n, 2)`` extender coordinates.
        interference_radius_m: interference range between extenders.
        channel_set: available non-overlapping channels.

    Returns:
        A :class:`ChannelPlan`.
    """
    channel_list = list(channel_set)
    if not channel_list:
        raise ValueError("channel_set must not be empty")
    graph = interference_graph(extender_xy, interference_radius_m)
    coloring = nx.greedy_color(graph, strategy="largest_first")
    channels = tuple(channel_list[coloring[i] % len(channel_list)]
                     for i in range(graph.number_of_nodes()))
    conflicts = tuple(sorted(
        (a, b) for a, b in graph.edges if channels[a] == channels[b]))
    return ChannelPlan(channels=channels,
                       conflict_free=not conflicts,
                       conflicts=conflicts)
