"""Slot-level 802.11 DCF (CSMA/CA) simulator.

The analytic WiFi sharing law (Eq. (1) of the paper,
:mod:`repro.wifi.sharing`) asserts throughput-fair sharing: every station
in a cell obtains the same long-term throughput, dominated by the slowest
station's airtime — the 802.11 performance anomaly.  This simulator
derives that behaviour *emergently* from the protocol: stations run
binary-exponential-backoff contention in discrete slots; a transmission
opportunity carries one fixed-size frame whose airtime depends on the
station's PHY rate.  Because DCF hands every saturated station an equal
share of transmission opportunities (not airtime), per-station
throughput equalizes and the anomaly appears.

The simulator is used by the test-suite and by the Fig. 2a benchmark to
validate Eq. (1) against protocol-level behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["DcfParameters", "DcfResult", "DcfSimulator"]


@dataclass(frozen=True)
class DcfParameters:
    """802.11 DCF timing and contention constants (802.11n defaults).

    Attributes:
        slot_time_us: backoff slot duration.
        difs_us: DCF inter-frame space preceding contention.
        sifs_us: short inter-frame space before the ACK.
        ack_us: ACK frame duration.
        preamble_us: PHY preamble + PLCP header.
        cw_min: minimum contention window (slots).
        cw_max: maximum contention window (slots).
        payload_bits: MAC payload per transmission opportunity (a
            32 KiB A-MPDU aggregate, which keeps per-frame overhead small
            the way modern 802.11n/ac actually operates).
    """

    slot_time_us: float = 9.0
    difs_us: float = 34.0
    sifs_us: float = 16.0
    ack_us: float = 44.0
    preamble_us: float = 20.0
    cw_min: int = 15
    cw_max: int = 1023
    payload_bits: int = 32768 * 8

    def frame_airtime_us(self, phy_rate_mbps: float) -> float:
        """Total channel time of one successful frame exchange."""
        if phy_rate_mbps <= 0:
            raise ValueError("PHY rate must be positive")
        payload_us = self.payload_bits / phy_rate_mbps
        return (self.difs_us + self.preamble_us + payload_us
                + self.sifs_us + self.ack_us)


@dataclass(frozen=True)
class DcfResult:
    """Outcome of a DCF simulation.

    Attributes:
        throughputs_mbps: per-station delivered MAC throughput.
        frames_delivered: per-station successful frame counts.
        collisions: total collision events.
        simulated_time_us: channel time simulated.
    """

    throughputs_mbps: np.ndarray
    frames_delivered: np.ndarray
    collisions: int
    simulated_time_us: float

    @property
    def aggregate_mbps(self) -> float:
        return float(self.throughputs_mbps.sum())


class DcfSimulator:
    """Saturated-traffic DCF contention among stations of one cell.

    Each station always has a frame queued (the paper's saturated
    downlink model maps each client's traffic to one contending
    transmission entity).
    """

    def __init__(self, phy_rates_mbps: Sequence[float],
                 params: Optional[DcfParameters] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        """Args:
            phy_rates_mbps: per-station WiFi PHY rates.
            params: DCF timing constants (802.11n defaults).
            rng: seeded backoff generator; defaults to
                ``np.random.default_rng(0)`` so repeated runs are
                bit-identical unless a caller opts into its own stream.
        """
        self.rates = [float(r) for r in phy_rates_mbps]
        if not self.rates:
            raise ValueError("at least one station is required")
        if any(r <= 0 for r in self.rates):
            raise ValueError("PHY rates must be positive")
        self.params = params or DcfParameters()
        # Default to a fixed seed: MAC runs must be reproducible, so an
        # unseeded generator is never handed out (woltlint W001).
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def run(self, sim_time_us: float = 5e6) -> DcfResult:
        """Simulate the cell for ``sim_time_us`` of channel time."""
        if sim_time_us <= 0:
            raise ValueError("simulation time must be positive")
        p = self.params
        n = len(self.rates)
        cw = np.full(n, p.cw_min, dtype=int)
        backoff = np.array([self.rng.integers(0, c + 1) for c in cw])
        delivered = np.zeros(n, dtype=int)
        collisions = 0
        clock = 0.0
        while clock < sim_time_us:
            step = int(backoff.min())
            clock += step * p.slot_time_us
            backoff -= step
            ready = np.flatnonzero(backoff == 0)
            if ready.size == 1:
                winner = int(ready[0])
                clock += p.frame_airtime_us(self.rates[winner])
                delivered[winner] += 1
                cw[winner] = p.cw_min
            else:
                # Collision: the channel is held for the longest frame.
                collisions += 1
                clock += max(p.frame_airtime_us(self.rates[int(i)])
                             for i in ready)
                for i in ready:
                    cw[i] = min(2 * (cw[i] + 1) - 1, p.cw_max)
            for i in ready:
                backoff[i] = int(self.rng.integers(0, cw[i] + 1))
        throughputs = delivered * p.payload_bits / clock  # bits/us = Mbps
        return DcfResult(throughputs_mbps=throughputs,
                         frames_delivered=delivered,
                         collisions=collisions,
                         simulated_time_us=clock)
