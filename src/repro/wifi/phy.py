"""802.11 PHY model: path loss, RSSI, SNR, and MCS rate selection.

The paper's simulator derives WiFi channel quality from user-extender
distance ("a simple model ... where the channel quality is a function of
the distance", §V-A, citing a Cisco Aironet rate-vs-range table).  We
implement the standard log-distance path-loss model with optional
log-normal shadowing, and map the resulting SNR onto the 802.11n MCS
ladder to obtain the PHY rate ``r_ij``.

All the constants are module-level and overridable through
:class:`WifiPhy`, so experiments can calibrate the model to a different
building or radio without touching the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["MCS_TABLE_80211N_20MHZ", "WifiPhy"]

#: 802.11n, 20 MHz, long guard interval, single spatial stream:
#: (minimum SNR in dB, PHY rate in Mbps).  Thresholds follow common
#: receiver-sensitivity tables (e.g. the Cisco Aironet data sheets the
#: paper references).
MCS_TABLE_80211N_20MHZ: Tuple[Tuple[float, float], ...] = (
    (2.0, 6.5),     # MCS0, BPSK 1/2
    (5.0, 13.0),    # MCS1, QPSK 1/2
    (9.0, 19.5),    # MCS2, QPSK 3/4
    (11.0, 26.0),   # MCS3, 16-QAM 1/2
    (15.0, 39.0),   # MCS4, 16-QAM 3/4
    (18.0, 52.0),   # MCS5, 64-QAM 2/3
    (20.0, 58.5),   # MCS6, 64-QAM 3/4
    (25.0, 65.0),   # MCS7, 64-QAM 5/6
)


@dataclass(frozen=True)
class WifiPhy:
    """A parameterized 802.11 PHY/propagation model.

    Attributes:
        tx_power_dbm: extender transmit power (default 20 dBm, the FCC
            indoor ceiling commodity extenders use).
        path_loss_exponent: log-distance exponent; ~3.5 suits an office
            with cubicles and furniture like the paper's 2408 m^2 lab.
        reference_loss_db: path loss at the 1 m reference distance
            (~40 dB at 2.4 GHz).
        noise_floor_dbm: thermal noise plus NF over a 20 MHz channel.
        shadowing_sigma_db: log-normal shadowing standard deviation; 0
            disables shadowing.
        spatial_streams: MIMO stream count; scales every MCS rate.
        mcs_table: (min SNR dB, rate Mbps) ladder, ascending.
    """

    tx_power_dbm: float = 20.0
    path_loss_exponent: float = 3.5
    reference_loss_db: float = 40.0
    noise_floor_dbm: float = -94.0
    shadowing_sigma_db: float = 0.0
    spatial_streams: int = 2
    mcs_table: Tuple[Tuple[float, float], ...] = MCS_TABLE_80211N_20MHZ

    def __post_init__(self) -> None:
        if self.spatial_streams < 1:
            raise ValueError("spatial_streams must be >= 1")
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        snrs = [s for s, _ in self.mcs_table]
        if snrs != sorted(snrs):
            raise ValueError("mcs_table must be sorted by SNR")

    def path_loss_db(self, distance_m: float,
                     rng: Optional[np.random.Generator] = None) -> float:
        """Log-distance path loss (dB) at ``distance_m`` metres.

        Distances under 1 m clamp to the reference distance.  When ``rng``
        is given and shadowing is enabled, a log-normal shadowing term is
        added.
        """
        if distance_m < 0:
            raise ValueError("distance must be non-negative")
        d = max(distance_m, 1.0)
        loss = (self.reference_loss_db
                + 10.0 * self.path_loss_exponent * np.log10(d))
        if rng is not None and self.shadowing_sigma_db > 0:
            loss += rng.normal(0.0, self.shadowing_sigma_db)
        return float(loss)

    def rssi_dbm(self, distance_m: float,
                 rng: Optional[np.random.Generator] = None) -> float:
        """Received signal strength (dBm) at a distance."""
        return self.tx_power_dbm - self.path_loss_db(distance_m, rng)

    def snr_db(self, distance_m: float,
               rng: Optional[np.random.Generator] = None) -> float:
        """Signal-to-noise ratio (dB) at a distance."""
        return self.rssi_dbm(distance_m, rng) - self.noise_floor_dbm

    def rate_for_snr(self, snr_db: float) -> float:
        """PHY rate (Mbps) the MCS ladder sustains at a given SNR.

        Returns 0 when the SNR is below the lowest MCS threshold (the
        extender is unreachable).
        """
        rate = 0.0
        for threshold, mcs_rate in self.mcs_table:
            if snr_db >= threshold:
                rate = mcs_rate
            else:
                break
        return rate * self.spatial_streams

    def rate_at_distance(self, distance_m: float,
                         rng: Optional[np.random.Generator] = None) -> float:
        """PHY rate (Mbps) at a distance (0 = unreachable)."""
        return self.rate_for_snr(self.snr_db(distance_m, rng))

    def max_range_m(self) -> float:
        """Distance at which even the lowest MCS stops decoding."""
        lowest_snr = self.mcs_table[0][0]
        budget = (self.tx_power_dbm - self.noise_floor_dbm - lowest_snr
                  - self.reference_loss_db)
        if budget < 0:
            return 1.0
        return float(10.0 ** (budget / (10.0 * self.path_loss_exponent)))

    def rate_matrix(self, user_xy: np.ndarray, extender_xy: np.ndarray,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """WiFi rate matrix ``r_ij`` for users and extenders on a plane.

        Args:
            user_xy: ``(n_users, 2)`` coordinates in metres.
            extender_xy: ``(n_extenders, 2)`` coordinates in metres.
            rng: optional generator for shadowing draws (one independent
                draw per link).

        Returns:
            ``(n_users, n_extenders)`` matrix of PHY rates in Mbps, with
            zeros marking unreachable pairs.
        """
        users = np.atleast_2d(np.asarray(user_xy, dtype=float))
        exts = np.atleast_2d(np.asarray(extender_xy, dtype=float))
        if users.shape[1] != 2 or exts.shape[1] != 2:
            raise ValueError("coordinates must be (n, 2) arrays")
        diff = users[:, np.newaxis, :] - exts[np.newaxis, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=2))
        rates = np.zeros(dist.shape)
        for i in range(dist.shape[0]):
            for j in range(dist.shape[1]):
                rates[i, j] = self.rate_at_distance(dist[i, j], rng)
        return rates
