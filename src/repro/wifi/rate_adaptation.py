"""802.11 rate adaptation: how clients discover their PHY rate.

WOLT's inputs include the WiFi PHY rate ``r_ij``, which §V-A reads off
the NIC driver — itself the output of a rate-adaptation loop.  This
module implements the classic ARF (Auto Rate Fallback) algorithm
against a per-MCS frame-success model, so experiments can derive
``r_ij`` the way a real client would: by probing.

* :func:`frame_success_probability` — logistic success model around
  each MCS's SNR threshold.
* :class:`ArfRateController` — ARF state machine: step the rate up
  after ``up_threshold`` consecutive successes, step down after
  ``down_threshold`` consecutive failures.
* :func:`probe_rate` — run the loop to convergence and report the
  long-run rate, which the tests compare against the ideal MCS-ladder
  lookup of :class:`repro.wifi.phy.WifiPhy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .phy import MCS_TABLE_80211N_20MHZ, WifiPhy

__all__ = ["frame_success_probability", "ArfRateController", "probe_rate"]


def frame_success_probability(snr_db: float, mcs_index: int,
                              mcs_table: Tuple[Tuple[float, float], ...]
                              = MCS_TABLE_80211N_20MHZ,
                              steepness: float = 1.5) -> float:
    """Probability one frame at a given MCS succeeds at a given SNR.

    A logistic curve centred on the MCS's threshold: ~50% exactly at
    threshold, ~90% a couple of dB above, ~10% a couple below — the
    shape of measured per-MCS PER curves.

    Args:
        snr_db: link SNR.
        mcs_index: index into ``mcs_table``.
        mcs_table: (threshold dB, rate Mbps) ladder.
        steepness: logistic slope (1/dB).
    """
    if not 0 <= mcs_index < len(mcs_table):
        raise ValueError("mcs_index out of range")
    threshold = mcs_table[mcs_index][0]
    margin = snr_db - threshold
    return float(1.0 / (1.0 + np.exp(-steepness * margin)))


@dataclass
class ArfRateController:
    """Auto Rate Fallback state machine.

    Attributes:
        mcs_table: the MCS ladder.
        up_threshold: consecutive successes before stepping up.
        down_threshold: consecutive failures before stepping down.
        mcs_index: current MCS (starts at the lowest).
    """

    mcs_table: Tuple[Tuple[float, float], ...] = MCS_TABLE_80211N_20MHZ
    up_threshold: int = 10
    down_threshold: int = 2
    mcs_index: int = 0

    def __post_init__(self) -> None:
        if self.up_threshold < 1 or self.down_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        if not 0 <= self.mcs_index < len(self.mcs_table):
            raise ValueError("mcs_index out of range")
        self._successes = 0
        self._failures = 0

    @property
    def rate_mbps(self) -> float:
        """The current MCS's PHY rate."""
        return self.mcs_table[self.mcs_index][1]

    def record(self, success: bool) -> int:
        """Fold in one frame outcome; returns the (new) MCS index."""
        if success:
            self._successes += 1
            self._failures = 0
            if (self._successes >= self.up_threshold
                    and self.mcs_index < len(self.mcs_table) - 1):
                self.mcs_index += 1
                self._successes = 0
        else:
            self._failures += 1
            self._successes = 0
            if (self._failures >= self.down_threshold
                    and self.mcs_index > 0):
                self.mcs_index -= 1
                self._failures = 0
        return self.mcs_index


def probe_rate(snr_db: float,
               rng: np.random.Generator,
               n_frames: int = 3000,
               warmup_frames: int = 500,
               controller: Optional[ArfRateController] = None,
               spatial_streams: int = 1) -> float:
    """Long-run goodput-weighted rate ARF converges to at a given SNR.

    Simulates ``n_frames`` frames through the success model and returns
    the mean *delivered* rate (successful frames only) after warm-up —
    the number a driver's statistics would report.

    Args:
        snr_db: the link SNR.
        rng: random generator.
        n_frames: total frames simulated.
        warmup_frames: frames excluded from the average.
        controller: optional pre-configured ARF controller.
        spatial_streams: MIMO multiplier applied to the result.

    Returns:
        Mean delivered PHY rate (Mbps); 0 when nothing gets through.
    """
    if n_frames <= warmup_frames:
        raise ValueError("n_frames must exceed warmup_frames")
    ctrl = controller or ArfRateController()
    delivered = []
    for frame in range(n_frames):
        p = frame_success_probability(snr_db, ctrl.mcs_index,
                                      ctrl.mcs_table)
        success = bool(rng.random() < p)
        if frame >= warmup_frames:
            delivered.append(ctrl.rate_mbps if success else 0.0)
        ctrl.record(success)
    return float(np.mean(delivered)) * spatial_streams
