"""Analytic medium-sharing law for the 802.11 access link.

Section III of the WOLT paper re-confirms the classic 802.11 *performance
anomaly* (Heusse et al., INFOCOM 2003) on commodity PLC-WiFi extenders: DCF
gives every station an equal share of transmission *opportunities*, so all
stations attached to the same extender converge to the same long-term
throughput, and that common throughput is dragged down by the slowest
station.  The aggregate WiFi throughput of extender ``j`` is Eq. (1):

    T_WiFi_j = |N_j| / sum_{i in N_j} (1 / r_ij)

i.e. the harmonic mean of the attached users' PHY rates times the user
count divided by the count — equivalently ``|N_j|`` divided by the total
per-bit airtime.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "cell_throughput",
    "per_user_throughput",
    "cell_throughputs",
    "cell_throughputs_batch",
    "anomaly_ratio",
]

_EPS = 1e-12


def cell_throughput(rates: Iterable[float]) -> float:
    """Aggregate WiFi throughput of one extender cell, Eq. (1).

    Args:
        rates: WiFi PHY rates ``r_ij`` (Mbps) of the users attached to the
            extender.  An empty iterable yields zero (idle cell).

    Returns:
        The cell's saturated downlink throughput in Mbps.

    Raises:
        ValueError: if any rate is non-positive (a user cannot be attached
            over a dead link).
    """
    rate_list = [float(r) for r in rates]
    if not rate_list:
        return 0.0
    if any(r <= 0 for r in rate_list):
        raise ValueError("attached users must have positive WiFi rates")
    airtime_per_bit = sum(1.0 / r for r in rate_list)
    return len(rate_list) / airtime_per_bit


def per_user_throughput(rates: Iterable[float]) -> float:
    """Common per-user throughput inside one cell (throughput-fair share).

    Every attached user receives the same long-term throughput, the cell
    throughput divided by the user count.
    """
    rate_list = [float(r) for r in rates]
    if not rate_list:
        return 0.0
    return cell_throughput(rate_list) / len(rate_list)


def cell_throughputs(wifi_rates: np.ndarray,
                     assignment: Sequence[int],
                     n_extenders: int) -> np.ndarray:
    """Vector of per-extender WiFi throughputs for a full assignment.

    Args:
        wifi_rates: ``(n_users, n_extenders)`` matrix of PHY rates ``r_ij``.
        assignment: per-user extender index, ``-1`` for unassigned users.
        n_extenders: number of extenders (columns of ``wifi_rates``).

    Returns:
        Array of length ``n_extenders`` with each cell's aggregate WiFi
        throughput (Mbps); zero for empty cells.
    """
    rates = np.asarray(wifi_rates, dtype=float)
    assign = np.asarray(assignment, dtype=int)
    if assign.shape[0] != rates.shape[0]:
        raise ValueError("assignment length must equal the number of users")
    out = np.zeros(n_extenders, dtype=float)
    for j in range(n_extenders):
        members = np.flatnonzero(assign == j)
        if members.size == 0:
            continue
        member_rates = rates[members, j]
        if np.any(member_rates <= _EPS):
            raise ValueError(
                f"user(s) {members[member_rates <= _EPS].tolist()} assigned "
                f"to extender {j} with non-positive WiFi rate")
        out[j] = members.size / float(np.sum(1.0 / member_rates))
    return out


def cell_throughputs_batch(wifi_rates: np.ndarray,
                           assignments: np.ndarray,
                           n_extenders: int) -> np.ndarray:
    """Per-extender WiFi throughputs for a whole *batch* of assignments.

    Vectorized counterpart of :func:`cell_throughputs`: the per-cell user
    counts and inverse-rate sums of every candidate assignment are
    accumulated in one pass with a flattened ``bincount`` scatter-add, so
    scoring ``B`` candidates costs one numpy sweep instead of ``B`` Python
    loops over extenders.

    Args:
        wifi_rates: ``(n_users, n_extenders)`` matrix of PHY rates ``r_ij``.
        assignments: ``(B, n_users)`` matrix of per-user extender indices;
            any negative entry marks an unassigned user.
        n_extenders: number of extenders (columns of ``wifi_rates``).

    Returns:
        ``(B, n_extenders)`` array of aggregate WiFi throughputs (Mbps);
        zero for empty cells.

    Raises:
        ValueError: on shape mismatch or a user assigned over a dead link.
    """
    rates = np.asarray(wifi_rates, dtype=float)
    assign = np.atleast_2d(np.asarray(assignments, dtype=int))
    if assign.ndim != 2 or assign.shape[1] != rates.shape[0]:
        raise ValueError(
            "assignments must be a (B, n_users) matrix matching wifi_rates")
    n_batch, n_users = assign.shape
    attached = assign >= 0
    if n_batch == 0 or n_users == 0 or not np.any(attached):
        return np.zeros((n_batch, n_extenders), dtype=float)
    safe = np.where(attached, assign, 0)
    chosen = rates[np.arange(n_users)[np.newaxis, :], safe]
    bad = attached & (chosen <= _EPS)
    if np.any(bad):
        rows, users = np.nonzero(bad)
        raise ValueError(
            f"user(s) {sorted(set(users.tolist()))} assigned to an "
            f"extender with non-positive WiFi rate (batch rows "
            f"{sorted(set(rows.tolist()))})")
    flat = (np.arange(n_batch)[:, np.newaxis] * n_extenders + safe)[attached]
    counts = np.bincount(flat, minlength=n_batch * n_extenders)
    inv_sums = np.bincount(flat, weights=1.0 / chosen[attached],
                           minlength=n_batch * n_extenders)
    counts = counts.reshape(n_batch, n_extenders)
    inv_sums = inv_sums.reshape(n_batch, n_extenders)
    out = np.zeros((n_batch, n_extenders), dtype=float)
    busy = counts > 0
    out[busy] = counts[busy] / inv_sums[busy]
    return out


def anomaly_ratio(fast_rate: float, slow_rate: float) -> float:
    """Throughput loss factor a fast user suffers from one slow peer.

    With two users at rates ``fast`` and ``slow`` sharing a cell, each gets
    ``1 / (1/fast + 1/slow)``; in isolation the fast user would get
    ``fast``.  The returned ratio (``<= 1``) quantifies the 802.11
    performance anomaly used in the Fig. 2a experiment.
    """
    if fast_rate <= 0 or slow_rate <= 0:
        raise ValueError("rates must be positive")
    shared = 1.0 / (1.0 / fast_rate + 1.0 / slow_rate)
    return shared / fast_rate
