"""Shared fixtures and scenario factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import Scenario


def random_scenario(rng: np.random.Generator,
                    n_users: int,
                    n_extenders: int,
                    reachable_prob: float = 1.0,
                    capacities: bool = False) -> Scenario:
    """A random scenario with paper-plausible rate ranges.

    WiFi PHY rates span 6.5-144 Mbps (802.11n MCS range) and PLC rates
    span 20-200 Mbps (the Fig. 2b measurement range widened a bit).
    """
    wifi = rng.uniform(6.5, 144.0, size=(n_users, n_extenders))
    if reachable_prob < 1.0:
        mask = rng.random((n_users, n_extenders)) < reachable_prob
        # Every user keeps at least one reachable extender.
        for i in range(n_users):
            if not mask[i].any():
                mask[i, rng.integers(n_extenders)] = True
        wifi = np.where(mask, wifi, 0.0)
    plc = rng.uniform(20.0, 200.0, size=n_extenders)
    caps = None
    if capacities:
        caps = rng.integers(max(2, n_users // n_extenders),
                            n_users + 1, size=n_extenders)
    return Scenario(wifi_rates=wifi, plc_rates=plc, capacities=caps)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def fig3_scenario() -> Scenario:
    """The exact Fig. 3 case study: 2 extenders, 2 users.

    PLC rates: 60 (ext 1) and 20 (ext 2) Mbps.  WiFi rates: user 1 gets
    15/10 Mbps to ext 1/2; user 2 gets 40/20 Mbps.
    """
    return Scenario(wifi_rates=np.array([[15.0, 10.0], [40.0, 20.0]]),
                    plc_rates=np.array([60.0, 20.0]))
