"""Tests for the RSSI, Greedy, and random baseline policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (greedy_assignment, greedy_attach_user,
                                  random_assignment, rssi_assignment)
from repro.core.problem import UNASSIGNED, Scenario
from repro.net.engine import evaluate

from .conftest import random_scenario


class TestRssiAssignment:
    def test_fig3_both_users_pick_extender1(self, fig3_scenario):
        assert rssi_assignment(fig3_scenario).tolist() == [0, 0]

    def test_picks_strongest_link(self):
        wifi = np.array([[10.0, 50.0, 30.0]])
        sc = Scenario(wifi_rates=wifi, plc_rates=np.ones(3))
        assert rssi_assignment(sc).tolist() == [1]

    def test_capacity_fallback(self):
        wifi = np.array([[50.0, 30.0], [50.0, 30.0]])
        sc = Scenario(wifi_rates=wifi, plc_rates=np.ones(2),
                      capacities=[1, 1])
        out = rssi_assignment(sc)
        assert sorted(out.tolist()) == [0, 1]

    def test_unattachable_user_raises(self):
        sc = Scenario(wifi_rates=np.array([[0.0]]), plc_rates=np.ones(1))
        with pytest.raises(ValueError):
            rssi_assignment(sc)

    @given(st.integers(1, 15), st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_every_user_on_its_best_link(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        out = rssi_assignment(sc)
        for i in range(n_users):
            assert sc.wifi_rates[i, out[i]] == pytest.approx(
                sc.wifi_rates[i].max())


class TestGreedyAssignment:
    def test_fig3_sequence(self, fig3_scenario):
        """User 1 picks ext 1; user 2 then prefers ext 2 (15 > 11)."""
        out = greedy_assignment(fig3_scenario)
        assert out.tolist() == [0, 1]
        assert evaluate(fig3_scenario, out).aggregate == pytest.approx(30.0)

    def test_arrival_order_matters(self, fig3_scenario):
        """Greedy is an online policy: order changes the outcome."""
        forward = greedy_assignment(fig3_scenario, arrival_order=[0, 1])
        backward = greedy_assignment(fig3_scenario, arrival_order=[1, 0])
        agg_f = evaluate(fig3_scenario, forward).aggregate
        agg_b = evaluate(fig3_scenario, backward).aggregate
        # Reversed arrivals let user 2 claim ext 1 first: the optimum.
        assert agg_b == pytest.approx(40.0)
        assert agg_f == pytest.approx(30.0)

    def test_attach_user_is_argmax(self, rng):
        sc = random_scenario(rng, 6, 3)
        assignment = np.full(6, UNASSIGNED)
        assignment[:3] = [0, 1, 2]
        j_star = greedy_attach_user(sc, assignment, 3)
        values = []
        for j in range(3):
            trial = assignment.copy()
            trial[3] = j
            values.append(evaluate(sc, trial).aggregate)
        assert values[j_star] == pytest.approx(max(values))

    def test_capacity_respected(self):
        wifi = np.full((3, 2), 50.0)
        sc = Scenario(wifi_rates=wifi, plc_rates=np.array([100.0, 100.0]),
                      capacities=[1, 2])
        out = greedy_assignment(sc)
        counts = np.bincount(out, minlength=2)
        assert np.all(counts <= [1, 2])

    def test_unattachable_user_raises(self):
        sc = Scenario(wifi_rates=np.array([[0.0]]), plc_rates=np.ones(1))
        with pytest.raises(ValueError):
            greedy_assignment(sc)

    @given(st.integers(2, 10), st.integers(1, 4), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_complete_and_reachable(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext, reachable_prob=0.7)
        out = greedy_assignment(sc)
        assert np.all(out != UNASSIGNED)
        for i in range(n_users):
            assert sc.wifi_rates[i, out[i]] > 0


class TestRandomAssignment:
    def test_deterministic_with_seed(self, rng):
        sc = random_scenario(rng, 10, 4)
        a = random_assignment(sc, np.random.default_rng(7))
        b = random_assignment(sc, np.random.default_rng(7))
        assert a.tolist() == b.tolist()

    def test_respects_reachability(self, rng):
        sc = random_scenario(rng, 12, 4, reachable_prob=0.5)
        out = random_assignment(sc, rng)
        for i in range(12):
            assert sc.wifi_rates[i, out[i]] > 0

    def test_respects_capacity(self, rng):
        wifi = np.full((4, 2), 50.0)
        sc = Scenario(wifi_rates=wifi, plc_rates=np.ones(2),
                      capacities=[2, 2])
        out = random_assignment(sc, rng)
        counts = np.bincount(out, minlength=2)
        assert np.all(counts <= 2)

    def test_unattachable_user_raises(self, rng):
        sc = Scenario(wifi_rates=np.array([[0.0]]), plc_rates=np.ones(1))
        with pytest.raises(ValueError):
            random_assignment(sc, rng)
