"""Acceptance: batching changes the cost of the search, not its answer.

On the paper's Fig. 6 floor (15 extenders, ~124 users) the batched
solvers must return bit-identical assignments to their scalar reference
paths while issuing at least 5x fewer scalar engine calls (measured via
:func:`repro.net.engine.count_engine_calls`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (greedy_assignment,
                                  selfish_greedy_assignment)
from repro.core.wolt import solve_wolt
from repro.net.engine import count_engine_calls
from repro.net.topology import enterprise_floor


@pytest.fixture(scope="module")
def fig6_floor():
    rng = np.random.default_rng(2020)
    return enterprise_floor(15, 124, rng)


class TestSolveWoltBatched:
    def test_bit_identical_with_5x_fewer_scalar_calls(self, fig6_floor):
        with count_engine_calls() as scalar_stats:
            ref = solve_wolt(fig6_floor, vectorized=False)
        with count_engine_calls() as batched_stats:
            got = solve_wolt(fig6_floor, vectorized=True)

        assert np.array_equal(got.assignment, ref.assignment)
        assert got.phase2.objective == ref.phase2.objective
        assert got.report.aggregate == ref.report.aggregate

        assert batched_stats.scalar_calls * 5 <= scalar_stats.scalar_calls, (
            f"batched path issued {batched_stats.scalar_calls} scalar "
            f"engine calls vs {scalar_stats.scalar_calls} unbatched")

    def test_bit_identical_across_seeds(self):
        for seed in (0, 7, 99):
            floor = enterprise_floor(15, 124,
                                     np.random.default_rng(seed))
            ref = solve_wolt(floor, vectorized=False)
            got = solve_wolt(floor, vectorized=True)
            assert np.array_equal(got.assignment, ref.assignment), seed
            assert got.report.aggregate == ref.report.aggregate


class TestBaselinesBatched:
    def test_greedy_bit_identical_with_5x_fewer_scalar_calls(
            self, fig6_floor):
        with count_engine_calls() as scalar_stats:
            ref = greedy_assignment(fig6_floor, batched=False)
        with count_engine_calls() as batched_stats:
            got = greedy_assignment(fig6_floor, batched=True)

        assert np.array_equal(got, ref)
        assert batched_stats.scalar_calls * 5 <= scalar_stats.scalar_calls

    def test_selfish_greedy_bit_identical(self, fig6_floor):
        ref = selfish_greedy_assignment(fig6_floor, batched=False)
        got = selfish_greedy_assignment(fig6_floor, batched=True)
        assert np.array_equal(got, ref)


class TestCallCounter:
    def test_nested_counters_both_record(self, fig6_floor):
        from repro.net.engine import evaluate, evaluate_batch
        assignment = greedy_assignment(fig6_floor)
        with count_engine_calls() as outer:
            evaluate(fig6_floor, assignment)
            with count_engine_calls() as inner:
                evaluate_batch(fig6_floor, np.tile(assignment, (3, 1)))
        assert outer.scalar_calls == 1
        assert outer.batch_calls == 1
        assert outer.batch_rows == 3
        assert inner.scalar_calls == 0
        assert inner.batch_rows == 3
        assert inner.candidates_scored == 3
        assert outer.candidates_scored == 4
