"""Tests for the branch-and-bound exact solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bnb import branch_and_bound_optimal
from repro.core.optimal import brute_force_optimal
from repro.core.problem import Scenario
from repro.core.wolt import solve_wolt

from .conftest import random_scenario


class TestCorrectness:
    def test_fig3_optimum(self, fig3_scenario):
        result = branch_and_bound_optimal(fig3_scenario)
        assert result.assignment.tolist() == [1, 0]
        assert result.aggregate_throughput == pytest.approx(40.0)

    @given(st.integers(3, 7), st.integers(2, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        for mode in ("fixed", "active", "redistribute"):
            bnb = branch_and_bound_optimal(sc, plc_mode=mode)
            ref = brute_force_optimal(sc, plc_mode=mode)
            assert bnb.aggregate_throughput == pytest.approx(
                ref.aggregate_throughput)

    @given(st.integers(3, 7), st.integers(2, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_capacities_respected(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext, capacities=True)
        if int(sc.capacities.sum()) < n_users:
            return
        result = branch_and_bound_optimal(sc)
        counts = np.bincount(result.assignment, minlength=n_ext)
        assert np.all(counts <= sc.capacities)

    def test_dominates_wolt(self):
        """The exact optimum never loses to the heuristic."""
        for seed in range(10):
            rng = np.random.default_rng(seed)
            sc = random_scenario(rng, 7, 3)
            exact = branch_and_bound_optimal(sc, plc_mode="fixed")
            heuristic = solve_wolt(sc, plc_mode="fixed")
            assert exact.aggregate_throughput >= \
                heuristic.aggregate_throughput - 1e-9


class TestPruning:
    def test_prunes_under_fixed_law(self, rng):
        """The bound is tight under the fixed law: a 12-user instance
        (531441 brute-force nodes) collapses to a handful."""
        sc = random_scenario(rng, 12, 3)
        result = branch_and_bound_optimal(sc, plc_mode="fixed")
        assert result.nodes_expanded < 50_000

    def test_node_limit_enforced(self, rng):
        sc = random_scenario(rng, 10, 4)
        with pytest.raises(ValueError, match="node limit"):
            branch_and_bound_optimal(sc, plc_mode="redistribute",
                                     node_limit=3)

    def test_counters_populated(self, rng):
        sc = random_scenario(rng, 5, 2)
        result = branch_and_bound_optimal(sc)
        assert result.nodes_expanded >= 1
        assert result.nodes_pruned >= 0


class TestValidation:
    def test_unattachable_user_rejected(self):
        sc = Scenario(wifi_rates=np.array([[0.0]]),
                      plc_rates=np.array([10.0]))
        with pytest.raises(ValueError, match="no reachable"):
            branch_and_bound_optimal(sc)
