"""Tests for the optimality bounds and the Theorem-1 reduction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (certify, plc_capacity_bound,
                               relaxation_bound, wifi_ceiling_bound)
from repro.core.optimal import brute_force_optimal
from repro.core.partition import (balanced_partition_value,
                                  partition_to_scenario,
                                  solve_partition_by_association)
from repro.core.wolt import solve_wolt

from .conftest import random_scenario


class TestBounds:
    @given(st.integers(2, 7), st.integers(1, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_bounds_dominate_brute_force_optimum(self, n_users, n_ext,
                                                 seed):
        """Every bound must sit above the certified optimum."""
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        for mode in ("redistribute", "active", "fixed"):
            opt = brute_force_optimal(sc, plc_mode=mode)
            assert plc_capacity_bound(sc, mode) >= \
                opt.aggregate_throughput - 1e-6
            assert wifi_ceiling_bound(sc) >= \
                opt.aggregate_throughput - 1e-6
            if mode == "fixed":
                assert relaxation_bound(sc) >= \
                    opt.aggregate_throughput - 1e-6

    def test_certify_wolt(self, rng):
        sc = random_scenario(rng, 10, 4)
        result = solve_wolt(sc, plc_mode="fixed")
        cert = certify(sc, result.assignment, plc_mode="fixed")
        assert cert.achieved == pytest.approx(result.aggregate_throughput)
        assert cert.upper_bound >= cert.achieved - 1e-9
        assert 0.0 <= cert.gap_fraction <= 1.0

    def test_wolt_gap_small_under_fixed_law(self):
        """Under the fixed law WOLT certifies close to the bound."""
        gaps = []
        for seed in range(10):
            rng = np.random.default_rng(seed)
            sc = random_scenario(rng, 20, 5)
            result = solve_wolt(sc, plc_mode="fixed")
            gaps.append(certify(sc, result.assignment,
                                plc_mode="fixed").gap_fraction)
        assert np.mean(gaps) < 0.15

    def test_unknown_mode_rejected(self, rng):
        sc = random_scenario(rng, 3, 2)
        with pytest.raises(ValueError):
            plc_capacity_bound(sc, "magic")

    def test_zero_bound_degenerate(self):
        from repro.core.problem import Scenario

        sc = Scenario(wifi_rates=np.empty((0, 1)),
                      plc_rates=np.array([10.0]))
        assert wifi_ceiling_bound(sc) == 0.0


class TestPartitionReduction:
    def test_scenario_encoding(self):
        sc = partition_to_scenario([1.0, 2.0, 3.0])
        assert sc.n_users == 3
        assert sc.n_extenders == 2
        assert sc.wifi_rates[1, 0] == pytest.approx(0.5)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            partition_to_scenario([1.0])
        with pytest.raises(ValueError):
            partition_to_scenario([1.0, -2.0])

    def test_balanced_value(self):
        assert balanced_partition_value([1, 2, 3], [0, 0, 1]) == 0.0
        assert balanced_partition_value([1, 2, 3], [0, 1, 1]) == 4.0
        with pytest.raises(ValueError):
            balanced_partition_value([1, 2], [0, 2])
        with pytest.raises(ValueError):
            balanced_partition_value([1, 2], [0])

    def test_perfect_partition_found(self):
        """{3,1,1,2,2,1} splits perfectly into 5 + 5."""
        result = solve_partition_by_association([3, 1, 1, 2, 2, 1])
        assert result.is_perfect
        assert result.imbalance == 0.0

    def test_imperfect_instance(self):
        """{2,2,3} has no perfect partition; best imbalance is 1."""
        result = solve_partition_by_association([2, 2, 3])
        assert not result.is_perfect
        assert result.imbalance == pytest.approx(1.0)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            solve_partition_by_association(list(range(1, 23)))

    @given(st.lists(st.integers(1, 30), min_size=2, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_matches_exhaustive_partition(self, weights):
        """The Problem-1 route finds the true minimum imbalance."""
        import itertools

        result = solve_partition_by_association(weights)
        total = sum(weights)
        best = min(
            abs(2 * sum(combo) - total)
            for k in range(1, len(weights))
            for combo in itertools.combinations(weights, k))
        assert result.imbalance == pytest.approx(float(best))
