"""Tests for WiFi channel assignment (the §V-A assumption checker)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wifi.channels import (NON_OVERLAPPING_2_4GHZ, assign_channels,
                                 interference_graph)


class TestInterferenceGraph:
    def test_close_pairs_interfere(self):
        xy = np.array([[0.0, 0.0], [10.0, 0.0], [100.0, 0.0]])
        graph = interference_graph(xy, 40.0)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            interference_graph(np.ones((2, 3)), 10.0)
        with pytest.raises(ValueError):
            interference_graph(np.ones((2, 2)), 0.0)


class TestAssignChannels:
    def test_paper_small_deployment_is_conflict_free(self):
        """Three well-spread extenders (the testbed) get distinct
        non-overlapping channels — the paper's assumption holds."""
        xy = np.array([[0.0, 0.0], [30.0, 0.0], [15.0, 30.0]])
        plan = assign_channels(xy, interference_radius_m=50.0)
        assert plan.conflict_free
        assert len(set(plan.channels)) == 3
        assert set(plan.channels) <= set(NON_OVERLAPPING_2_4GHZ)

    def test_isolated_extenders_may_share(self):
        xy = np.array([[0.0, 0.0], [500.0, 0.0]])
        plan = assign_channels(xy, interference_radius_m=40.0)
        assert plan.conflict_free  # no interference even if same channel

    def test_dense_deployment_reports_conflicts(self):
        """Four mutually-interfering extenders cannot fit in 3 channels."""
        xy = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        plan = assign_channels(xy, interference_radius_m=10.0)
        assert not plan.conflict_free
        assert len(plan.conflicts) >= 1

    def test_empty_channel_set_rejected(self):
        with pytest.raises(ValueError):
            assign_channels(np.zeros((2, 2)), channel_set=())

    @given(st.integers(1, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_conflicts_reported_iff_same_channel_neighbors(self, n, seed):
        rng = np.random.default_rng(seed)
        xy = rng.uniform(0, 100, (n, 2))
        plan = assign_channels(xy, interference_radius_m=35.0)
        graph = interference_graph(xy, 35.0)
        expected = sorted(
            (a, b) for a, b in graph.edges
            if plan.channels[a] == plan.channels[b])
        assert list(plan.conflicts) == expected
        assert plan.conflict_free == (not expected)
