"""Tests for the composed-fault chaos harness and its acceptance bar."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import chaos


@pytest.fixture(scope="module")
def sweep():
    """One small sweep shared by the assertions below (it is the
    expensive part; 3 trials keep the module fast while the acceptance
    criteria are verified at CI scale by ``wolt chaos --trials 5``)."""
    return chaos.run_chaos_sweep(chaos_levels=(0.0, 0.3),
                                 n_trials=3, n_extenders=8,
                                 n_users=18, seed=0)


class TestChaosSweep:
    def test_deterministic(self, sweep):
        again = chaos.run_chaos_sweep(chaos_levels=(0.0, 0.3),
                                      n_trials=3, n_extenders=8,
                                      n_users=18, seed=0)
        assert again == sweep

    def test_level_zero_guarded_equals_unguarded(self, sweep):
        li = sweep.chaos_levels.index(0.0)
        assert sweep.mean_mbps["wolt"][li] == \
            sweep.mean_mbps["wolt_unguarded"][li]
        assert sweep.crashes["wolt_unguarded"][li] == 0
        assert sweep.quarantine_events[li] == 0

    def test_guarded_loop_never_crashes(self, sweep):
        assert all(c == 0 for c in sweep.crashes["wolt"])
        assert all(c == 0 for c in sweep.crashes["rssi"])

    def test_unguarded_loop_crashes_under_chaos(self, sweep):
        li = sweep.chaos_levels.index(0.3)
        assert sweep.crashes["wolt_unguarded"][li] > 0

    def test_guard_counters_active_under_chaos(self, sweep):
        li = sweep.chaos_levels.index(0.3)
        assert sweep.guard_stats["sanitized_reports"][li] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            chaos.run_chaos_sweep(chaos_levels=(1.5,), n_trials=1)
        with pytest.raises(ValueError):
            chaos.run_chaos_sweep(n_trials=0)

    def test_acceptance_failure_reporting(self, sweep):
        # The real sweep's criteria are judged at CI scale; here the
        # reporter itself is exercised on a doctored result.
        broken = chaos.ChaosResult(
            chaos_levels=(0.3,),
            mean_mbps={"wolt": (10.0,), "wolt_unguarded": (50.0,),
                       "rssi": (60.0,)},
            crashes={"wolt": (2,), "wolt_unguarded": (0,),
                     "rssi": (0,)},
            guard_stats={n: (0,) for n in ("guard_repairs",
                                           "sanitized_reports",
                                           "stale_reports")},
            quarantine_events=(0,), readmit_events=(0,))
        failures = chaos.acceptance_failures(broken)
        assert len(failures) == 3
        assert chaos.acceptance_failures(sweep) == []


class TestQuarantineRecovery:
    def test_quarantined_extender_readmitted_within_probation(self):
        out = chaos.quarantine_recovery_check(seed=0,
                                              probation_epochs=2)
        assert out["quarantine_epoch"] is not None
        assert out["readmitted"]
        assert out["within_probation"]

    def test_deterministic(self):
        assert chaos.quarantine_recovery_check(seed=7) == \
            chaos.quarantine_recovery_check(seed=7)


class TestChaosCli:
    def test_wolt_chaos_smoke(self, capsys):
        from repro.cli import main
        rc = main(["chaos", "--trials", "2", "--seed", "0"])
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "Quarantine drill" in out
        # The exit code is the acceptance verdict (2 trials is below
        # the documented minimum, so either outcome is legitimate —
        # what matters is that the gate is wired to it).
        if "ACCEPTANCE: PASS" in out:
            assert rc == 0
        else:
            assert "ACCEPTANCE: FAIL" in out
            assert rc == 1
