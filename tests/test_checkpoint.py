"""Unit tests for the crash-consistent checkpoint layer.

Covers the durability contract of :mod:`repro.sim.checkpoint` in
isolation: atomic writes, fingerprint stability, journal append/recover
semantics, truncated-tail healing, mid-file corruption rejection, and
canonical snapshot compaction.  The runner-level crash/resume behaviour
is exercised in ``tests/test_runner_durable.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.checkpoint import (STORE_VERSION, CheckpointError,
                                  CheckpointExists, CorruptCheckpoint,
                                  FingerprintMismatch, TrialStore,
                                  atomic_write_json, atomic_write_text,
                                  canonical_json, fingerprint)

DIGEST = fingerprint({"kind": "test", "seed": 0})


class TestAtomicWrite:
    def test_writes_text(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_json_helper_round_trips(self, tmp_path):
        target = tmp_path / "out.json"
        payload = {"b": [1.5, 2.25], "a": "text"}
        atomic_write_json(target, payload)
        assert json.loads(target.read_text()) == payload


class TestFingerprint:
    def test_key_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == \
            fingerprint({"b": 2, "a": 1})

    def test_value_changes_change_the_digest(self):
        assert fingerprint({"seed": 0}) != fingerprint({"seed": 1})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == \
            '{"a":[1,2],"b":1}'


class TestTrialStoreBasics:
    def test_header_written_on_creation(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TrialStore(path, DIGEST, params={"seed": 0}):
            pass
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["version"] == STORE_VERSION
        assert header["fingerprint"] == DIGEST
        assert header["params"] == {"seed": 0}

    def test_append_and_membership(self, tmp_path):
        with TrialStore(tmp_path / "run.jsonl", DIGEST) as store:
            store.append(0, {"value": 1.5})
            store.append(2, {"value": 2.5})
            assert 0 in store and 2 in store and 1 not in store
            assert len(store) == 2
            assert store.completed == frozenset({0, 2})

    def test_append_rejects_negative_index(self, tmp_path):
        with TrialStore(tmp_path / "run.jsonl", DIGEST) as store:
            with pytest.raises(ValueError):
                store.append(-1, {})

    def test_append_rejects_duplicate_index(self, tmp_path):
        with TrialStore(tmp_path / "run.jsonl", DIGEST) as store:
            store.append(0, {"value": 1})
            with pytest.raises(CheckpointError):
                store.append(0, {"value": 2})

    def test_append_after_close_raises(self, tmp_path):
        store = TrialStore(tmp_path / "run.jsonl", DIGEST)
        store.close()
        with pytest.raises(CheckpointError):
            store.append(0, {})

    def test_existing_journal_without_resume_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TrialStore(path, DIGEST):
            pass
        with pytest.raises(CheckpointExists):
            TrialStore(path, DIGEST)


class TestRecovery:
    def _seed_store(self, path: Path) -> None:
        with TrialStore(path, DIGEST) as store:
            store.append(0, {"value": 0.125})
            store.append(1, {"value": 0.25})

    def test_resume_recovers_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._seed_store(path)
        with TrialStore(path, DIGEST, resume=True) as store:
            assert store.records == {0: {"value": 0.125},
                                     1: {"value": 0.25}}

    def test_floats_round_trip_bit_exactly(self, tmp_path):
        path = tmp_path / "run.jsonl"
        value = 0.1 + 0.2  # not representable exactly; repr round-trips
        with TrialStore(path, DIGEST) as store:
            store.append(0, {"value": value})
        with TrialStore(path, DIGEST, resume=True) as store:
            assert store.records[0]["value"] == value

    def test_truncated_tail_is_healed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._seed_store(path)
        good = path.read_bytes()
        path.write_bytes(good + b'{"kind":"record","index":2,"pa')
        with TrialStore(path, DIGEST, resume=True) as store:
            assert store.completed == frozenset({0, 1})
        # The file itself was truncated back to the last good byte.
        assert path.read_bytes() == good

    def test_torn_final_complete_line_is_dropped(self, tmp_path):
        # A crash can also land between the payload and the newline of
        # the previous write, leaving garbage *with* a trailing newline.
        path = tmp_path / "run.jsonl"
        self._seed_store(path)
        good = path.read_bytes()
        path.write_bytes(good + b"{garbage\n")
        with TrialStore(path, DIGEST, resume=True) as store:
            assert store.completed == frozenset({0, 1})
        assert path.read_bytes() == good

    def test_append_after_healing_lands_cleanly(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._seed_store(path)
        path.write_bytes(path.read_bytes() + b'{"kind":"rec')
        with TrialStore(path, DIGEST, resume=True) as store:
            store.append(2, {"value": 0.5})
        with TrialStore(path, DIGEST, resume=True) as store:
            assert store.completed == frozenset({0, 1, 2})

    def test_mid_file_damage_is_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._seed_store(path)
        lines = path.read_bytes().split(b"\n")
        lines[1] = b'{"kind": "rec'  # damage a non-final record
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(CorruptCheckpoint):
            TrialStore(path, DIGEST, resume=True)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._seed_store(path)
        other = fingerprint({"kind": "test", "seed": 999})
        with pytest.raises(FingerprintMismatch):
            TrialStore(path, other, resume=True)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind":"record","index":0,"payload":{}}\n')
        with pytest.raises(CorruptCheckpoint):
            TrialStore(path, DIGEST, resume=True)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(canonical_json(
            {"kind": "header", "version": 99,
             "fingerprint": DIGEST}) + "\n")
        with pytest.raises(CorruptCheckpoint):
            TrialStore(path, DIGEST, resume=True)


class TestEventsAndSnapshot:
    def test_events_survive_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TrialStore(path, DIGEST) as store:
            store.append_event("interrupted", signal="SIGTERM",
                               completed=3)
        with TrialStore(path, DIGEST, resume=True) as store:
            assert store.events == [{"event": "interrupted",
                                     "signal": "SIGTERM",
                                     "completed": 3}]

    def test_snapshot_drops_events_and_sorts_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TrialStore(path, DIGEST) as store:
            store.append(3, {"v": 3})
            store.append_event("interrupted", signal="SIGINT")
            store.append(1, {"v": 1})
            store.snapshot()
        text = path.read_text()
        assert "interrupted" not in text
        indices = [json.loads(line)["index"]
                   for line in text.splitlines()[1:]]
        assert indices == [1, 3]

    def test_snapshots_are_byte_identical_across_histories(self,
                                                           tmp_path):
        # Same completed records, different completion orders and an
        # interruption in one history: identical canonical snapshots.
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with TrialStore(path_a, DIGEST) as store:
            store.append(0, {"v": 1.5})
            store.append(1, {"v": 2.5})
            store.snapshot()
        with TrialStore(path_b, DIGEST) as store:
            store.append(1, {"v": 2.5})
            store.append_event("interrupted", signal="SIGTERM")
        with TrialStore(path_b, DIGEST, resume=True) as store:
            store.append(0, {"v": 1.5})
            store.snapshot()
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_store_usable_after_snapshot(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TrialStore(path, DIGEST) as store:
            store.append(0, {"v": 0})
            store.snapshot()
            store.append(1, {"v": 1})
        with TrialStore(path, DIGEST, resume=True) as store:
            assert store.completed == frozenset({0, 1})
