"""Tests for the ``wolt`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for cmd in ("fig2", "fig3", "fig4", "fig5", "fig6", "all",
                    "solve", "faults"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_fig6_trials_flag(self):
        args = build_parser().parse_args(["fig6", "--trials", "5"])
        assert args.trials == 5

    def test_faults_trials_flag(self):
        args = build_parser().parse_args(["faults", "--trials", "3"])
        assert args.trials == 3
        assert args.seed == 0

    def test_solve_flags(self):
        args = build_parser().parse_args(
            ["solve", "--extenders", "4", "--users", "9",
             "--plc-mode", "fixed"])
        assert args.extenders == 4
        assert args.users == 9
        assert args.plc_mode == "fixed"

    def test_bad_plc_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--plc-mode", "bogus"])

    def test_sim_flags(self):
        args = build_parser().parse_args(
            ["sim", "--trials", "7", "--extenders", "4", "--users", "9",
             "--policies", "wolt,rssi", "--checkpoint", "run.jsonl",
             "--resume", "--timeout-s", "2.5", "--workers", "3",
             "--max-retries", "1"])
        assert args.command == "sim"
        assert args.trials == 7
        assert args.policies == "wolt,rssi"
        assert args.checkpoint == "run.jsonl"
        assert args.resume is True
        assert args.timeout_s == 2.5
        assert args.workers == 3
        assert args.max_retries == 1

    def test_sim_defaults(self):
        args = build_parser().parse_args(["sim"])
        assert args.checkpoint is None
        assert args.resume is False
        assert args.timeout_s is None
        assert args.plc_mode == "fixed"

    def test_faults_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["faults", "--checkpoint", "f.jsonl", "--resume"])
        assert args.checkpoint == "f.jsonl"
        assert args.resume is True

    def test_sweeps_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["sweeps", "--checkpoint-dir", "ckpt", "--resume"])
        assert args.checkpoint_dir == "ckpt"
        assert args.resume is True


class TestExecution:
    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "40.00" in out

    def test_solve(self, capsys):
        assert main(["solve", "--extenders", "3", "--users", "6",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "WOLT   aggregate:" in out
        assert "Greedy aggregate:" in out

    def test_fig6_small(self, capsys):
        assert main(["fig6", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6a" in out and "Jain" in out

    def test_faults_small(self, capsys):
        assert main(["faults", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "Control-plane fault injection" in out
        assert "WOLT" in out and "RSSI" in out


class TestSimCommand:
    SMALL = ["sim", "--trials", "3", "--extenders", "3", "--users", "6",
             "--seed", "5", "--policies", "wolt,rssi"]

    def test_sim_runs_and_reports(self, capsys):
        assert main(self.SMALL) == 0
        out = capsys.readouterr().out
        assert "3/3 finished" in out
        assert "wolt mean aggregate" in out
        assert "rssi mean aggregate" in out

    def test_sim_checkpoint_and_resume(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "run.jsonl")
        assert main(self.SMALL + ["--checkpoint", checkpoint]) == 0
        first = capsys.readouterr().out
        assert f"checkpoint: {checkpoint}" in first
        assert main(self.SMALL + ["--checkpoint", checkpoint,
                                  "--resume"]) == 0
        second = capsys.readouterr().out
        assert "(3 resumed from checkpoint, 0 failed)" in second

    def test_sim_existing_checkpoint_without_resume_exits_1(
            self, tmp_path, capsys):
        checkpoint = str(tmp_path / "run.jsonl")
        assert main(self.SMALL + ["--checkpoint", checkpoint]) == 0
        capsys.readouterr()
        assert main(self.SMALL + ["--checkpoint", checkpoint]) == 1
        err = capsys.readouterr().err
        assert "checkpoint error" in err

    def test_sim_fingerprint_mismatch_exits_1(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "run.jsonl")
        assert main(self.SMALL + ["--checkpoint", checkpoint]) == 0
        capsys.readouterr()
        assert main(self.SMALL + ["--checkpoint", checkpoint,
                                  "--resume", "--seed", "6"]) == 1
        err = capsys.readouterr().err
        assert "checkpoint error" in err

    def test_faults_checkpoint_resume_round_trip(self, tmp_path,
                                                 capsys):
        checkpoint = str(tmp_path / "faults.jsonl")
        argv = ["faults", "--trials", "2", "--checkpoint", checkpoint]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second  # resumed sweep reproduces the report


class TestServeFlags:
    def test_serve_chaos_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--spec", "fleet.yaml", "--timeout-s", "30",
             "--retry-budget", "2", "--chaos", "0.4"])
        assert args.timeout_s == 30.0
        assert args.retry_budget == 2
        assert args.chaos == 0.4

    def test_serve_flags_default_to_spec_values(self):
        args = build_parser().parse_args(
            ["serve", "--spec", "fleet.yaml"])
        assert args.timeout_s is None
        assert args.retry_budget is None
        assert args.chaos is None

    def test_serve_ingest_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--spec", "fleet.yaml", "--from", "t.jsonl",
             "--strict", "--dead-letter", "dead.jsonl"])
        assert args.from_stream == "t.jsonl"
        assert args.strict is True
        assert args.dead_letter == "dead.jsonl"

    def test_serve_ingest_flags_default_off(self):
        args = build_parser().parse_args(
            ["serve", "--spec", "fleet.yaml"])
        assert args.from_stream is None
        assert args.strict is False
        assert args.dead_letter is None


class TestRecordCommand:
    SPEC = "tests/data/fleet_smoke.yaml"

    def record(self, tmp_path, epochs=2):
        tmp_path.mkdir(parents=True, exist_ok=True)
        stream = tmp_path / "telemetry.jsonl"
        assert main(["record", "--spec", self.SPEC, "--epochs",
                     str(epochs), "--out", str(stream)]) == 0
        return stream

    def test_record_flags_parse(self):
        args = build_parser().parse_args(
            ["record", "--spec", "fleet.yaml", "--epochs", "5",
             "--start-epoch", "2", "--out", "t.jsonl"])
        assert args.command == "record"
        assert args.epochs == 5
        assert args.start_epoch == 2
        assert args.out == "t.jsonl"

    def test_record_reports_and_writes(self, tmp_path, capsys):
        stream = self.record(tmp_path)
        out = capsys.readouterr().out
        assert "recorded 2 epochs" in out
        assert stream.exists()
        assert stream.read_text().count("\n") >= 3  # header + records

    def test_record_is_bit_reproducible(self, tmp_path, capsys):
        first = self.record(tmp_path / "a")
        second = self.record(tmp_path / "b")
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_record_rejects_bad_epochs(self, tmp_path, capsys):
        assert main(["record", "--spec", self.SPEC, "--epochs", "0",
                     "--out", str(tmp_path / "t.jsonl")]) == 2
        assert "--epochs" in capsys.readouterr().err

    def test_replay_journal_matches_synthetic(self, tmp_path, capsys):
        # The CLI-level identity the crash_resume check also pins:
        # serving --from a clean recording journals byte-identically
        # to the synthetic run it was recorded from.
        stream = self.record(tmp_path)
        synth = tmp_path / "synth.jsonl"
        replay = tmp_path / "replay.jsonl"
        assert main(["serve", "--spec", self.SPEC, "--epochs", "2",
                     "--quiet", "--journal", str(synth)]) == 0
        assert main(["serve", "--spec", self.SPEC, "--epochs", "2",
                     "--quiet", "--journal", str(replay),
                     "--from", str(stream)]) == 0
        capsys.readouterr()
        assert synth.read_bytes() == replay.read_bytes()

    def test_strict_requires_from(self, capsys):
        assert main(["serve", "--spec", self.SPEC, "--strict"]) == 2
        assert "--strict requires --from" in capsys.readouterr().err

    def test_dead_letter_requires_from(self, capsys):
        assert main(["serve", "--spec", self.SPEC,
                     "--dead-letter", "d.jsonl"]) == 2
        assert "requires --from" in capsys.readouterr().err

    def test_from_refuses_chaos(self, tmp_path, capsys):
        stream = self.record(tmp_path)
        capsys.readouterr()
        assert main(["serve", "--spec", self.SPEC, "--from",
                     str(stream), "--chaos", "0.3"]) == 2
        assert "incompatible" in capsys.readouterr().err

    def test_epoch_overrun_is_reported(self, tmp_path, capsys):
        stream = self.record(tmp_path)
        capsys.readouterr()
        assert main(["serve", "--spec", self.SPEC, "--epochs", "5",
                     "--from", str(stream)]) == 2
        assert "exceeds the recorded stream" in capsys.readouterr().err

    def test_damaged_stream_is_an_ingest_error(self, tmp_path, capsys):
        stream = tmp_path / "garbage.jsonl"
        stream.write_text("not a telemetry stream\n", encoding="utf-8")
        assert main(["serve", "--spec", self.SPEC, "--from",
                     str(stream)]) == 1
        assert "ingest error" in capsys.readouterr().err

    def test_dirty_stream_notes_and_quarantines(self, tmp_path, capsys):
        stream = self.record(tmp_path)
        lines = stream.read_text().split("\n")
        del lines[1]  # one record lost in transit
        stream.write_text("\n".join(lines), encoding="utf-8")
        dead = tmp_path / "dead.jsonl"
        capsys.readouterr()
        assert main(["serve", "--spec", self.SPEC, "--epochs", "2",
                     "--quiet", "--from", str(stream),
                     "--dead-letter", str(dead)]) == 0
        out = capsys.readouterr().out
        assert "ingest: 1 records rejected" in out
        assert "missing-record=1" in out
        assert str(dead) in out
        assert "missing-record" in dead.read_text()

    def test_strict_mode_fails_fast_on_dirty_stream(self, tmp_path,
                                                    capsys):
        stream = self.record(tmp_path)
        lines = stream.read_text().split("\n")
        del lines[1]
        stream.write_text("\n".join(lines), encoding="utf-8")
        capsys.readouterr()
        assert main(["serve", "--spec", self.SPEC, "--epochs", "2",
                     "--strict", "--from", str(stream)]) == 1
        assert "ingest error" in capsys.readouterr().err
