"""Tests for the ``wolt`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for cmd in ("fig2", "fig3", "fig4", "fig5", "fig6", "all",
                    "solve", "faults"):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_fig6_trials_flag(self):
        args = build_parser().parse_args(["fig6", "--trials", "5"])
        assert args.trials == 5

    def test_faults_trials_flag(self):
        args = build_parser().parse_args(["faults", "--trials", "3"])
        assert args.trials == 3
        assert args.seed == 0

    def test_solve_flags(self):
        args = build_parser().parse_args(
            ["solve", "--extenders", "4", "--users", "9",
             "--plc-mode", "fixed"])
        assert args.extenders == 4
        assert args.users == 9
        assert args.plc_mode == "fixed"

    def test_bad_plc_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--plc-mode", "bogus"])


class TestExecution:
    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "40.00" in out

    def test_solve(self, capsys):
        assert main(["solve", "--extenders", "3", "--users", "6",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "WOLT   aggregate:" in out
        assert "Greedy aggregate:" in out

    def test_fig6_small(self, capsys):
        assert main(["fig6", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6a" in out and "Jain" in out

    def test_faults_small(self, capsys):
        assert main(["faults", "--trials", "2"]) == 0
        out = capsys.readouterr().out
        assert "Control-plane fault injection" in out
        assert "WOLT" in out and "RSSI" in out
