"""Tests for the Central Controller protocol emulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import (AssociationDirective, CentralController,
                                   ScanReport)


def _report(uid: int, rates) -> ScanReport:
    return ScanReport(user_id=uid, wifi_rates=np.asarray(rates, float))


class TestAdmission:
    def test_rssi_and_wolt_park_on_strongest(self):
        for policy in ("rssi", "wolt"):
            cc = CentralController([60.0, 20.0], policy=policy)
            directive = cc.receive_scan_report(_report(1, [15.0, 10.0]))
            assert directive == AssociationDirective(user_id=1, extender=0)

    def test_greedy_places_for_aggregate(self):
        cc = CentralController([60.0, 20.0], policy="greedy")
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        # Fig. 3c: user 2 greedily prefers extender 2.
        directive = cc.receive_scan_report(_report(2, [40.0, 20.0]))
        assert directive.extender == 1

    def test_scan_must_cover_every_extender(self):
        cc = CentralController([60.0, 20.0])
        with pytest.raises(ValueError):
            cc.receive_scan_report(_report(1, [15.0]))

    def test_deaf_user_rejected(self):
        cc = CentralController([60.0])
        with pytest.raises(ValueError, match="hears no extender"):
            cc.receive_scan_report(_report(1, [0.0]))

    def test_rereport_keeps_existing_association(self):
        # A periodic re-scan from an already-placed client must not
        # trigger a spurious handoff while its extender is reachable.
        cc = CentralController([60.0, 20.0], policy="wolt")
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        cc.reconfigure()  # user 1 moves to extender 1 (Fig. 3 optimum)
        moves = cc.stats.reassignments
        assert cc.receive_scan_report(_report(1, [15.0, 10.0])) is None
        assert cc.associations[1] == 1
        assert cc.stats.reassignments == moves
        # The refreshed estimates are still adopted for the next solve.
        assert cc.reconfigure() == []

    def test_rereport_reparks_when_extender_unreachable(self):
        cc = CentralController([60.0, 20.0], policy="rssi")
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        assert cc.associations[1] == 0
        # Extender 0 went silent for this client: re-admit afresh.
        directive = cc.receive_scan_report(_report(1, [0.0, 10.0]))
        assert directive == AssociationDirective(user_id=1, extender=1)
        assert cc.associations[1] == 1

    def test_counters(self):
        cc = CentralController([60.0, 20.0])
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        assert cc.stats.scan_reports == 2
        assert cc.stats.directives_sent == 2
        assert cc.stats.reassignments == 0  # initial placements


class TestReconfigure:
    def test_wolt_reconfigure_reaches_fig3_optimum(self):
        cc = CentralController([60.0, 20.0], policy="wolt")
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        directives = cc.reconfigure()
        # Both users start on extender 1 (their strongest).  The optimum
        # keeps user 2 there and moves only user 1 to extender 2.
        moves = {d.user_id: d.extender for d in directives}
        assert moves == {1: 1}
        assert cc.network_report().aggregate == pytest.approx(40.0)
        assert cc.stats.reassignments == 1

    def test_non_wolt_reconfigure_is_noop(self):
        for policy in ("greedy", "rssi"):
            cc = CentralController([60.0, 20.0], policy=policy)
            cc.receive_scan_report(_report(1, [15.0, 10.0]))
            assert cc.reconfigure() == []

    def test_stable_reconfigure_sends_nothing(self):
        cc = CentralController([60.0, 20.0], policy="wolt")
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        cc.reconfigure()
        # Second pass with no changes: no directives, no handoffs.
        assert cc.reconfigure() == []

    def test_empty_controller_reconfigure(self):
        cc = CentralController([60.0])
        assert cc.reconfigure() == []


class TestDisconnectAndOverhead:
    def test_disconnect_removes_user(self):
        cc = CentralController([60.0, 20.0])
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.disconnect(1)
        assert cc.connected_users == []
        cc.disconnect(99)  # unknown id is a no-op

    def test_disconnect_then_reconfigure_serves_remaining_users(self):
        cc = CentralController([60.0, 20.0], policy="wolt")
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        cc.reconfigure()
        cc.disconnect(1)
        assert cc.connected_users == [2]
        # The departed client leaves no stale report behind: the solve
        # covers only user 2, who stays on its best extender.
        assert cc.reconfigure() == []
        assert cc.associations == {2: 0}
        assert cc.network_report().aggregate == pytest.approx(40.0)

    def test_handoff_time_accrues_only_on_moves(self):
        cc = CentralController([60.0, 20.0], policy="wolt",
                               handoff_outage_s=2.0)
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        assert cc.stats.handoff_time_s == 0.0
        cc.reconfigure()  # one user moves (see Fig. 3 optimum)
        assert cc.stats.handoff_time_s == pytest.approx(2.0)

    def test_overhead_fraction(self):
        cc = CentralController([60.0, 20.0], policy="wolt",
                               handoff_outage_s=1.0)
        cc.receive_scan_report(_report(1, [15.0, 10.0]))
        cc.receive_scan_report(_report(2, [40.0, 20.0]))
        cc.reconfigure()
        # 1 s outage over (60 s x 2 clients) < 1% — "relatively minor".
        assert cc.reassignment_overhead_fraction(60.0) == pytest.approx(
            1.0 / 120.0)
        with pytest.raises(ValueError):
            cc.reassignment_overhead_fraction(0.0)


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            CentralController([60.0], policy="magic")

    def test_bad_plc_rates(self):
        with pytest.raises(ValueError):
            CentralController([])
