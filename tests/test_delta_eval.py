"""Differential test wall for delta evaluation.

The PR-6 contract: every incremental scoring path must make the exact
same decisions as the full evaluation it replaces.

* :class:`repro.net.engine.DeltaEvaluator` scores a single-user move by
  recomputing only the two touched cells — the resulting aggregate must
  be **bit-identical** to a full scalar :func:`~repro.net.engine.evaluate`
  of the moved assignment, and within 1e-9 of the batched kernel.
* ``solve_phase2(delta=True)`` maintains the insertion-gains matrix
  incrementally — its final assignment must be bit-identical to the
  full-rebuild batch path and to the scalar reference oracle.
* ``IncrementalWolt(delta=True)`` must apply the exact same moves as
  the batched scoring loop on seeded churn sequences.

All of it is parametrized over topology/demand seeds so the wall covers
a spread of scenarios, not one lucky instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import IncrementalWolt
from repro.core.phase1 import solve_phase1
from repro.core.phase2 import solve_phase2
from repro.core.problem import UNASSIGNED
from repro.core.wolt import solve_wolt
from repro.net.engine import (DeltaEvaluator, count_engine_calls,
                              evaluate, evaluate_batch)

from .conftest import random_scenario

ATOL = 1e-9

TOPOLOGY_SEEDS = [0, 1, 7, 42, 1337]
PLC_MODES = ("redistribute", "active", "fixed")


def _random_move_sequence(rng, scenario, assignment, n_moves):
    """Yield ``(user, dest)`` candidate moves over reachable extenders."""
    moves = []
    for _ in range(n_moves):
        user = int(rng.integers(scenario.n_users))
        reachable = scenario.reachable(user)
        if rng.random() < 0.1:
            moves.append((user, UNASSIGNED))
        else:
            moves.append((user, int(rng.choice(reachable))))
    return moves


class TestDeltaEvaluatorDifferential:
    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS)
    @pytest.mark.parametrize("plc_mode", PLC_MODES)
    def test_random_move_sequence_matches_full_evaluate(self, seed,
                                                        plc_mode):
        """Seeded random moves: delta score == scalar evaluate, bitwise."""
        rng = np.random.default_rng(seed)
        scenario = random_scenario(rng, n_users=20, n_extenders=6,
                                   reachable_prob=0.8)
        assignment = np.array([int(rng.choice(scenario.reachable(u)))
                               for u in range(scenario.n_users)])
        ev = DeltaEvaluator(scenario, assignment, plc_mode=plc_mode)
        assert ev.aggregate == evaluate(scenario, assignment,
                                        plc_mode=plc_mode).aggregate
        working = assignment.copy()
        for user, dest in _random_move_sequence(rng, scenario,
                                                working, 50):
            moved = working.copy()
            moved[user] = dest
            got = ev.score_move(user, dest)
            want = evaluate(scenario, moved, plc_mode=plc_mode).aggregate
            assert got == want  # bit-identical, not approx
            batched = evaluate_batch(
                scenario, moved[np.newaxis, :],
                plc_mode=plc_mode).aggregates[0]
            assert got == pytest.approx(want, abs=ATOL)
            assert abs(got - float(batched)) <= ATOL
            if rng.random() < 0.5:
                assert ev.commit(user, dest) == want
                working = moved
        # After the whole sequence the incremental cache has zero drift.
        assert ev.reconcile() == 0.0

    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS[:3])
    def test_from_batch_seeds_from_cached_report(self, seed):
        rng = np.random.default_rng(seed)
        scenario = random_scenario(rng, n_users=12, n_extenders=4)
        batch = np.vstack([
            [int(rng.choice(scenario.reachable(u)))
             for u in range(scenario.n_users)]
            for _ in range(3)])
        report = evaluate_batch(scenario, batch)
        for b in range(3):
            ev = DeltaEvaluator.from_batch(scenario, report, index=b)
            assert ev.aggregate == evaluate(scenario,
                                            batch[b]).aggregate

    def test_from_batch_rejects_stale_report(self, rng):
        scenario = random_scenario(rng, n_users=8, n_extenders=3)
        a = np.zeros(8, dtype=int)
        b = np.ones(8, dtype=int)
        report = evaluate_batch(scenario, a[np.newaxis, :])
        # Forge a report whose wifi rows do not match its assignment.
        forged = evaluate_batch(scenario, b[np.newaxis, :])
        import dataclasses
        stale = dataclasses.replace(
            report, wifi_throughputs=forged.wifi_throughputs)
        with pytest.raises(ValueError, match="stale"):
            DeltaEvaluator.from_batch(scenario, stale, index=0)

    def test_reconcile_detects_cache_corruption(self, rng):
        scenario = random_scenario(rng, n_users=8, n_extenders=3)
        ev = DeltaEvaluator(scenario, np.zeros(8, dtype=int))
        ev._wifi[0] += 1.0  # simulate a bookkeeping bug
        with pytest.raises(RuntimeError, match="drift"):
            ev.reconcile()

    def test_score_move_counts_delta_not_scalar(self, rng):
        scenario = random_scenario(rng, n_users=8, n_extenders=3)
        ev = DeltaEvaluator(scenario, np.zeros(8, dtype=int))
        with count_engine_calls() as stats:
            ev.score_move(0, 1)
            ev.score_move(1, 2)
        assert stats.delta_moves == 2
        assert stats.scalar_calls == 0
        assert stats.candidates_scored == 2

    def test_report_matches_full_evaluate(self, rng):
        scenario = random_scenario(rng, n_users=8, n_extenders=3)
        assignment = np.array([int(rng.choice(scenario.reachable(u)))
                               for u in range(8)])
        ev = DeltaEvaluator(scenario, assignment)
        ev.commit(0, int(scenario.reachable(0)[-1]))
        ref = evaluate(scenario, ev.assignment)
        got = ev.report()
        assert np.array_equal(got.assignment, ref.assignment)
        assert got.aggregate == ref.aggregate


class TestPhase2DeltaDifferential:
    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS)
    @pytest.mark.parametrize("n_users,n_ext", [(10, 3), (24, 6),
                                               (40, 8)])
    def test_delta_insertion_bit_identical(self, seed, n_users, n_ext):
        """Phase-2 assignments identical across delta/batch/scalar."""
        rng = np.random.default_rng(seed)
        scenario = random_scenario(rng, n_users, n_ext,
                                   reachable_prob=0.75)
        p1 = solve_phase1(scenario)
        delta = solve_phase2(scenario, p1.assignment, delta=True)
        batch = solve_phase2(scenario, p1.assignment, delta=False)
        scalar = solve_phase2(scenario, p1.assignment, vectorized=False)
        assert np.array_equal(delta.assignment, batch.assignment)
        assert np.array_equal(delta.assignment, scalar.assignment)
        assert delta.objective == batch.objective
        assert delta.iterations == batch.iterations

    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS[:3])
    def test_delta_with_capacities_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        scenario = random_scenario(rng, 18, 5, capacities=True)
        p1 = solve_phase1(scenario)
        delta = solve_phase2(scenario, p1.assignment, delta=True)
        batch = solve_phase2(scenario, p1.assignment, delta=False)
        assert np.array_equal(delta.assignment, batch.assignment)

    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS[:3])
    def test_full_wolt_unchanged_by_delta_default(self, seed):
        """solve_wolt's decisions are the same as the pre-delta code."""
        rng = np.random.default_rng(seed)
        scenario = random_scenario(rng, 20, 5, reachable_prob=0.8)
        got = solve_wolt(scenario)
        # The oracle: batch insertion (the pre-PR-6 default path).
        p1 = solve_phase1(scenario)
        oracle = solve_phase2(scenario, p1.assignment, delta=False)
        assert np.array_equal(got.assignment, oracle.assignment)

    def test_unplaceable_user_still_raises(self, rng):
        scenario = random_scenario(rng, 6, 2)
        wifi = scenario.wifi_rates.copy()
        wifi[3, :] = 0.0  # user 3 hears nothing
        from repro.core.problem import Scenario
        dead = Scenario(wifi_rates=wifi, plc_rates=scenario.plc_rates)
        start = np.full(6, UNASSIGNED)
        with pytest.raises(ValueError, match="cannot be attached"):
            solve_phase2(dead, start, delta=True)


class TestWarmStart:
    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS[:3])
    def test_warm_start_from_own_solution_is_fixed_point(self, seed):
        """Re-solving warm from the cold optimum returns it unchanged."""
        rng = np.random.default_rng(seed)
        scenario = random_scenario(rng, 20, 5, reachable_prob=0.8)
        p1 = solve_phase1(scenario)
        cold = solve_phase2(scenario, p1.assignment)
        warm = solve_phase2(scenario, p1.assignment,
                            warm_start=cold.assignment)
        assert np.array_equal(warm.assignment, cold.assignment)
        # The incremental cell sums accumulate in a different order on
        # the warm path, so the objective may differ in the last ulp.
        assert warm.objective == pytest.approx(cold.objective, abs=ATOL)

    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS)
    def test_warm_start_is_complete_and_competitive(self, seed):
        """Warm-started solve stays a valid, near-cold-quality solution."""
        rng = np.random.default_rng(seed)
        scenario = random_scenario(rng, 24, 6, reachable_prob=0.8)
        p1 = solve_phase1(scenario)
        cold = solve_phase2(scenario, p1.assignment)
        # Perturb the cold solution to emulate the previous epoch.
        prev = cold.assignment.copy()
        for user in rng.choice(scenario.n_users, size=5, replace=False):
            prev[user] = int(rng.choice(scenario.reachable(int(user))))
        warm = solve_phase2(scenario, p1.assignment, warm_start=prev)
        assert not np.any(warm.assignment == UNASSIGNED)
        assert warm.objective >= cold.objective * 0.95

    def test_warm_start_ignores_stale_extenders(self, rng):
        scenario = random_scenario(rng, 10, 3, reachable_prob=0.7)
        p1 = solve_phase1(scenario)
        prev = np.full(10, 99)  # out-of-range extender ids
        warm = solve_phase2(scenario, p1.assignment, warm_start=prev)
        cold = solve_phase2(scenario, p1.assignment)
        assert np.array_equal(warm.assignment, cold.assignment)

    def test_warm_start_wrong_length_rejected(self, rng):
        scenario = random_scenario(rng, 10, 3)
        p1 = solve_phase1(scenario)
        with pytest.raises(ValueError, match="warm_start"):
            solve_phase2(scenario, p1.assignment,
                         warm_start=np.zeros(3, dtype=int))

    def test_solve_wolt_threads_warm_start(self, rng):
        scenario = random_scenario(rng, 16, 4, reachable_prob=0.8)
        cold = solve_wolt(scenario)
        warm = solve_wolt(scenario, warm_start=cold.assignment)
        assert not np.any(warm.assignment == UNASSIGNED)


class TestIncrementalWoltDelta:
    @staticmethod
    def _churned_controller(seed, n_ext=4, n_users=14, **kwargs):
        rng = np.random.default_rng(seed)
        plc = rng.uniform(20.0, 200.0, size=n_ext)
        ctl = IncrementalWolt(plc, **kwargs)
        for uid in range(n_users):
            ctl.add_user(uid, rng.uniform(6.5, 144.0, size=n_ext))
        return ctl, rng

    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS)
    def test_delta_reconfigure_matches_batched_oracle(self, seed):
        """Identical churn -> identical moves, delta vs batched scoring."""
        a, rng_a = self._churned_controller(seed, delta=True)
        b, rng_b = self._churned_controller(seed, delta=False)
        out_a = a.reconfigure()
        out_b = b.reconfigure()
        assert out_a.moves == out_b.moves
        assert out_a.aggregate_after == pytest.approx(
            out_b.aggregate_after, abs=ATOL)
        # Churn a little and reconfigure again.
        for ctl, rng in ((a, rng_a), (b, rng_b)):
            ctl.remove_user(0)
            ctl.add_user(100, rng.uniform(6.5, 144.0,
                                          size=ctl.plc_rates.size))
        assert a.reconfigure().moves == b.reconfigure().moves

    @pytest.mark.parametrize("seed", TOPOLOGY_SEEDS[:3])
    def test_delta_respects_hysteresis_and_move_cap(self, seed):
        a, _ = self._churned_controller(seed, delta=True,
                                        min_gain_mbps=2.0, max_moves=2)
        b, _ = self._churned_controller(seed, delta=False,
                                        min_gain_mbps=2.0, max_moves=2)
        out_a, out_b = a.reconfigure(), b.reconfigure()
        assert out_a.moves == out_b.moves
        assert len(out_a.moves) <= 2

    def test_warm_start_seam_reconfigures_validly(self):
        ctl, rng = self._churned_controller(3, warm_start=True)
        first = ctl.reconfigure()
        assert first.aggregate_after >= first.aggregate_before - ATOL
        ctl.add_user(200, rng.uniform(6.5, 144.0,
                                      size=ctl.plc_rates.size))
        second = ctl.reconfigure()
        assert second.aggregate_after >= second.aggregate_before - ATOL
