"""Tests for the incremental / hysteresis WOLT controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import IncrementalWolt

from .conftest import random_scenario


def _loaded_controller(rng, n_users=12, n_ext=4, **kwargs):
    sc = random_scenario(rng, n_users, n_ext)
    ctrl = IncrementalWolt(sc.plc_rates, **kwargs)
    for uid in range(n_users):
        ctrl.add_user(uid, sc.wifi_rates[uid])
    return ctrl, sc


class TestChurn:
    def test_add_user_parks_on_strongest(self, rng):
        ctrl = IncrementalWolt([100.0, 50.0])
        j = ctrl.add_user(7, [20.0, 30.0])
        assert j == 1
        assert ctrl.assignment[7] == 1
        assert ctrl.n_users == 1

    def test_duplicate_user_rejected(self):
        ctrl = IncrementalWolt([100.0])
        ctrl.add_user(1, [10.0])
        with pytest.raises(ValueError):
            ctrl.add_user(1, [10.0])

    def test_deaf_user_rejected(self):
        ctrl = IncrementalWolt([100.0])
        with pytest.raises(ValueError):
            ctrl.add_user(1, [0.0])

    def test_rate_vector_length_checked(self):
        ctrl = IncrementalWolt([100.0, 50.0])
        with pytest.raises(ValueError):
            ctrl.add_user(1, [10.0])

    def test_remove_user(self):
        ctrl = IncrementalWolt([100.0])
        ctrl.add_user(1, [10.0])
        ctrl.remove_user(1)
        assert ctrl.n_users == 0
        ctrl.remove_user(99)  # unknown: no-op


class TestReconfigure:
    def test_empty_controller(self):
        ctrl = IncrementalWolt([100.0])
        outcome = ctrl.reconfigure()
        assert outcome.moves == ()
        assert outcome.aggregate_after == 0.0

    def test_zero_threshold_tracks_wolt(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=0.0)
        outcome = ctrl.reconfigure()
        # With no hysteresis, applied moves reach at least WOLT's level
        # minus negligible tolerance.
        assert outcome.aggregate_after >= outcome.wolt_aggregate - 1e-6 \
            or outcome.hysteresis_cost <= 1e-6

    def test_moves_never_hurt(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=0.5)
        outcome = ctrl.reconfigure()
        assert outcome.aggregate_after >= outcome.aggregate_before - 1e-9

    def test_each_move_clears_the_bar(self, rng):
        """Every applied move gained at least min_gain_mbps."""
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=2.0)
        outcome = ctrl.reconfigure()
        if outcome.moves:
            total_gain = outcome.aggregate_after - outcome.aggregate_before
            assert total_gain >= 2.0 * len(outcome.moves) - 1e-6

    def test_move_cap_enforced(self, rng):
        ctrl, _ = _loaded_controller(rng, max_moves=1)
        outcome = ctrl.reconfigure()
        assert len(outcome.moves) <= 1
        assert ctrl.total_moves <= 1

    def test_high_threshold_freezes_network(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=1e9)
        outcome = ctrl.reconfigure()
        assert outcome.moves == ()
        assert outcome.aggregate_after == pytest.approx(
            outcome.aggregate_before)

    def test_threshold_monotone_in_moves(self, rng):
        """Raising the hysteresis bar never increases the move count."""
        moves = []
        for threshold in (0.0, 1.0, 5.0, 50.0):
            ctrl, _ = _loaded_controller(np.random.default_rng(7),
                                         min_gain_mbps=threshold)
            moves.append(len(ctrl.reconfigure().moves))
        assert moves == sorted(moves, reverse=True)

    def test_assignment_state_updated(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=0.0)
        outcome = ctrl.reconfigure()
        for user_id, _, new_j in outcome.moves:
            assert ctrl.assignment[user_id] == new_j
        # aggregate_throughput() reflects the applied state.
        assert ctrl.aggregate_throughput() == pytest.approx(
            outcome.aggregate_after)

    def test_second_reconfigure_is_stable(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=0.0)
        ctrl.reconfigure()
        second = ctrl.reconfigure()
        # No strictly-improving moves should remain at zero threshold
        # beyond numerical dust.
        assert (second.aggregate_after
                - second.aggregate_before) <= max(
                    1e-6, 0.01 * second.aggregate_before)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            IncrementalWolt([100.0], min_gain_mbps=-1.0)
        with pytest.raises(ValueError):
            IncrementalWolt([100.0], max_moves=-1)
        with pytest.raises(ValueError):
            IncrementalWolt([])
