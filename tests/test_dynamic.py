"""Tests for the incremental / hysteresis WOLT controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import IncrementalWolt
from repro.core.problem import UNASSIGNED, Scenario
from repro.core.wolt import solve_wolt
from repro.net.engine import DeltaEvaluator

from .conftest import random_scenario


def _loaded_controller(rng, n_users=12, n_ext=4, **kwargs):
    sc = random_scenario(rng, n_users, n_ext)
    ctrl = IncrementalWolt(sc.plc_rates, **kwargs)
    for uid in range(n_users):
        ctrl.add_user(uid, sc.wifi_rates[uid])
    return ctrl, sc


class TestChurn:
    def test_add_user_parks_on_strongest(self, rng):
        ctrl = IncrementalWolt([100.0, 50.0])
        j = ctrl.add_user(7, [20.0, 30.0])
        assert j == 1
        assert ctrl.assignment[7] == 1
        assert ctrl.n_users == 1

    def test_duplicate_user_rejected(self):
        ctrl = IncrementalWolt([100.0])
        ctrl.add_user(1, [10.0])
        with pytest.raises(ValueError):
            ctrl.add_user(1, [10.0])

    def test_deaf_user_rejected(self):
        ctrl = IncrementalWolt([100.0])
        with pytest.raises(ValueError):
            ctrl.add_user(1, [0.0])

    def test_rate_vector_length_checked(self):
        ctrl = IncrementalWolt([100.0, 50.0])
        with pytest.raises(ValueError):
            ctrl.add_user(1, [10.0])

    def test_remove_user(self):
        ctrl = IncrementalWolt([100.0])
        ctrl.add_user(1, [10.0])
        ctrl.remove_user(1)
        assert ctrl.n_users == 0
        ctrl.remove_user(99)  # unknown: no-op


class TestReconfigure:
    def test_empty_controller(self):
        ctrl = IncrementalWolt([100.0])
        outcome = ctrl.reconfigure()
        assert outcome.moves == ()
        assert outcome.aggregate_after == 0.0

    def test_zero_threshold_tracks_wolt(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=0.0)
        outcome = ctrl.reconfigure()
        # With no hysteresis, applied moves reach at least WOLT's level
        # minus negligible tolerance.
        assert outcome.aggregate_after >= outcome.wolt_aggregate - 1e-6 \
            or outcome.hysteresis_cost <= 1e-6

    def test_moves_never_hurt(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=0.5)
        outcome = ctrl.reconfigure()
        assert outcome.aggregate_after >= outcome.aggregate_before - 1e-9

    def test_each_move_clears_the_bar(self, rng):
        """Every applied move gained at least min_gain_mbps."""
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=2.0)
        outcome = ctrl.reconfigure()
        if outcome.moves:
            total_gain = outcome.aggregate_after - outcome.aggregate_before
            assert total_gain >= 2.0 * len(outcome.moves) - 1e-6

    def test_move_cap_enforced(self, rng):
        ctrl, _ = _loaded_controller(rng, max_moves=1)
        outcome = ctrl.reconfigure()
        assert len(outcome.moves) <= 1
        assert ctrl.total_moves <= 1

    def test_high_threshold_freezes_network(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=1e9)
        outcome = ctrl.reconfigure()
        assert outcome.moves == ()
        assert outcome.aggregate_after == pytest.approx(
            outcome.aggregate_before)

    def test_threshold_monotone_in_moves(self, rng):
        """Raising the hysteresis bar never increases the move count."""
        moves = []
        for threshold in (0.0, 1.0, 5.0, 50.0):
            ctrl, _ = _loaded_controller(np.random.default_rng(7),
                                         min_gain_mbps=threshold)
            moves.append(len(ctrl.reconfigure().moves))
        assert moves == sorted(moves, reverse=True)

    def test_assignment_state_updated(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=0.0)
        outcome = ctrl.reconfigure()
        for user_id, _, new_j in outcome.moves:
            assert ctrl.assignment[user_id] == new_j
        # aggregate_throughput() reflects the applied state.
        assert ctrl.aggregate_throughput() == pytest.approx(
            outcome.aggregate_after)

    def test_second_reconfigure_is_stable(self, rng):
        ctrl, _ = _loaded_controller(rng, min_gain_mbps=0.0)
        ctrl.reconfigure()
        second = ctrl.reconfigure()
        # No strictly-improving moves should remain at zero threshold
        # beyond numerical dust.
        assert (second.aggregate_after
                - second.aggregate_before) <= max(
                    1e-6, 0.01 * second.aggregate_before)


def _drift_scenario() -> Scenario:
    """A scenario whose first greedy move drifts ``best += gain``.

    Everyone parks on extender 0 (dominant WiFi) whose PLC backhaul is
    junk, so the initial aggregate is tiny and the first target move
    multiplies it ~80x.  ``fl(best + fl(agg - best))`` is only exact
    when the subtraction is (Sterbenz: within a factor of two); the
    pinned ``plc[0] = 1.186`` makes the first jump land on bit patterns
    where the old accumulation ends up ``~1.4e-14`` *above* the true
    committed aggregate.
    """
    rng = np.random.default_rng(3)
    n_users, n_ext = 30, 6
    wifi = rng.uniform(6.5, 144.0, size=(n_users, n_ext))
    wifi[:, 0] = rng.uniform(140.0, 144.0, size=n_users)
    plc = rng.uniform(20.0, 200.0, size=n_ext)
    plc[0] = 1.186
    return Scenario(wifi_rates=wifi, plc_rates=plc)


def _replay_greedy(scenario: Scenario, current: np.ndarray):
    """Replay the greedy target-move loop with a drift-free baseline.

    Returns the ``(move_index, committed_aggregate)`` sequence the
    fixed implementation must follow: the baseline is re-read from the
    evaluator after every commit, never accumulated.
    """
    target = solve_wolt(scenario).assignment
    pending = {i for i in range(scenario.n_users)
               if target[i] != current[i] and target[i] != UNASSIGNED}
    ev = DeltaEvaluator(scenario, current.copy())
    best = ev.aggregate
    steps = []
    while pending:
        idxs = sorted(pending)
        aggs = [ev.score_move(i, int(target[i])) for i in idxs]
        gain, idx = max((float(a) - best, i)
                        for a, i in zip(aggs, idxs))
        if gain <= 0:
            break
        best = ev.commit(idx, int(target[idx]))
        pending.discard(idx)
        steps.append((idx, best))
    return steps


class TestBugfixRegressions:
    """Pins for the two ``reconfigure`` control-loop bugs.

    Both tests fail on the pre-fix code: the first because zero-gain
    tie-point moves were silently dropped (``gain <= 1e-12`` break),
    the second because ``best += gain`` drifted the greedy threshold
    baseline off the evaluator's committed aggregate.
    """

    def test_zero_gain_tie_moves_applied(self):
        """min_gain 0 must apply zero-gain moves from the WOLT target.

        Both extenders are PLC-bottlenecked (10 Mbps each behind
        40-50 Mbps WiFi links), so swapping the two users between them
        changes nothing about the aggregate — a pure tie point.  The
        fresh WOLT target still prefers the swapped association, and
        the class contract says min_gain 0 *is* vanilla epoch-boundary
        WOLT, so the swap must happen.
        """
        scenario = Scenario(wifi_rates=np.array([[40.0, 50.0],
                                                 [50.0, 40.0]]),
                            plc_rates=np.array([10.0, 10.0]))
        target = solve_wolt(scenario).assignment
        parked = np.array([1, 0])  # add_user parks on argmax WiFi
        assert not np.array_equal(target, parked), \
            "precondition: the tie point must separate target from parking"
        for delta in (True, False):
            ctrl = IncrementalWolt(scenario.plc_rates, min_gain_mbps=0.0,
                                   delta=delta)
            ctrl.add_user(0, scenario.wifi_rates[0])
            ctrl.add_user(1, scenario.wifi_rates[1])
            assert [ctrl.assignment[u] for u in (0, 1)] == [1, 0]
            outcome = ctrl.reconfigure()
            assert len(outcome.moves) == 2
            assert [ctrl.assignment[u] for u in (0, 1)] == \
                target.tolist()
            assert outcome.hysteresis_cost == 0.0

    @pytest.mark.parametrize("seed", [0, 3, 11, 42])
    def test_zero_threshold_is_vanilla_wolt(self, seed):
        """min_gain 0 adopts the complete fresh WOLT target, exactly."""
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, 14, 4)
        ctrl = IncrementalWolt(sc.plc_rates, min_gain_mbps=0.0)
        for uid in range(sc.n_users):
            ctrl.add_user(uid, sc.wifi_rates[uid])
        ctrl.reconfigure()
        target = solve_wolt(sc).assignment
        adopted = np.array([ctrl.assignment[uid]
                            for uid in range(sc.n_users)])
        assert np.array_equal(adopted, target)

    def test_threshold_baseline_does_not_drift(self):
        """The greedy bar must compare against the committed aggregate.

        The pinned scenario's first move drifts the old ``best += gain``
        accumulation ~1.4e-14 above the evaluator's true aggregate.
        Setting ``min_gain_mbps`` to the *exact* gain of the second
        replayed move then separates the implementations: against the
        true baseline the move clears the bar with equality and is
        applied; against the drifted baseline its computed gain falls
        1.4e-14 short and the loop stops after one move.
        """
        scenario = _drift_scenario()
        parked = np.argmax(scenario.wifi_rates, axis=1)
        steps = _replay_greedy(scenario, parked)
        assert len(steps) >= 2, "precondition: needs two greedy moves"
        ev = DeltaEvaluator(scenario, parked.copy())
        agg0 = ev.commit(steps[0][0],
                         int(solve_wolt(scenario).assignment[steps[0][0]]))
        drifted = ev.aggregate  # true committed aggregate after move 1
        # Demonstrate the drift the old arithmetic would have produced.
        before = DeltaEvaluator(scenario, parked.copy()).aggregate
        old_best = before + (agg0 - before)
        assert old_best > drifted, \
            "precondition: the pinned scenario must drift the baseline up"
        exact_second_gain = steps[1][1] - agg0
        ctrl = IncrementalWolt(scenario.plc_rates,
                               min_gain_mbps=exact_second_gain)
        for uid in range(scenario.n_users):
            ctrl.add_user(uid, scenario.wifi_rates[uid])
        outcome = ctrl.reconfigure()
        assert len(outcome.moves) >= 2
        assert outcome.moves[1][0] == steps[1][0]


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            IncrementalWolt([100.0], min_gain_mbps=-1.0)
        with pytest.raises(ValueError):
            IncrementalWolt([100.0], max_moves=-1)
        with pytest.raises(ValueError):
            IncrementalWolt([])
