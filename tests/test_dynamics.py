"""Tests for the online arrival/departure dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import UNASSIGNED
from repro.sim.dynamics import OnlineSimulation
from repro.sim.runner import sample_floor_plan


def _sim(policy="wolt", seed=0, **kwargs) -> OnlineSimulation:
    plan_seq, arrival_seq = np.random.SeedSequence(seed).spawn(2)
    rng = np.random.default_rng(plan_seq)
    plan = sample_floor_plan(5, rng)
    return OnlineSimulation(plan, policy,
                            rng=np.random.default_rng(arrival_seq),
                            **kwargs)


class TestConstruction:
    def test_invalid_policy(self):
        rng = np.random.default_rng(0)
        plan = sample_floor_plan(3, rng)
        with pytest.raises(ValueError):
            OnlineSimulation(plan, "magic", rng=rng)

    def test_invalid_rates(self):
        rng = np.random.default_rng(0)
        plan = sample_floor_plan(3, rng)
        with pytest.raises(ValueError):
            OnlineSimulation(plan, "wolt", rng=rng, arrival_rate=0.0)


class TestPopulation:
    def test_seed_users(self):
        sim = _sim()
        sim.seed_users(10)
        assert sim.n_users == 10
        # Seeded users are all associated somewhere.
        assert all(j != UNASSIGNED for j in sim.assignment.values())

    def test_population_grows_at_expected_rate(self):
        """λ=3, μ=1 over 16.5 time units: net +33 on average."""
        growths = []
        for seed in range(5):
            sim = _sim(seed=seed)
            sim.seed_users(3)
            before = sim.n_users
            sim.run_epoch()
            growths.append(sim.n_users - before)
        assert 20 <= np.mean(growths) <= 46

    def test_departures_remove_users(self):
        sim = _sim(policy="rssi", arrival_rate=0.001, departure_rate=5.0,
                   epoch_duration=10.0)
        sim.seed_users(20)
        stats = sim.run_epoch()
        assert stats.departures > 0
        assert sim.n_users < 20


class TestEpochStats:
    def test_epoch_numbering_and_history(self):
        sim = _sim(policy="rssi")
        sim.seed_users(5)
        history = sim.run(3)
        assert [e.epoch for e in history] == [1, 2, 3]
        assert sim.history == history

    def test_invalid_epoch_count(self):
        with pytest.raises(ValueError):
            _sim().run(0)

    def test_wolt_reassigns_greedy_does_not(self):
        for policy, expect_reassign in (("wolt", True), ("greedy", False),
                                        ("rssi", False)):
            sim = _sim(policy=policy, seed=3)
            sim.seed_users(12)
            stats = sim.run_epoch()
            if expect_reassign:
                assert stats.reassignments > 0
            else:
                assert stats.reassignments == 0

    def test_aggregate_positive_with_users(self):
        sim = _sim(policy="greedy", seed=2)
        sim.seed_users(6)
        stats = sim.run_epoch()
        assert stats.aggregate_throughput > 0
        assert 0 < stats.jain_fairness <= 1

    def test_wolt_scores_at_least_rssi_under_fixed_model(self):
        """At the epoch boundary WOLT's reconfiguration must beat the
        stay-on-strongest policy it starts from."""
        agg = {}
        for policy in ("wolt", "rssi"):
            sim = _sim(policy=policy, seed=4, plc_mode="fixed")
            sim.seed_users(15)
            agg[policy] = sim.run_epoch().aggregate_throughput
        assert agg["wolt"] >= agg["rssi"] - 1e-6


class TestDeterminism:
    def test_same_seed_same_history(self):
        runs = []
        for _ in range(2):
            sim = _sim(policy="wolt", seed=9)
            sim.seed_users(8)
            runs.append([(e.n_users, e.arrivals, e.reassignments,
                          round(e.aggregate_throughput, 6))
                         for e in sim.run(2)])
        assert runs[0] == runs[1]
