"""Tests for the end-to-end concatenated-link throughput engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import UNASSIGNED, Scenario
from repro.net.engine import aggregate_throughput, evaluate

from .conftest import random_scenario


class TestFig3CaseStudy:
    """The engine must reproduce every number in Fig. 3 exactly."""

    def test_rssi_assignment_yields_22(self, fig3_scenario):
        report = evaluate(fig3_scenario, [0, 0])
        assert report.aggregate == pytest.approx(2 / (1 / 15 + 1 / 40))
        assert report.aggregate == pytest.approx(21.82, abs=0.01)
        assert report.user_throughputs == pytest.approx([10.91, 10.91],
                                                        abs=0.01)

    def test_greedy_assignment_yields_30(self, fig3_scenario):
        report = evaluate(fig3_scenario, [0, 1])
        assert report.aggregate == pytest.approx(30.0)
        # User 2's extender-2 PLC grant grows to 15 via redistribution.
        assert report.user_throughputs == pytest.approx([15.0, 15.0])
        assert report.bottleneck_is_plc.tolist() == [False, True]

    def test_greedy_without_redistribution_yields_25(self, fig3_scenario):
        report = evaluate(fig3_scenario, [0, 1], plc_mode="active")
        assert report.aggregate == pytest.approx(25.0)
        assert report.user_throughputs == pytest.approx([15.0, 10.0])

    def test_optimal_assignment_yields_40(self, fig3_scenario):
        report = evaluate(fig3_scenario, [1, 0])
        assert report.aggregate == pytest.approx(40.0)
        assert report.user_throughputs == pytest.approx([10.0, 30.0])
        # User 2 is PLC-bottlenecked at 30 despite a 40 Mbps WiFi link.
        assert report.bottleneck_is_plc.tolist() == [True, False]


class TestEvaluateSemantics:
    def test_empty_assignment(self, fig3_scenario):
        report = evaluate(fig3_scenario, [UNASSIGNED, UNASSIGNED])
        assert report.aggregate == 0.0
        assert np.all(report.user_throughputs == 0.0)
        assert report.n_active_extenders == 0

    def test_require_complete_raises(self, fig3_scenario):
        with pytest.raises(ValueError):
            evaluate(fig3_scenario, [0, UNASSIGNED], require_complete=True)

    def test_single_user_single_extender_bottleneck(self):
        sc = Scenario(wifi_rates=np.array([[100.0]]),
                      plc_rates=np.array([40.0]))
        report = evaluate(sc, [0])
        assert report.aggregate == pytest.approx(40.0)
        assert report.bottleneck_is_plc.tolist() == [True]

    def test_wifi_bottleneck(self):
        sc = Scenario(wifi_rates=np.array([[20.0]]),
                      plc_rates=np.array([100.0]))
        report = evaluate(sc, [0])
        assert report.aggregate == pytest.approx(20.0)
        assert report.bottleneck_is_plc.tolist() == [False]

    def test_idle_extender_frees_plc_time(self):
        """An extender without users must not eat into medium time."""
        sc = Scenario(wifi_rates=np.array([[100.0, 1.0]]),
                      plc_rates=np.array([50.0, 50.0]))
        report = evaluate(sc, [0])
        assert report.aggregate == pytest.approx(50.0)

    def test_aggregate_helper_matches_report(self, fig3_scenario):
        assert aggregate_throughput(fig3_scenario, [1, 0]) == pytest.approx(
            evaluate(fig3_scenario, [1, 0]).aggregate)


class TestNActiveExtenders:
    """Regression: the empty-attachment path must not crash or miscount."""

    def test_all_unassigned_is_zero(self, fig3_scenario):
        report = evaluate(fig3_scenario, [UNASSIGNED, UNASSIGNED])
        assert report.n_active_extenders == 0

    def test_zero_users_is_zero(self):
        sc = Scenario(wifi_rates=np.empty((0, 3)),
                      plc_rates=np.array([50.0, 50.0, 50.0]))
        report = evaluate(sc, np.empty(0, dtype=int))
        assert report.n_active_extenders == 0

    def test_counts_distinct_extenders_only(self):
        sc = Scenario(wifi_rates=np.full((4, 3), 40.0),
                      plc_rates=np.full(3, 100.0))
        report = evaluate(sc, [2, 2, 2, UNASSIGNED])
        assert report.n_active_extenders == 1

    def test_list_typed_assignment(self, fig3_scenario):
        # The report may be built from a plain python list; the property
        # must coerce rather than rely on ndarray methods.
        report = evaluate(fig3_scenario, [0, 1])
        patched = type(report)(
            assignment=[0, 1],
            wifi_throughputs=report.wifi_throughputs,
            plc_throughputs=report.plc_throughputs,
            plc_time_shares=report.plc_time_shares,
            extender_throughputs=report.extender_throughputs,
            user_throughputs=report.user_throughputs,
            bottleneck_is_plc=report.bottleneck_is_plc)
        assert patched.n_active_extenders == 2

    def test_matches_manual_count(self, rng):
        sc = random_scenario(rng, 10, 4)
        assignment = rng.integers(-1, 4, size=10)
        report = evaluate(sc, assignment)
        manual = len({int(j) for j in assignment if j != UNASSIGNED})
        assert report.n_active_extenders == manual


class TestEngineInvariants:
    @given(st.integers(2, 12), st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_physical_feasibility(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        report = evaluate(sc, assignment)
        # Per-extender throughput never exceeds either link segment.
        assert np.all(report.extender_throughputs
                      <= report.wifi_throughputs + 1e-9)
        assert np.all(report.extender_throughputs
                      <= report.plc_time_shares * sc.plc_rates + 1e-9)
        # PLC medium time is a single contention domain.
        assert report.plc_time_shares.sum() <= 1.0 + 1e-9
        # Per-user throughputs sum back to the aggregate.
        assert report.user_throughputs.sum() == pytest.approx(
            report.aggregate)

    @given(st.integers(2, 10), st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_redistribution_dominates(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        with_r = evaluate(sc, assignment,
                          plc_mode="redistribute").aggregate
        without = evaluate(sc, assignment, plc_mode="active").aggregate
        assert with_r >= without - 1e-9

    @given(st.integers(2, 10), st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_users_on_same_extender_get_equal_shares(self, n_users, n_ext,
                                                     seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        report = evaluate(sc, assignment)
        for j in range(n_ext):
            members = np.flatnonzero(assignment == j)
            if members.size > 1:
                shares = report.user_throughputs[members]
                assert np.allclose(shares, shares[0])


class TestFixedSharingMode:
    """The Problem-1 law: idle extenders waste their 1/|A| slice."""

    def test_idle_extender_wastes_its_slice(self):
        sc = Scenario(wifi_rates=np.array([[100.0, 100.0]]),
                      plc_rates=np.array([50.0, 50.0]))
        report = evaluate(sc, [0], plc_mode="fixed")
        # Only extender 0 carries traffic, capped at c/|A| = 25.
        assert report.aggregate == pytest.approx(25.0)
        assert report.plc_time_shares[1] == 0.0

    def test_full_coverage_harvests_every_slice(self):
        sc = Scenario(wifi_rates=np.full((2, 2), 100.0),
                      plc_rates=np.array([50.0, 30.0]))
        report = evaluate(sc, [0, 1], plc_mode="fixed")
        assert report.aggregate == pytest.approx((50.0 + 30.0) / 2)

    def test_wifi_still_caps_fixed_slices(self):
        sc = Scenario(wifi_rates=np.array([[10.0, 0.0], [0.0, 100.0]]),
                      plc_rates=np.array([60.0, 60.0]))
        report = evaluate(sc, [0, 1], plc_mode="fixed")
        # Ext 0 is WiFi-bound at 10 < 30; ext 1 PLC-bound at 30.
        assert report.extender_throughputs == pytest.approx([10.0, 30.0])
        assert report.bottleneck_is_plc.tolist() == [False, True]

    def test_unknown_mode_rejected(self, fig3_scenario):
        with pytest.raises(ValueError, match="mode"):
            evaluate(fig3_scenario, [0, 1], plc_mode="magic")

    @given(st.integers(2, 10), st.integers(2, 5), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_fixed_never_beats_active(self, n_users, n_ext, seed):
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, n_users, n_ext)
        assignment = rng.integers(0, n_ext, size=n_users)
        fixed = evaluate(sc, assignment, plc_mode="fixed").aggregate
        active = evaluate(sc, assignment, plc_mode="active").aggregate
        assert fixed <= active + 1e-9

    @given(st.integers(2, 10), st.integers(2, 5), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_fixed_equals_active_at_full_coverage(self, n_users, n_ext,
                                                  seed):
        """When every extender has a user, the two laws coincide."""
        rng = np.random.default_rng(seed)
        sc = random_scenario(rng, max(n_users, n_ext), n_ext)
        assignment = np.concatenate([
            np.arange(n_ext),
            rng.integers(0, n_ext, size=sc.n_users - n_ext)])
        fixed = evaluate(sc, assignment, plc_mode="fixed").aggregate
        active = evaluate(sc, assignment, plc_mode="active").aggregate
        assert fixed == pytest.approx(active)
